//! Offline shim for `serde_derive` (see `vendor/README.md`).
//!
//! The workspace only *annotates* types with the serde derives — nothing
//! serializes yet — so the derive macros expand to nothing. When real
//! serialization lands (and network access exists), swap in crates.io
//! serde and these annotations become functional unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
