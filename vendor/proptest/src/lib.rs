//! Offline shim for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace uses:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, integer
//! range strategies, tuples, `prop::bool::ANY`, `prop::collection::vec`,
//! `any::<T>()`, `prop_map`, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//! * cases are generated from a deterministic per-test seed (FNV-1a of
//!   the test name mixed with the case index), so every run explores
//!   the same inputs — failures are reproducible without a persistence
//!   file;
//! * there is **no shrinking** — the panic message reports the case
//!   index so a failing case can be re-run under a debugger.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(state: u64) -> Self {
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        // Spans here are tiny relative to 2^64, so modulo bias is
        // irrelevant for test-case generation.
        (self.next_u64() as u128) % span
    }
}

/// Derives the RNG for one case of one test, mixing the test name
/// (FNV-1a) with the case index.
#[doc(hidden)]
pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)))
}

/// Harness configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-family macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of values: the sampled counterpart of proptest's
/// `Strategy`. No shrinking, so `generate` is the whole contract.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + rng.below((hi - lo) as u128) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u128) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a canonical "any value" strategy.
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Inclusive bounds on generated collection lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Namespaced strategy constructors, mirroring proptest's `prop::` tree.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform over `{false, true}`.
        pub struct Any;

        /// The canonical boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() >> 63 == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of `element` values with lengths in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo + 1) as u128;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (rather than panicking) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` item
/// expands to a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::rng_for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case, config.cases, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::rng_for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (-4i32..=4).generate(&mut rng);
            assert!((-4..=4).contains(&y));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::rng_for_case("vec", 0);
        let s = prop::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let s = prop::collection::vec(0u64..1000, 4..=8);
        let a = s.generate(&mut crate::rng_for_case("t", 7));
        let b = s.generate(&mut crate::rng_for_case("t", 7));
        let c = s.generate(&mut crate::rng_for_case("t", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(
            n in 1usize..5,
            v in prop::collection::vec((1i32..=4, prop::bool::ANY).prop_map(|(x, neg)| if neg { -x } else { x }), 1..6),
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 6);
            for x in &v {
                prop_assert!((1..=4).contains(&x.abs()), "literal out of range: {x}");
            }
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
