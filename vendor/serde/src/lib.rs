//! Offline shim for `serde` (see `vendor/README.md`).
//!
//! Marker traits plus re-exported no-op derives — enough for the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations to
//! compile while no code actually serializes.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait DeserializeMarker {}
