//! Offline shim for the `rand` crate (see `vendor/README.md`).
//!
//! Provides the minimal surface this workspace uses: a seedable small
//! RNG (`rngs::SmallRng`) and the `Rng`/`SeedableRng` traits with
//! `gen::<u64>()` / `seed_from_u64`. The generator is SplitMix64 —
//! statistically solid for stimulus generation and fully deterministic
//! per seed, which the reproducibility tests depend on.

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl Standard for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for u16 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 56) as u8
    }
}

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw >> 63 == 1
    }
}

/// Core RNG trait: everything is derived from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// Samples uniformly from `[0, bound)` using rejection-free
    /// multiply-shift reduction (bias is negligible for 64-bit raws).
    fn gen_range_u64(&mut self, bound: u64) -> u64
    where
        Self: Sized,
    {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: the recommended seeder/small generator from
    /// Steele, Lea & Flood (OOPSLA 2014). One 64-bit word of state.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bits_look_balanced() {
        let mut r = SmallRng::seed_from_u64(1);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64,000 bits; expect ~32,000 ones. Allow a generous band.
        assert!((30_000..34_000).contains(&ones), "{ones}");
    }

    #[test]
    fn gen_types() {
        let mut r = SmallRng::seed_from_u64(2);
        let _: u64 = r.gen();
        let _: u32 = r.gen();
        let _: u8 = r.gen();
        let _: bool = r.gen();
        for bound in [1u64, 2, 3, 100] {
            for _ in 0..100 {
                assert!(r.gen_range_u64(bound) < bound);
            }
        }
    }
}
