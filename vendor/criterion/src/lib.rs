//! Offline shim for `criterion` (see `vendor/README.md`).
//!
//! Wall-clock micro-benchmark harness with criterion's macro and
//! builder surface: `criterion_group!`/`criterion_main!`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, and `black_box`. Reports min/median/mean per benchmark
//! on stdout. No statistics beyond that — it exists so `cargo bench`
//! is meaningful offline, not to replace criterion's analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is grouped. The shim runs one setup per
/// iteration regardless; the variants exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<44} no samples");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<44} min {min:>12?}  median {median:>12?}  mean {mean:>12?}  ({} samples)",
        samples.len()
    );
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets samples per benchmark (builder-style, as in criterion's
    /// `config = Criterion::default().sample_size(n)`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Opens a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }
}

/// Scoped benchmark group with its own sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    // Tie the group's lifetime to the parent Criterion like the real
    // API does, so `finish()` call sites stay valid when swapping back.
    #[allow(dead_code)]
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &mut b.samples);
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("shim/smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| black_box(21) * 2));
        g.finish();
    }

    criterion_group!(name = smoke; config = Criterion::default().sample_size(5); targets = work);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
