//! Umbrella crate for the GoldMine coverage-closure reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests in this repository (and downstream quick starts)
//! need a single dependency. See the individual crates for the real API
//! surface:
//!
//! * [`gm_rtl`] — RTL IR, Verilog-subset parser, elaboration, logic cones
//! * [`gm_sim`] — cycle-accurate simulator, traces, stimulus
//! * [`gm_coverage`] — line/branch/condition/expression/toggle/FSM coverage
//! * [`gm_sat`] — CDCL SAT solver
//! * [`gm_mc`] — bit-blasting and model checking (BMC, k-induction,
//!   explicit-state reachability)
//! * [`gm_mine`] — decision-tree assertion mining
//! * [`goldmine`] — the counterexample-guided refinement engine
//! * [`gm_designs`] — benchmark designs used by the paper's experiments
//! * [`gm_serve`] — the persistent closure service (wire protocol,
//!   work-stealing scheduler, content-addressed design cache,
//!   `gmserved` daemon)

pub use gm_coverage;
pub use gm_designs;
pub use gm_mc;
pub use gm_mine;
pub use gm_rtl;
pub use gm_sat;
pub use gm_serve;
pub use gm_sim;
pub use goldmine;
