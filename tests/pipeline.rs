//! Workspace-level integration: the full pipeline across the whole
//! design catalog, driven concurrently through `gm_serve`'s
//! work-stealing scheduler (the [`Campaign`] jobs, the service's
//! executor — so the sweep also exercises the scheduler end to end; the
//! summary and every outcome are identical to the plain campaign
//! runner's by the engine's determinism contract).
//!
//! The CI matrix re-runs this suite with `GM_TEST_SHARDS=<n>` (and a
//! serial test scheduler) to force every engine onto a fixed shard
//! count — scheduler-order bugs in the shard dispatch surface here.

use gm_mc::Backend;
use gm_rtl::SignalId;
use gm_serve::SchedPolicy;
use goldmine::{
    Campaign, CampaignSummary, Engine, EngineConfig, SeedStimulus, ShardPolicy, TargetSelection,
    UnknownPolicy,
};

/// Runs a campaign's jobs through the work-stealing pool (one worker
/// per core, like `Campaign::run`).
fn run_stealing(campaign: Campaign) -> CampaignSummary {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    gm_serve::run_campaign(campaign.into_jobs(), workers, SchedPolicy::WorkStealing)
}

fn one_bit_targets(m: &gm_rtl::Module) -> Vec<(SignalId, u32)> {
    m.outputs()
        .into_iter()
        .filter(|&s| m.signal_width(s) == 1)
        .map(|s| (s, 0))
        .collect()
}

/// The shard policy under test: `GM_TEST_SHARDS=<n>` forces
/// `Fixed(n)` (the CI matrix leg), otherwise the default `Off`.
fn shard_policy_under_test() -> ShardPolicy {
    match std::env::var("GM_TEST_SHARDS") {
        Ok(v) => ShardPolicy::Fixed(v.parse().expect("GM_TEST_SHARDS must be a number")),
        Err(_) => ShardPolicy::Off,
    }
}

#[test]
fn every_catalog_design_runs_through_the_loop() {
    let catalog = gm_designs::catalog();
    let mut campaign = Campaign::new();
    for d in &catalog {
        let module = d.module();
        // The two big lite blocks exceed explicit limits; bound their
        // runs hard (full-scale runs live in the release-mode
        // experiment binaries).
        let (backend, max_iterations, targets) = match d.name {
            "b17_lite" | "b18_lite" => (
                Backend::KInduction { max_k: 1 },
                1,
                vec![one_bit_targets(&module)[0]],
            ),
            _ => (Backend::Auto, 24, one_bit_targets(&module)),
        };
        let config = EngineConfig {
            window: d.window,
            stimulus: SeedStimulus::Random { cycles: 48 },
            targets: TargetSelection::Bits(targets),
            backend,
            max_iterations,
            unknown: UnknownPolicy::AssumeTrue,
            shards: shard_policy_under_test(),
            record_coverage: false,
            ..EngineConfig::default()
        };
        campaign.push(d.name, module, config);
    }
    let summary = run_stealing(campaign);
    // The campaign must visit every design, in catalog order.
    assert_eq!(summary.runs.len(), catalog.len());
    for (d, run) in catalog.iter().zip(&summary.runs) {
        assert_eq!(d.name, run.name, "campaign skipped or reordered a design");
    }
    assert!(summary.all_ok(), "{}", summary.report());
    for run in &summary.runs {
        let outcome = run.outcome.as_ref().unwrap();
        // Monotonic input-space coverage on every design (the paper's
        // forward-progress claim).
        let series: Vec<f64> = outcome
            .iterations
            .iter()
            .map(|r| r.input_space_coverage)
            .collect();
        for w in series.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "{}: regression in {series:?}",
                run.name
            );
        }
        // No target may get stuck on a mining contradiction.
        for t in &outcome.targets {
            assert!(
                t.stuck.is_none(),
                "{}: target {:?}[{}] stuck: {:?}",
                run.name,
                t.signal,
                t.bit,
                t.stuck
            );
        }
    }
}

#[test]
fn exact_backends_converge_on_the_small_designs() {
    let names = [
        "cex_small",
        "arbiter2",
        "b01",
        "b02",
        "b09",
        "b12_lite",
        "fetch_stage",
    ];
    let mut campaign = Campaign::new();
    for name in names {
        let d = gm_designs::by_name(name).unwrap();
        let module = d.module();
        let config = EngineConfig {
            window: d.window,
            stimulus: SeedStimulus::Random { cycles: 64 },
            targets: TargetSelection::Bits(one_bit_targets(&module)),
            shards: shard_policy_under_test(),
            record_coverage: false,
            max_iterations: 64,
            ..EngineConfig::default()
        };
        campaign.push(name, module, config);
    }
    let summary = run_stealing(campaign);
    assert_eq!(summary.runs.len(), names.len());
    assert!(summary.all_ok(), "{}", summary.report());
    for run in &summary.runs {
        let outcome = run.outcome.as_ref().unwrap();
        assert!(outcome.converged, "{} failed to converge", run.name);
        assert_eq!(
            outcome.unknown_assumed, 0,
            "{} needed unknown-assume",
            run.name
        );
        assert!(
            (outcome.final_input_space_coverage() - 1.0).abs() < 1e-9,
            "{}: coverage closure incomplete",
            run.name
        );
    }
}

#[test]
fn suite_traces_export_vcd() {
    let module = gm_designs::arbiter2();
    let outcome = Engine::new(&module, EngineConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let traces = outcome
        .suite
        .run(&module, &mut gm_sim::NopObserver)
        .unwrap();
    let vcd = traces[0].to_vcd_string();
    assert!(vcd.contains("$var wire 1"));
    assert!(vcd.contains("gnt0"));
    assert!(vcd.contains("$enddefinitions"));
}

#[test]
fn assertions_render_in_both_notations() {
    let module = gm_designs::arbiter2();
    let outcome = Engine::new(&module, EngineConfig::default())
        .unwrap()
        .run()
        .unwrap();
    for a in &outcome.assertions {
        let ltl = a.to_ltl(&module);
        let sva = a.to_sva(&module);
        assert!(ltl.contains("=>"), "{ltl}");
        assert!(sva.starts_with("@(posedge clk)"), "{sva}");
        assert!(sva.contains("|->"), "{sva}");
    }
}
