//! Workspace-level integration: the full pipeline across the whole
//! design catalog.

use gm_mc::Backend;
use gm_rtl::SignalId;
use goldmine::{Engine, EngineConfig, SeedStimulus, TargetSelection, UnknownPolicy};

fn one_bit_targets(m: &gm_rtl::Module) -> Vec<(SignalId, u32)> {
    m.outputs()
        .into_iter()
        .filter(|&s| m.signal_width(s) == 1)
        .map(|s| (s, 0))
        .collect()
}

#[test]
fn every_catalog_design_runs_through_the_loop() {
    for d in gm_designs::catalog() {
        let module = d.module();
        // The two big lite blocks exceed explicit limits; bound their
        // runs hard (full-scale runs live in the release-mode
        // experiment binaries).
        let (backend, max_iterations, targets) = match d.name {
            "b17_lite" | "b18_lite" => (
                Backend::KInduction { max_k: 1 },
                1,
                vec![one_bit_targets(&module)[0]],
            ),
            _ => (Backend::Auto, 24, one_bit_targets(&module)),
        };
        let config = EngineConfig {
            window: d.window,
            stimulus: SeedStimulus::Random { cycles: 48 },
            targets: TargetSelection::Bits(targets),
            backend,
            max_iterations,
            unknown: UnknownPolicy::AssumeTrue,
            record_coverage: false,
            ..EngineConfig::default()
        };
        let outcome = Engine::new(&module, config)
            .unwrap_or_else(|e| panic!("{}: {e}", d.name))
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", d.name));
        // Monotonic input-space coverage on every design (the paper's
        // forward-progress claim).
        let series: Vec<f64> = outcome
            .iterations
            .iter()
            .map(|r| r.input_space_coverage)
            .collect();
        for w in series.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "{}: regression in {series:?}", d.name);
        }
        // No target may get stuck on a mining contradiction.
        for t in &outcome.targets {
            assert!(
                t.stuck.is_none(),
                "{}: target {}[{}] stuck: {:?}",
                d.name,
                module.signal(t.signal).name(),
                t.bit,
                t.stuck
            );
        }
    }
}

#[test]
fn exact_backends_converge_on_the_small_designs() {
    for name in [
        "cex_small",
        "arbiter2",
        "b01",
        "b02",
        "b09",
        "b12_lite",
        "fetch_stage",
    ] {
        let d = gm_designs::by_name(name).unwrap();
        let module = d.module();
        let config = EngineConfig {
            window: d.window,
            stimulus: SeedStimulus::Random { cycles: 64 },
            targets: TargetSelection::Bits(one_bit_targets(&module)),
            record_coverage: false,
            max_iterations: 64,
            ..EngineConfig::default()
        };
        let outcome = Engine::new(&module, config).unwrap().run().unwrap();
        assert!(outcome.converged, "{name} failed to converge");
        assert_eq!(outcome.unknown_assumed, 0, "{name} needed unknown-assume");
        assert!(
            (outcome.final_input_space_coverage() - 1.0).abs() < 1e-9,
            "{name}: coverage closure incomplete"
        );
    }
}

#[test]
fn suite_traces_export_vcd() {
    let module = gm_designs::arbiter2();
    let outcome = Engine::new(&module, EngineConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let traces = outcome
        .suite
        .run(&module, &mut gm_sim::NopObserver)
        .unwrap();
    let vcd = traces[0].to_vcd_string();
    assert!(vcd.contains("$var wire 1"));
    assert!(vcd.contains("gnt0"));
    assert!(vcd.contains("$enddefinitions"));
}

#[test]
fn assertions_render_in_both_notations() {
    let module = gm_designs::arbiter2();
    let outcome = Engine::new(&module, EngineConfig::default())
        .unwrap()
        .run()
        .unwrap();
    for a in &outcome.assertions {
        let ltl = a.to_ltl(&module);
        let sva = a.to_sva(&module);
        assert!(ltl.contains("=>"), "{ltl}");
        assert!(sva.starts_with("@(posedge clk)"), "{sva}");
        assert!(sva.contains("|->"), "{sva}");
    }
}
