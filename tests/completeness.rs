//! Empirical validation of the paper's Theorem 2 on randomized designs:
//! at convergence, the final decision tree (equivalently, the proved
//! assertion set) captures the *entire* function of the output.
//!
//! We generate random combinational modules, run the loop to
//! convergence, and compare the proved assertions against exhaustive
//! simulation of the full truth table: every input pattern must be
//! covered by exactly one assertion whose implied value matches the
//! design.

use gm_rtl::{Bv, Expr, Module, ModuleBuilder, SignalId};
use gm_sim::Simulator;
use goldmine::{Engine, EngineConfig, SeedStimulus};
use proptest::prelude::*;

/// Builds a random boolean expression over `inputs` from a recipe of
/// opcode bytes (deterministic, shrinkable).
fn expr_from_recipe(inputs: &[SignalId], recipe: &[u8], depth: usize) -> Expr {
    if recipe.is_empty() || depth > 4 {
        return Expr::Signal(inputs[0]);
    }
    let op = recipe[0] % 6;
    let rest = &recipe[1..];
    let half = rest.len() / 2;
    let (ra, rb) = rest.split_at(half);
    let leaf = |r: &[u8]| {
        let idx = r.first().map(|&b| b as usize).unwrap_or(0) % inputs.len();
        Expr::Signal(inputs[idx])
    };
    match op {
        0 => leaf(rest).and(if ra.len() > 1 {
            expr_from_recipe(inputs, ra, depth + 1)
        } else {
            leaf(rb)
        }),
        1 => expr_from_recipe(inputs, ra, depth + 1).or(expr_from_recipe(inputs, rb, depth + 1)),
        2 => expr_from_recipe(inputs, ra, depth + 1).xor(leaf(rb)),
        3 => expr_from_recipe(inputs, ra, depth + 1).not(),
        4 => leaf(ra).mux(
            expr_from_recipe(inputs, rb, depth + 1),
            expr_from_recipe(inputs, ra, depth + 1),
        ),
        _ => leaf(rest),
    }
}

fn random_module(num_inputs: usize, recipe: &[u8]) -> Module {
    let mut b = ModuleBuilder::new("random_comb");
    let inputs: Vec<SignalId> = (0..num_inputs)
        .map(|i| b.input(&format!("i{i}"), 1))
        .collect();
    let z = b.output("z", 1);
    b.assign(z, expr_from_recipe(&inputs, recipe, 0));
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn final_tree_captures_the_whole_output_function(
        num_inputs in 2usize..5,
        recipe in prop::collection::vec(any::<u8>(), 1..24),
        seed in 0u64..1000,
    ) {
        let module = random_module(num_inputs, &recipe);
        let config = EngineConfig {
            window: 0,
            seed,
            stimulus: SeedStimulus::Random { cycles: 4 },
            record_coverage: false,
            ..EngineConfig::default()
        };
        let outcome = Engine::new(&module, config).unwrap().run().unwrap();
        prop_assert!(outcome.converged, "combinational closure must converge");

        // Exhaustive check: every input pattern is predicted correctly by
        // exactly one proved assertion (leaves partition the space).
        let inputs: Vec<SignalId> = module.data_inputs();
        let z = module.require("z").unwrap();
        let mut sim = Simulator::new(&module).unwrap();
        for pattern in 0u64..(1 << num_inputs) {
            for (i, &sig) in inputs.iter().enumerate() {
                sim.set_input(sig, Bv::from_bool((pattern >> i) & 1 == 1));
            }
            sim.settle();
            let truth = sim.value(z).is_nonzero();
            let matching: Vec<_> = outcome
                .assertions
                .iter()
                .filter(|a| {
                    a.literals.iter().all(|(f, v)| {
                        let bit = (pattern >> inputs.iter().position(|&s| s == f.signal).unwrap())
                            & 1
                            == 1;
                        bit == *v
                    })
                })
                .collect();
            prop_assert_eq!(
                matching.len(),
                1,
                "pattern {:b} covered by {} assertions",
                pattern,
                matching.len()
            );
            prop_assert_eq!(
                matching[0].value,
                truth,
                "pattern {:b} mispredicted",
                pattern
            );
        }

        // And the paper's input-space accounting agrees: disjoint leaves
        // summing to exactly 1.
        prop_assert!((outcome.final_input_space_coverage() - 1.0).abs() < 1e-9);
    }

    /// The incremental tree and a from-scratch refit agree semantically:
    /// mining the same data in one batch or trickled in windows yields
    /// the same predictions (order-insensitivity of convergence).
    #[test]
    fn batch_and_trickled_mining_agree(
        num_inputs in 2usize..4,
        recipe in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let module = random_module(num_inputs, &recipe);
        let run = |seed: u64, cycles: u64| {
            let config = EngineConfig {
                window: 0,
                seed,
                stimulus: SeedStimulus::Random { cycles },
                record_coverage: false,
                ..EngineConfig::default()
            };
            Engine::new(&module, config).unwrap().run().unwrap()
        };
        let big_seed = run(1, 64);
        let tiny_seed = run(2, 1);
        prop_assert!(big_seed.converged && tiny_seed.converged);
        // Different paths, same destination: both assertion sets predict
        // the same function (checked through the truth table).
        let inputs: Vec<SignalId> = module.data_inputs();
        for pattern in 0u64..(1 << num_inputs) {
            let predict = |assertions: &[gm_mine::Assertion]| {
                assertions
                    .iter()
                    .find(|a| {
                        a.literals.iter().all(|(f, v)| {
                            let bit = (pattern
                                >> inputs.iter().position(|&s| s == f.signal).unwrap())
                                & 1
                                == 1;
                            bit == *v
                        })
                    })
                    .map(|a| a.value)
            };
            prop_assert_eq!(
                predict(&big_seed.assertions),
                predict(&tiny_seed.assertions),
                "pattern {:b}",
                pattern
            );
        }
    }
}
