//! `gmserved` — the closure-service daemon.
//!
//! ```text
//! gmserved <socket-path> [--workers N] [--cache N] [--cache-bytes N]
//!          [--round-robin] [--warm-memo]
//!          [--deadline-ms N] [--max-retries N] [--retry-backoff-ms N]
//!          [--max-queued N] [--max-queued-bytes N] [--drain-timeout-ms N]
//! ```
//!
//! Binds a Unix-domain socket (replacing a stale file), serves closure
//! requests until a client sends `shutdown`, drains accepted work, and
//! exits 0. Drive it with `gm_serve::ServeClient` or the
//! `serve_closure` example.

use gm_serve::{bind_unix, serve_unix, ClosureService, SchedPolicy, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gmserved <socket-path> [--workers N] [--cache N] [--cache-bytes N] \
         [--round-robin] [--warm-memo] [--deadline-ms N] [--max-retries N] \
         [--retry-backoff-ms N] [--max-queued N] [--max-queued-bytes N] \
         [--drain-timeout-ms N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next().map(PathBuf::from) else {
        return usage();
    };
    let mut config = ServeConfig::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => return usage(),
            },
            "--cache" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.cache_capacity = n,
                None => return usage(),
            },
            "--cache-bytes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.cache_max_bytes = n,
                None => return usage(),
            },
            "--round-robin" => config.policy = SchedPolicy::RoundRobin,
            "--warm-memo" => config.warm_memo = true,
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.default_deadline_ms = n,
                None => return usage(),
            },
            "--max-retries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.retry.max_retries = n,
                None => return usage(),
            },
            "--retry-backoff-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.retry.base_ms = n,
                None => return usage(),
            },
            "--max-queued" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_queued = n,
                None => return usage(),
            },
            "--max-queued-bytes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_queued_bytes = n,
                None => return usage(),
            },
            "--drain-timeout-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.drain_timeout_ms = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let listener = match bind_unix(&path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gmserved: cannot bind {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let service = Arc::new(ClosureService::new(config.clone()));
    println!(
        "gmserved: listening on {} ({} workers, {:?}, cache {})",
        path.display(),
        service.stats().workers,
        config.policy,
        config.cache_capacity,
    );
    let result = serve_unix(service.clone(), listener);
    let _ = std::fs::remove_file(&path);
    match result {
        Ok(()) => {
            let stats = service.stats();
            println!(
                "gmserved: clean shutdown — {} submitted, {} completed, {} failed, {} cancelled, cache {}/{} hits, {} steals",
                stats.submitted,
                stats.completed,
                stats.failed,
                stats.cancelled,
                stats.cache_hits,
                stats.cache_hits + stats.cache_misses,
                stats.steals,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gmserved: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
