//! The content-addressed design cache.
//!
//! Submissions are keyed by a content hash of the *parsed* module (the
//! canonical Verilog re-print, so formatting differences in the
//! submitted source collapse to one key). A cache entry holds the
//! expensive per-design artifacts — the parsed [`Module`], its
//! elaboration, and parked [`Checker`]s whose bit-blasted AIG,
//! reachable state set and explicit-engine successor caches stay warm
//! between requests — under a bounded LRU with hit/miss/eviction
//! counters.
//!
//! Reuse is outcome-preserving by construction: a parked checker is
//! [`Checker::reset_for_reuse`]d (fresh sessions, empty memo, zeroed
//! stats) unless the service opts into `warm_memo`, so a cached run's
//! [`goldmine::ClosureOutcome`] is byte-identical to a cold one's.

use gm_cache::BoundedLru;
use gm_mc::Checker;
use gm_rtl::{Elab, Module};
use goldmine::CompiledModule;
use std::sync::Arc;

/// Cache counters (also folded into
/// [`crate::protocol::ServeStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// The LRU bound.
    pub capacity: usize,
    /// Submissions that found their design cached.
    pub hits: u64,
    /// Submissions that had to build artifacts.
    pub misses: u64,
    /// Entries evicted for any reason (the sum of the per-reason
    /// counters below).
    pub evictions: u64,
    /// Entries evicted by the entry-count bound.
    pub evictions_capacity: u64,
    /// Entries evicted LRU-first to get back under the byte budget.
    pub evictions_bytes: u64,
    /// Resident entries dropped because a 64-bit key collision would
    /// otherwise serve the wrong design.
    pub evictions_collision: u64,
    /// Approximate resident bytes (sources, parked checker memos and
    /// sessions, parked compiled tapes — an estimate).
    pub approx_bytes: usize,
    /// The byte budget (0 = unbounded).
    pub max_bytes: usize,
    /// Compiled instruction tapes built and parked into entries.
    pub compiled_built: u64,
    /// Checkouts that handed out a parked compiled tape instead of
    /// recompiling.
    pub compiled_reused: u64,
}

/// The shared artifacts of one cached design.
#[derive(Debug)]
pub struct CachedDesign {
    /// The parsed module.
    pub module: Arc<Module>,
    /// Its elaboration (mining specs and blasting both consume it).
    pub elab: Arc<Elab>,
    /// Checkers parked by finished jobs, ready for the next request of
    /// this design. Bounded by [`MAX_PARKED_PER_DESIGN`]: a burst of
    /// queued same-design jobs can otherwise build (and park) one
    /// checker per job, not per concurrent worker.
    parked: Vec<Checker>,
    /// The compiled instruction tapes for this design, parked by the
    /// first job that built each, slotted by compile options: index 0
    /// holds the probe-free tape ([`goldmine::CompileOptions`]
    /// `probes: false`),
    /// index 1 the probed one. Probed tapes also serve probe-free
    /// requests (the probes are a superset; engines ignore them when
    /// coverage is off), but never vice versa. Compiled tapes are
    /// immutable and all
    /// run methods take `&self`, so one `Arc` feeds any number of
    /// concurrent engines (unlike checkers, which are checked out
    /// exclusively).
    compiled: [Option<Arc<CompiledModule>>; 2],
    /// The canonical source — the collision guard: a hit must match it
    /// exactly, so a 64-bit key collision can never hand out the wrong
    /// design's artifacts.
    canonical: String,
}

/// Approximate resident size of one cache entry.
fn entry_bytes(e: &CachedDesign) -> usize {
    e.canonical.len()
        + e.parked.iter().map(Checker::approx_bytes).sum::<usize>()
        + e.compiled
            .iter()
            .flatten()
            .map(|c| c.approx_bytes())
            .sum::<usize>()
}

/// What [`DesignCache::checkout`] hands the caller.
#[derive(Debug)]
pub struct Checkout {
    /// The parsed module.
    pub module: Arc<Module>,
    /// Its elaboration.
    pub elab: Arc<Elab>,
    /// A parked warm checker, when one is available (`None` on cold
    /// entries, or when every parked checker is out with a concurrently
    /// running job — the caller builds a fresh one from the
    /// elaboration).
    pub checker: Option<Checker>,
    /// A parked compiled tape satisfying the checkout's `want_probes`,
    /// when the entry holds one (an `Arc` clone — the entry keeps its
    /// copy for concurrent and later jobs). A probed tape is handed out
    /// for a probe-free want when no probe-free tape is parked.
    pub compiled: Option<Arc<CompiledModule>>,
    /// Whether the design was already cached.
    pub hit: bool,
}

/// Most warm checkers retained per design — enough to feed every
/// worker of a typical pool; excess checkers from bursty same-design
/// queues are dropped at park time.
const MAX_PARKED_PER_DESIGN: usize = 8;

/// The canonical form a design is addressed by: its re-printed
/// Verilog, so formatting differences in submitted source collapse.
pub fn canonical_form(module: &Module) -> String {
    gm_rtl::to_verilog(module)
}

/// FNV-1a 64-bit over a canonical form: the content address. The hash
/// only routes lookups — [`DesignCache::checkout`] compares the full
/// canonical text on every hit, so collisions cost a rebuild, never a
/// wrong design.
pub fn key_of(canonical: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// [`key_of`] ∘ [`canonical_form`] — convenience for one-off callers
/// (hot paths compute the canonical form once and reuse it).
pub fn content_key(module: &Module) -> String {
    key_of(&canonical_form(module))
}

/// A bounded-LRU map from content key to design artifacts. Lookup,
/// insert and eviction are O(1) via the shared
/// [`gm_cache::BoundedLru`]; the hit/miss/eviction counters and byte
/// accounting live here.
#[derive(Debug)]
pub struct DesignCache {
    map: BoundedLru<String, CachedDesign>,
    /// Byte budget over every entry's [`entry_bytes`] (0 = unbounded).
    max_bytes: usize,
    hits: u64,
    misses: u64,
    evictions_capacity: u64,
    evictions_bytes: u64,
    evictions_collision: u64,
    compiled_built: u64,
    compiled_reused: u64,
}

impl DesignCache {
    /// An empty cache bounded to `capacity` designs (at least 1), with
    /// no byte budget.
    pub fn new(capacity: usize) -> Self {
        DesignCache::with_max_bytes(capacity, 0)
    }

    /// An empty cache bounded to `capacity` designs *and* (when
    /// `max_bytes > 0`) to approximately `max_bytes` resident bytes,
    /// evicting LRU-first until back under budget. The entry most
    /// recently checked out is never evicted for bytes — when it alone
    /// exceeds the budget its warm extras (parked checkers, compiled
    /// tape) are shed instead, so an oversized design degrades to
    /// cold-cache behavior rather than thrashing.
    pub fn with_max_bytes(capacity: usize, max_bytes: usize) -> Self {
        DesignCache {
            map: BoundedLru::with_capacity(capacity),
            max_bytes,
            hits: 0,
            misses: 0,
            evictions_capacity: 0,
            evictions_bytes: 0,
            evictions_collision: 0,
            compiled_built: 0,
            compiled_reused: 0,
        }
    }

    /// Approximate resident bytes across all entries.
    fn resident_bytes(&self) -> usize {
        self.map.values().map(entry_bytes).sum()
    }

    /// Evicts LRU-first until the byte budget holds again. Called after
    /// every operation that can grow an entry (insert, park). When only
    /// one entry remains over budget, its parked checkers (oldest
    /// first) and compiled tapes (probe-free slot first — the probed
    /// tape can still serve both kinds of request) are shed instead of
    /// the entry itself.
    fn enforce_byte_budget(&mut self) {
        if self.max_bytes == 0 {
            return;
        }
        while self.map.len() > 1 && self.resident_bytes() > self.max_bytes {
            self.map.pop_lru();
            self.evictions_bytes += 1;
        }
        if self.resident_bytes() > self.max_bytes {
            if let Some((key, mut entry)) = self.map.pop_lru() {
                let base = self.resident_bytes();
                while !entry.parked.is_empty() && base + entry_bytes(&entry) > self.max_bytes {
                    entry.parked.remove(0);
                }
                if base + entry_bytes(&entry) > self.max_bytes {
                    entry.compiled[0] = None;
                }
                if base + entry_bytes(&entry) > self.max_bytes {
                    entry.compiled[1] = None;
                }
                self.map.insert(key, entry);
            }
        }
    }

    /// Whether `key` is resident *and* its canonical form matches (no
    /// counter or stamp effects — used to decide whether artifacts must
    /// be built before taking a lock).
    pub fn matches(&self, key: &str, canonical: &str) -> bool {
        self.map.peek(key).is_some_and(|e| e.canonical == canonical)
    }

    /// Looks `key` up, counting a hit or miss and refreshing the LRU
    /// stamp. A hit requires the resident entry's canonical form to
    /// equal `canonical` byte-for-byte — a hash collision (resident
    /// entry with a *different* canonical form) is handled as a miss
    /// that replaces the entry, so artifacts never cross designs. On a
    /// miss, `build` supplies the artifacts (the evicting insert
    /// happens before returning).
    ///
    /// `want_probes` selects which parked tape (if any) rides along:
    /// `None` means the job simulates without a tape (interpreter
    /// backend), `Some(p)` asks for a tape whose probes match `p` — a
    /// probed tape also satisfies `Some(false)` since its probes are a
    /// superset the engine ignores when coverage is off.
    pub fn checkout<E>(
        &mut self,
        key: &str,
        canonical: &str,
        want_probes: Option<bool>,
        build: impl FnOnce() -> Result<(Arc<Module>, Arc<Elab>), E>,
    ) -> Result<Checkout, E> {
        let mut collision = false;
        if let Some(entry) = self.map.get_mut(key) {
            if entry.canonical == canonical {
                self.hits += 1;
                let compiled = match want_probes {
                    None => None,
                    Some(p) => entry.compiled[usize::from(p)].clone().or_else(|| {
                        if p {
                            None
                        } else {
                            entry.compiled[1].clone()
                        }
                    }),
                };
                if compiled.is_some() {
                    self.compiled_reused += 1;
                }
                return Ok(Checkout {
                    module: entry.module.clone(),
                    elab: entry.elab.clone(),
                    checker: entry.parked.pop(),
                    compiled,
                    hit: true,
                });
            }
            collision = true;
        }
        if collision {
            // 64-bit collision: drop the resident design rather than
            // ever serving the wrong artifacts.
            self.map.remove(key);
            self.evictions_collision += 1;
        }
        self.misses += 1;
        let (module, elab) = build()?;
        let entry = CachedDesign {
            module: module.clone(),
            elab: elab.clone(),
            parked: Vec::new(),
            compiled: [None, None],
            canonical: canonical.to_string(),
        };
        self.map.insert(key.to_string(), entry);
        while self.map.pop_over_capacity().is_some() {
            self.evictions_capacity += 1;
        }
        self.enforce_byte_budget();
        Ok(Checkout {
            module,
            elab,
            checker: None,
            compiled: None,
            hit: false,
        })
    }

    /// Parks a finished job's checker back into its entry. The entry
    /// must still hold the *same design* (`canonical` is compared, not
    /// just the key — a collision replacement while the job ran must
    /// not receive another design's checker); otherwise the checker is
    /// dropped. Eviction only forgets warm state, never correctness.
    pub fn park(&mut self, key: &str, canonical: &str, checker: Checker) {
        // `peek_mut`: parking warms the entry but is not a use — only
        // checkouts refresh recency, as the stamp version behaved.
        if let Some(entry) = self.map.peek_mut(key) {
            if entry.canonical == canonical && entry.parked.len() < MAX_PARKED_PER_DESIGN {
                entry.parked.push(checker);
            }
        }
        self.enforce_byte_budget();
    }

    /// Parks the compiled instruction tape a job built for this design,
    /// counting the build. The tape lands in the slot matching its
    /// compile options (probed vs probe-free — the entry records what
    /// each parked tape observes). Subject to the same collision guard
    /// as [`DesignCache::park`]; an entry whose slot already holds a
    /// tape keeps its existing one (compilation is deterministic — they
    /// are equivalent).
    pub fn park_compiled(&mut self, key: &str, canonical: &str, compiled: Arc<CompiledModule>) {
        self.compiled_built += 1;
        if let Some(entry) = self.map.peek_mut(key) {
            let slot = usize::from(compiled.has_probes());
            if entry.canonical == canonical && entry.compiled[slot].is_none() {
                entry.compiled[slot] = Some(compiled);
            }
        }
        self.enforce_byte_budget();
    }

    /// Drops `key`'s entry entirely — module, elab, parked checkers and
    /// compiled tapes. The retry path calls this when a job failed in a
    /// way that may implicate the cached artifacts (a worker panic, an
    /// injected checkout fault): the retry rebuilds from source instead
    /// of re-running on possibly-poisoned warm state. Not counted as an
    /// eviction — the eviction counters keep meaning "the budget pushed
    /// a good entry out" (and their capacity/bytes/collision split keeps
    /// summing to the total); retries are visible through the service's
    /// own `jobs_retried` counter. Returns whether an entry was dropped.
    pub fn invalidate(&mut self, key: &str) -> bool {
        self.map.remove(key).is_some()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            capacity: self.map.capacity().unwrap_or(usize::MAX),
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions_capacity + self.evictions_bytes + self.evictions_collision,
            evictions_capacity: self.evictions_capacity,
            evictions_bytes: self.evictions_bytes,
            evictions_collision: self.evictions_collision,
            approx_bytes: self.resident_bytes(),
            max_bytes: self.max_bytes,
            compiled_built: self.compiled_built,
            compiled_reused: self.compiled_reused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::parse_verilog;

    fn build(src: &str) -> (Arc<Module>, Arc<Elab>) {
        let m = parse_verilog(src).unwrap();
        let e = gm_rtl::elaborate(&m).unwrap();
        (Arc::new(m), Arc::new(e))
    }

    const A: &str = "module a(input x, output y); assign y = x; endmodule";
    const B: &str = "module b(input x, output y); assign y = ~x; endmodule";
    const C: &str = "module c(input x, output y); assign y = x; endmodule";

    #[test]
    fn content_key_ignores_formatting_but_not_structure() {
        let m1 = parse_verilog(A).unwrap();
        let m2 =
            parse_verilog("module a(input x,\n         output y);\n  assign y = x;\nendmodule")
                .unwrap();
        assert_eq!(content_key(&m1), content_key(&m2));
        assert_ne!(content_key(&m1), content_key(&parse_verilog(B).unwrap()));
        // Same body, different module name: different design.
        assert_ne!(content_key(&m1), content_key(&parse_verilog(C).unwrap()));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = DesignCache::new(2);
        let (ka, kb, kc) = ("a", "b", "c");
        let ok = |src: &'static str| move || Ok::<_, ()>(build(src));
        cache.checkout(ka, A, Some(true), ok(A)).unwrap();
        cache.checkout(kb, B, Some(true), ok(B)).unwrap();
        // Touch A so B is the LRU victim when C arrives.
        assert!(cache.checkout(ka, A, Some(true), ok(A)).unwrap().hit);
        cache.checkout(kc, C, Some(true), ok(C)).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        // A (recently touched) survived…
        assert!(cache.checkout(ka, A, Some(true), ok(A)).unwrap().hit);
        // …and B was evicted: checking it out again is a miss.
        let back = cache.checkout(kb, B, Some(true), ok(B)).unwrap();
        assert!(!back.hit);
        assert!(back.checker.is_none());
    }

    #[test]
    fn a_key_collision_never_serves_the_wrong_design() {
        // Force a "collision" by reusing one key for two different
        // canonical forms: the second checkout must NOT hit.
        let mut cache = DesignCache::new(4);
        let ok = |src: &'static str| move || Ok::<_, ()>(build(src));
        cache.checkout("k", A, Some(true), ok(A)).unwrap();
        let other = cache.checkout("k", B, Some(true), ok(B)).unwrap();
        assert!(!other.hit, "colliding canonical forms are a miss");
        assert_eq!(other.module.name(), "b");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1, "the resident collider was dropped");
        assert!(!cache.matches("k", A));
        assert!(cache.matches("k", B));
        // A checker from the replaced design must not attach to the
        // new resident under the shared key.
        let a = parse_verilog(A).unwrap();
        cache.park("k", A, Checker::new(&a).unwrap());
        let again = cache.checkout("k", B, Some(true), ok(B)).unwrap();
        assert!(again.hit);
        assert!(
            again.checker.is_none(),
            "the stale design's checker must be dropped, not served"
        );
    }

    #[test]
    fn parked_checkers_come_back_and_dropped_ones_are_harmless() {
        let mut cache = DesignCache::new(1);
        let ok = |src: &'static str| move || Ok::<_, ()>(build(src));
        let cold = cache.checkout("a", A, Some(true), ok(A)).unwrap();
        assert!(
            cold.checker.is_none(),
            "cold entries have no parked checker"
        );
        cache.park("a", A, Checker::new(&cold.module).unwrap());
        let warm = cache.checkout("a", A, Some(true), ok(A)).unwrap();
        assert!(warm.hit && warm.checker.is_some());
        assert!(cache.stats().approx_bytes > 0);
        // Evict "a" while its checker is out; parking it back is a no-op.
        cache.checkout("b", B, Some(true), ok(B)).unwrap();
        cache.park("a", A, warm.checker.unwrap());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn compiled_tapes_are_slotted_by_probe_options() {
        use goldmine::{CompileOptions, CompiledModule};
        let mut cache = DesignCache::new(2);
        let ok = |src: &'static str| move || Ok::<_, ()>(build(src));
        let cold = cache.checkout("a", A, Some(true), ok(A)).unwrap();
        assert!(cold.compiled.is_none(), "cold entries hold no tape");
        let probed = Arc::new(CompiledModule::compile(&cold.module).unwrap());
        let bare = Arc::new(
            CompiledModule::compile_with(&cold.module, CompileOptions { probes: false }).unwrap(),
        );
        cache.park_compiled("a", A, probed.clone());
        // A probed tape serves both probed and probe-free wants…
        let want_probed = cache.checkout("a", A, Some(true), ok(A)).unwrap();
        assert!(want_probed.compiled.is_some_and(|c| c.has_probes()));
        let want_bare = cache.checkout("a", A, Some(false), ok(A)).unwrap();
        assert!(want_bare.compiled.is_some_and(|c| c.has_probes()));
        // …an interpreter job takes none…
        let no_tape = cache.checkout("a", A, None, ok(A)).unwrap();
        assert!(no_tape.compiled.is_none());
        // …and once a probe-free tape is parked, probe-free wants get
        // the exact match while probed wants keep theirs.
        cache.park_compiled("a", A, bare);
        let exact = cache.checkout("a", A, Some(false), ok(A)).unwrap();
        assert!(exact.compiled.is_some_and(|c| !c.has_probes()));
        let still = cache.checkout("a", A, Some(true), ok(A)).unwrap();
        assert!(still.compiled.is_some_and(|c| c.has_probes()));
        let stats = cache.stats();
        assert_eq!(stats.compiled_built, 2);
        assert_eq!(
            stats.compiled_reused, 4,
            "only tape-carrying checkouts count"
        );
    }
}
