//! The persistent closure service.
//!
//! A [`ClosureService`] owns a pool of long-lived workers running the
//! [`crate::scheduler`] queue discipline, a job table, and the
//! content-addressed [`DesignCache`]. Requests arrive through the typed
//! API ([`ClosureService::submit_module`] & co., used in-process) or
//! through [`ClosureService::handle_request`] (the wire dispatcher the
//! Unix-socket server calls); both paths share all state, so a design
//! submitted over the socket warms the cache for in-process callers and
//! vice versa.
//!
//! ## Determinism
//!
//! A served job's [`ClosureOutcome`] is byte-identical to a standalone
//! [`Engine`] run of the same module and config, regardless of worker
//! count, scheduling policy, cache state, or what else the service is
//! doing: jobs never share mutable state, artifact reuse is
//! stats-invisible ([`gm_mc::Checker::reset_for_reuse`]), and the
//! engine's own determinism contract covers everything inside the run.
//! The differential suite (`tests/serve_agree.rs`) enforces this across
//! the whole design catalog. The one opt-out is
//! [`ServeConfig::warm_memo`], which carries verification memos across
//! runs of the same design — verdicts and artifacts stay identical, but
//! the work counters in the outcome's iteration reports then reflect
//! the memo hits.

use crate::cache::DesignCache;
use crate::protocol::{
    ClosureSummary, JobState, ProgressEvent, Request, Response, ServeStats, WireConfig,
    WireHistogram,
};
use crate::scheduler::{SchedPolicy, StealQueues};
use gm_mc::{Checker, SessionStats};
use gm_rtl::{Elab, Module};
use goldmine::{
    ClosureOutcome, CompileOptions, CompiledModule, Engine, EngineConfig, EngineError, SimBackend,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Service construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker-pool size; 0 = one per available core.
    pub workers: usize,
    /// Design-cache capacity (distinct designs kept warm).
    pub cache_capacity: usize,
    /// Design-cache byte budget (0 = unbounded). When resident warm
    /// state exceeds it, entries are evicted LRU-first until back under
    /// budget — so a handful of huge designs can no longer hold ~all
    /// memory while tiny warm designs are evicted by the entry count.
    /// See [`DesignCache::with_max_bytes`].
    pub cache_max_bytes: usize,
    /// Queue discipline (work-stealing by default).
    pub policy: SchedPolicy,
    /// Keep verification memos warm across runs of the same design.
    /// Off by default: warm memos change the work counters embedded in
    /// the outcome's iteration reports (verdicts and artifacts stay
    /// identical), so the default preserves byte-identity with
    /// standalone runs.
    pub warm_memo: bool,
    /// How many *finished* job records (progress, summary, any
    /// untaken outcome) the table retains; the oldest finished records
    /// are dropped past the bound, so a long-lived daemon's memory
    /// stays bounded. Queued/running jobs are never dropped. A client
    /// polling a dropped job sees "unknown job".
    pub retain_jobs: usize,
    /// Property-memo bound applied to checkers parked under
    /// `warm_memo` ([`gm_mc::Checker::with_memo_capacity`]) — the
    /// eviction knob that keeps a daemon's warm memos from growing
    /// without bound across requests. Irrelevant when `warm_memo` is
    /// off (memos are cleared by the reset).
    pub warm_memo_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            cache_capacity: 8,
            cache_max_bytes: 0,
            policy: SchedPolicy::WorkStealing,
            warm_memo: false,
            retain_jobs: 1024,
            warm_memo_capacity: 4096,
        }
    }
}

/// A service-level submission failure (parse, elaboration, config
/// resolution).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serve: {}", self.0)
    }
}

impl std::error::Error for ServeError {}

/// A status snapshot of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// Job label.
    pub name: String,
    /// Progress events recorded so far.
    pub progress_len: usize,
    /// The engine error, for failed jobs.
    pub error: Option<String>,
    /// Whether the design's artifacts were cached at submission.
    pub cached: bool,
}

struct JobRecord {
    name: String,
    key: String,
    /// The design's canonical form — required to park the checker back
    /// safely (see [`DesignCache::park`]).
    canonical: Arc<str>,
    config: EngineConfig,
    module: Arc<Module>,
    elab: Arc<Elab>,
    /// A warm checker checked out of the cache at submission (absent on
    /// cold entries or when every parked checker is busy).
    checker: Option<Checker>,
    /// The design's parked compiled tape, when the cache held one at
    /// submission (an `Arc` clone — shared, unlike the checker).
    compiled: Option<Arc<CompiledModule>>,
    state: JobState,
    progress: Vec<ProgressEvent>,
    outcome: Option<Result<ClosureOutcome, EngineError>>,
    error: Option<String>,
    cancel: Arc<AtomicBool>,
    cached: bool,
    /// Submission timestamp on the process trace clock — the base of
    /// the queue-latency histogram and the retroactive `serve.queue`
    /// span.
    submitted_ns: u64,
    /// The per-job flight recorder, present when the submission asked
    /// for one. The worker installs it as its thread sink for the whole
    /// claim→retire window; clients fetch the export once the job is
    /// terminal.
    trace: Option<gm_trace::TraceSink>,
}

struct State {
    jobs: HashMap<u64, JobRecord>,
    /// Finished job ids in completion order — the FIFO behind
    /// [`ServeConfig::retain_jobs`].
    finished: std::collections::VecDeque<u64>,
    cache: DesignCache,
    next_id: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    /// Verification work aggregated from every retired job's outcome
    /// (the per-job [`SessionStats`] totals) — the service-level view a
    /// metrics scrape exposes.
    verify: SessionStats,
    /// Queue latency (submission → worker claim), observed at every
    /// real claim — cancelled-while-queued jobs never waited a full
    /// queue turn and are not sampled.
    queue_hist: WireHistogram,
    /// Job wall time (worker claim → terminal state), observed at
    /// retire.
    wall_hist: WireHistogram,
}

impl State {
    /// Records that `id` reached a terminal state, evicting the oldest
    /// finished records past the retention bound.
    fn retire(&mut self, id: u64, retain: usize) {
        self.finished.push_back(id);
        while self.finished.len() > retain.max(1) {
            let oldest = self.finished.pop_front().expect("non-empty");
            self.jobs.remove(&oldest);
        }
    }

    /// Retires a still-queued job as cancelled: parks its checked-out
    /// warm checker back into the cache, counts the cancellation, and
    /// applies retention. No-op for jobs past `Queued`. Used by both
    /// the worker claim path and the shutdown queue drain — callers
    /// notify `done_cv` afterwards.
    fn cancel_queued(&mut self, id: u64, retain: usize) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.state != JobState::Queued {
            return;
        }
        job.state = JobState::Cancelled;
        let checker = job.checker.take();
        let key = job.key.clone();
        let canonical = job.canonical.clone();
        self.cancelled += 1;
        if let Some(checker) = checker {
            self.cache.park(&key, &canonical, checker);
        }
        self.retire(id, retain);
    }
}

struct Shared {
    config: ServeConfig,
    queues: StealQueues<u64>,
    state: Mutex<State>,
    /// Notified (with the state mutex) whenever a job reaches a
    /// terminal state.
    done_cv: Condvar,
    open: AtomicBool,
}

/// The persistent closure service (see the module docs).
///
/// # Examples
///
/// ```
/// use gm_serve::{ClosureService, ServeConfig};
/// use goldmine::{EngineConfig, SeedStimulus};
///
/// let service = ClosureService::new(ServeConfig { workers: 2, ..ServeConfig::default() });
/// let module = gm_rtl::parse_verilog(
///     "module m(input a, input b, output y); assign y = a & b; endmodule")?;
/// let config = EngineConfig {
///     window: 0,
///     stimulus: SeedStimulus::Random { cycles: 8 },
///     record_coverage: false,
///     ..EngineConfig::default()
/// };
/// let (job, cached) = service.submit_module("andgate", module, config)?;
/// assert!(!cached, "first submission is a cache miss");
/// service.wait(job);
/// let outcome = service.take_outcome(job).unwrap()?;
/// assert!(outcome.converged);
/// service.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ClosureService {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ClosureService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ClosureService({} workers, {:?})",
            self.shared.queues.worker_count(),
            self.shared.config.policy
        )
    }
}

fn terminal(state: JobState) -> bool {
    matches!(
        state,
        JobState::Done | JobState::Failed | JobState::Cancelled
    )
}

impl ClosureService {
    /// Starts the service: spawns the worker pool and returns the
    /// handle. Workers idle until submissions arrive.
    pub fn new(config: ServeConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queues: StealQueues::new(workers, config.policy),
            state: Mutex::new(State {
                jobs: HashMap::new(),
                finished: std::collections::VecDeque::new(),
                cache: DesignCache::with_max_bytes(config.cache_capacity, config.cache_max_bytes),
                next_id: 1,
                submitted: 0,
                completed: 0,
                failed: 0,
                cancelled: 0,
                verify: SessionStats::default(),
                queue_hist: WireHistogram::default(),
                wall_hist: WireHistogram::default(),
            }),
            done_cv: Condvar::new(),
            open: AtomicBool::new(true),
            config,
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gmserve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn service worker")
            })
            .collect();
        ClosureService {
            shared,
            handles: Mutex::new(handles),
        }
    }

    fn state(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("service state poisoned")
    }

    /// Submits Verilog source with a wire config (the socket path).
    ///
    /// # Errors
    ///
    /// Fails on parse, elaboration or target-resolution errors, or
    /// after shutdown.
    pub fn submit_source(
        &self,
        name: &str,
        source: &str,
        wire: &WireConfig,
    ) -> Result<(u64, bool), ServeError> {
        self.submit_source_traced(name, source, wire, false)
    }

    /// [`ClosureService::submit_source`] with an optional per-job
    /// flight recorder (see [`ClosureService::submit_module_traced`]).
    ///
    /// # Errors
    ///
    /// Fails on parse, elaboration or target-resolution errors, or
    /// after shutdown.
    pub fn submit_source_traced(
        &self,
        name: &str,
        source: &str,
        wire: &WireConfig,
        trace: bool,
    ) -> Result<(u64, bool), ServeError> {
        let module =
            gm_rtl::parse_verilog(source).map_err(|e| ServeError(format!("parse error: {e}")))?;
        let config = wire
            .to_engine(&module)
            .map_err(|e| ServeError(e.to_string()))?;
        self.submit_module_traced(name, module, config, trace)
    }

    /// Submits a parsed module with a resolved engine config (the
    /// in-process path). Returns the job id and whether the design's
    /// artifacts were already cached.
    ///
    /// # Errors
    ///
    /// Fails on elaboration errors, or after shutdown.
    pub fn submit_module(
        &self,
        name: &str,
        module: Module,
        config: EngineConfig,
    ) -> Result<(u64, bool), ServeError> {
        self.submit_module_traced(name, module, config, false)
    }

    /// [`ClosureService::submit_module`] with an optional per-job
    /// flight recorder: when `trace` is set the job captures structured
    /// spans for its whole claim→retire window (engine iterations, SAT
    /// queries, simulation batches, cache interactions), retrievable as
    /// Chrome trace-event JSON via [`ClosureService::trace_json`] once
    /// terminal. Tracing never changes the outcome — the `trace_agree`
    /// suite proves byte-identity recorder on/off.
    ///
    /// # Errors
    ///
    /// Fails on elaboration errors, or after shutdown.
    pub fn submit_module_traced(
        &self,
        name: &str,
        module: Module,
        config: EngineConfig,
        trace: bool,
    ) -> Result<(u64, bool), ServeError> {
        let trace_sink = trace.then(gm_trace::TraceSink::new);
        let canonical = crate::cache::canonical_form(&module);
        let key = crate::cache::key_of(&canonical);
        // Elaboration is the expensive part of a cold submission; do it
        // *outside* the state lock so a big design never stalls status
        // polls, progress streams or running jobs' iteration callbacks.
        // The loop handles the races: another submitter may insert the
        // design while we build (our build is discarded), or evict it
        // between our peek and our checkout (we build and retry).
        let mut module = Some(module);
        let mut prebuilt: Option<(Arc<Module>, Arc<Elab>)> = None;
        loop {
            let mut st = self.state();
            if !self.shared.open.load(Ordering::Acquire) {
                return Err(ServeError("service is shut down".into()));
            }
            if !st.cache.matches(&key, &canonical) && prebuilt.is_none() {
                drop(st);
                let module = module.take().expect("module consumed at most once");
                let elab = gm_rtl::elaborate(&module)
                    .map_err(|e| ServeError(format!("elaboration error: {e}")))?;
                prebuilt = Some((Arc::new(module), Arc::new(elab)));
                continue;
            }
            // Which parked tape this job can use: none for the
            // interpreter; otherwise one whose probes match the job's
            // coverage setting (a probed tape also serves probe-free).
            let want_probes =
                (config.sim_backend != SimBackend::Interpreter).then_some(config.record_coverage);
            let checkout = st.cache.checkout(&key, &canonical, want_probes, || {
                Ok::<_, ServeError>(prebuilt.take().expect("artifacts prebuilt on miss"))
            })?;
            let (module, elab, checker, compiled, cached) = (
                checkout.module,
                checkout.elab,
                checkout.checker,
                checkout.compiled,
                checkout.hit,
            );
            let id = st.next_id;
            st.next_id += 1;
            st.submitted += 1;
            st.jobs.insert(
                id,
                JobRecord {
                    name: name.to_string(),
                    key,
                    canonical: Arc::from(canonical.as_str()),
                    config,
                    module,
                    elab,
                    checker,
                    compiled,
                    state: JobState::Queued,
                    progress: Vec::new(),
                    outcome: None,
                    error: None,
                    cancel: Arc::new(AtomicBool::new(false)),
                    cached,
                    submitted_ns: gm_trace::now_ns(),
                    trace: trace_sink,
                },
            );
            // Deal to the owning worker's local queue (still under the
            // state lock: `shutdown`'s post-join drain takes the same
            // lock, so a submission racing shutdown either saw `open`
            // false above or its id is visible to the drain); idle
            // peers steal.
            let worker = (id - 1) as usize % self.shared.queues.worker_count();
            self.shared.queues.push(worker, id);
            return Ok((id, cached));
        }
    }

    /// A job's current status.
    pub fn status(&self, job: u64) -> Option<JobStatus> {
        let st = self.state();
        st.jobs.get(&job).map(|j| JobStatus {
            state: j.state,
            name: j.name.clone(),
            progress_len: j.progress.len(),
            error: j.error.clone(),
            cached: j.cached,
        })
    }

    /// Progress events from index `from` on, plus whether the job is
    /// terminal (polling `progress` with the last seen index streams
    /// per-iteration updates).
    pub fn progress(&self, job: u64, from: usize) -> Option<(Vec<ProgressEvent>, bool)> {
        let st = self.state();
        st.jobs.get(&job).map(|j| {
            let events = j.progress.get(from..).unwrap_or(&[]).to_vec();
            (events, terminal(j.state))
        })
    }

    /// Requests cancellation. Queued jobs are dropped before they run;
    /// running jobs stop cooperatively *mid-iteration* — the token is
    /// polled between the checker's SAT queries and once per simulated
    /// cycle of the coverage passes (see [`Engine::with_cancel`]), so a
    /// stuck job frees its worker without waiting for the iteration
    /// boundary. The partial outcome stays valid and is retrievable via
    /// [`ClosureService::take_outcome`]. Returns whether the job
    /// existed and was still cancellable.
    pub fn cancel(&self, job: u64) -> bool {
        let mut st = self.state();
        let Some(record) = st.jobs.get_mut(&job) else {
            return false;
        };
        if terminal(record.state) {
            return false;
        }
        record.cancel.store(true, Ordering::Release);
        if record.state == JobState::Queued {
            // The worker will observe the flag and retire the job; wake
            // anyone already waiting.
            self.shared.queues.notify_all();
        }
        true
    }

    /// Blocks until `job` reaches a terminal state; returns it (`None`
    /// for unknown jobs).
    pub fn wait(&self, job: u64) -> Option<JobState> {
        let mut st = self.state();
        loop {
            match st.jobs.get(&job) {
                None => return None,
                Some(j) if terminal(j.state) => return Some(j.state),
                Some(_) => {
                    st = self
                        .shared
                        .done_cv
                        .wait(st)
                        .expect("service state poisoned");
                }
            }
        }
    }

    /// A finished job's wire summary (`None` until it is `Done`, or
    /// after [`ClosureService::take_outcome`] — cancelled jobs' partial
    /// outcomes stay accessible through `take_outcome` only). Rendered
    /// on demand — the table stores one copy of the outcome, not a
    /// duplicate multi-KB debug string per retained job.
    pub fn summary(&self, job: u64) -> Option<ClosureSummary> {
        let st = self.state();
        st.jobs
            .get(&job)
            .and_then(|j| match (&j.state, &j.outcome) {
                (JobState::Done, Some(Ok(outcome))) => {
                    Some(ClosureSummary::from_outcome(outcome, &j.module))
                }
                _ => None,
            })
    }

    /// Removes and returns a finished job's full outcome — the
    /// in-process form the differential tests compare against
    /// standalone engine runs.
    pub fn take_outcome(&self, job: u64) -> Option<Result<ClosureOutcome, EngineError>> {
        let mut st = self.state();
        st.jobs.get_mut(&job).and_then(|j| j.outcome.take())
    }

    /// A terminal traced job's flight recording as Chrome trace-event
    /// JSON (see [`ClosureService::submit_module_traced`]). Exported on
    /// demand from the job's sink; repeat calls re-export the same
    /// recording.
    ///
    /// # Errors
    ///
    /// Fails for unknown jobs, jobs still queued or running, and jobs
    /// that were not submitted with tracing.
    pub fn trace_json(&self, job: u64) -> Result<String, ServeError> {
        let st = self.state();
        let Some(j) = st.jobs.get(&job) else {
            return Err(ServeError(format!("unknown job {job}")));
        };
        if !terminal(j.state) {
            return Err(ServeError(format!(
                "job {job} is still {}; traces are exported once terminal",
                j.state.as_str()
            )));
        }
        match &j.trace {
            Some(sink) => Ok(sink.export_chrome_json()),
            None => Err(ServeError(format!(
                "job {job} was not submitted with tracing"
            ))),
        }
    }

    /// Aggregate service counters. Internally consistent: every field
    /// is read under one acquisition of the state lock, and all job
    /// state transitions update their counters under the same lock, so
    /// `submitted == queued + running + completed + failed + cancelled`
    /// holds in every snapshot.
    pub fn stats(&self) -> ServeStats {
        let st = self.state();
        let cache = st.cache.stats();
        let queued = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count() as u64;
        let running = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count() as u64;
        ServeStats {
            submitted: st.submitted,
            queued,
            running,
            completed: st.completed,
            failed: st.failed,
            cancelled: st.cancelled,
            workers: self.shared.queues.worker_count() as u64,
            steals: self.shared.queues.steals(),
            cache_entries: cache.entries as u64,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_evictions_capacity: cache.evictions_capacity,
            cache_evictions_bytes: cache.evictions_bytes,
            cache_evictions_collision: cache.evictions_collision,
            cache_bytes: cache.approx_bytes as u64,
            cache_max_bytes: cache.max_bytes as u64,
            compiled_built: cache.compiled_built,
            compiled_reused: cache.compiled_reused,
            verify_sat_queries: st.verify.sat_queries,
            verify_sat_decided: st.verify.sat_decided,
            verify_explicit_queries: st.verify.explicit_queries,
            verify_memo_hits: st.verify.memo_hits,
            verify_frames_encoded: st.verify.frames_encoded,
            verify_frames_reused: st.verify.frames_reused,
            verify_cex_canonicalized: st.verify.cex_canonicalized,
            queue_seconds: st.queue_hist.clone(),
            wall_seconds: st.wall_hist.clone(),
        }
    }

    /// Dispatches one wire request — the single entry point the socket
    /// server (and any in-process framing user) calls.
    pub fn handle_request(&self, request: &Request) -> Response {
        match request {
            Request::Submit {
                name,
                source,
                config,
                trace,
            } => match self.submit_source_traced(name, source, config, *trace) {
                Ok((job, cached)) => Response::Submitted { job, cached },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Status { job } => match self.status(*job) {
                Some(s) => Response::Status {
                    job: *job,
                    state: s.state,
                    name: s.name,
                    progress_len: s.progress_len as u64,
                    error: s.error,
                },
                None => Response::Error {
                    message: format!("unknown job {job}"),
                },
            },
            Request::Progress { job, from } => match self.progress(*job, *from as usize) {
                Some((events, terminal)) => Response::Progress {
                    job: *job,
                    from: *from,
                    events,
                    terminal,
                },
                None => Response::Error {
                    message: format!("unknown job {job}"),
                },
            },
            Request::Wait { job } => match self.wait(*job) {
                Some(JobState::Done) => match self.summary(*job) {
                    Some(summary) => Response::Done { job: *job, summary },
                    // The record can be retired (the `retain_jobs`
                    // bound) between wait() and summary().
                    None => Response::Error {
                        message: format!("job {job} finished but its record was retired"),
                    },
                },
                Some(state) => {
                    let error = self.status(*job).and_then(|s| s.error);
                    Response::Error {
                        message: match error {
                            Some(e) => format!("job {job} {}: {e}", state.as_str()),
                            None => format!("job {job} {}", state.as_str()),
                        },
                    }
                }
                None => Response::Error {
                    message: format!("unknown job {job}"),
                },
            },
            Request::Cancel { job } => {
                if self.cancel(*job) {
                    self.status(*job)
                        .map(|s| Response::Status {
                            job: *job,
                            state: s.state,
                            name: s.name,
                            progress_len: s.progress_len as u64,
                            error: s.error,
                        })
                        .unwrap_or(Response::Error {
                            message: format!("unknown job {job}"),
                        })
                } else {
                    Response::Error {
                        message: format!("job {job} is unknown or already finished"),
                    }
                }
            }
            Request::Trace { job } => match self.trace_json(*job) {
                Ok(trace) => Response::Trace { job: *job, trace },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Stats => Response::Stats(self.stats()),
            Request::Metrics => Response::Metrics {
                text: self.stats().to_prometheus(),
            },
            Request::Shutdown => {
                // Begin the shutdown here so the wire path is
                // transport-agnostic: submissions are refused and the
                // workers start draining immediately. The *blocking*
                // half (joining workers) stays with whoever owns the
                // service — the socket loop or Drop calls
                // [`ClosureService::shutdown`] after this response.
                self.begin_shutdown();
                Response::ShuttingDown
            }
        }
    }

    /// Non-blocking first half of [`ClosureService::shutdown`]: stop
    /// accepting submissions and let the workers drain. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shared.open.store(false, Ordering::Release);
        self.shared.queues.notify_all();
    }

    /// Stops accepting submissions, drains every queued job, and joins
    /// the workers. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let handles: Vec<_> = self
            .handles
            .lock()
            .expect("service handles poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        // A submission that raced the close can have pushed after the
        // workers exited; retire anything left in the queues as
        // cancelled so no waiter blocks on a job nobody will run.
        let mut st = self.state();
        for w in 0..self.shared.queues.worker_count() {
            while let Some(id) = self.shared.queues.pop(w) {
                st.cancel_queued(id, self.shared.config.retain_jobs);
            }
        }
        drop(st);
        self.shared.done_cv.notify_all();
    }
}

impl Drop for ClosureService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Arc<Shared>, w: usize) {
    loop {
        match shared.queues.pop(w) {
            Some(id) => run_job(shared, id),
            None => {
                if !shared.open.load(Ordering::Acquire) {
                    break;
                }
                shared.queues.park(|| !shared.open.load(Ordering::Acquire));
            }
        }
    }
}

/// Executes one job end to end on the claiming worker.
fn run_job(shared: &Arc<Shared>, id: u64) {
    // Claim: move the job's artifacts out of the record, stamp the
    // claim on the trace clock and sample the queue-latency histogram
    // (real claims only — a cancelled-while-queued job never waited a
    // full queue turn).
    let (claim, started_ns) = {
        let mut st = shared.state.lock().expect("service state poisoned");
        let Some(job) = st.jobs.get_mut(&id) else {
            return;
        };
        if job.state != JobState::Queued {
            return;
        }
        if job.cancel.load(Ordering::Acquire) {
            st.cancel_queued(id, shared.config.retain_jobs);
            shared.done_cv.notify_all();
            return;
        }
        job.state = JobState::Running;
        let claim = (
            job.module.clone(),
            job.elab.clone(),
            job.checker.take(),
            job.compiled.take(),
            job.config.clone(),
            job.cancel.clone(),
            job.key.clone(),
            job.canonical.clone(),
            job.trace.clone(),
            job.submitted_ns,
        );
        let started_ns = gm_trace::now_ns();
        st.queue_hist.observe_ns(started_ns.saturating_sub(claim.9));
        (claim, started_ns)
    };
    let (module, elab, checker, compiled, config, cancel, key, canonical, trace, submitted_ns) =
        claim;

    // Install the per-job flight recorder (when the submission asked
    // for one) for the whole claim→retire window: every span the
    // engine, checker, and simulator open on this thread records into
    // the job's sink. The queue phase predates the claim, so it is
    // recorded retroactively from the stored submission timestamp.
    let trace_guard = trace.map(|sink| {
        sink.record(
            gm_trace::TraceEvent::complete(
                "serve",
                "serve.queue",
                submitted_ns,
                started_ns.saturating_sub(submitted_ns),
            )
            .with_arg("job", id),
        );
        gm_trace::push_thread_sink(sink)
    });
    let mut job_span = gm_trace::span("serve", "serve.job");
    if job_span.is_active() {
        job_span.arg("job", id);
    }

    // Build (or reuse) the checker and run the engine outside the lock.
    let checker_result = match checker {
        Some(c) => Ok(c),
        None => {
            let _span = gm_trace::span("serve", "serve.build_checker");
            Checker::from_elab(&module, &elab)
        }
    };
    // Reuse the design's parked compiled tape, or build (and later
    // park) one — per canonical design, not per engine. Compilation is
    // deterministic, so reuse never changes the outcome.
    let mut built_compiled: Option<Arc<CompiledModule>> = None;
    let compiled = if config.sim_backend == SimBackend::Interpreter {
        None
    } else {
        Some(compiled.unwrap_or_else(|| {
            // Compile with the probes this job needs: a coverage run
            // gets a probed tape, a trace-only run a leaner probe-free
            // one. The cache slots the parked tape by these options.
            let opts = CompileOptions {
                probes: config.record_coverage,
            };
            let mut span = gm_trace::span("serve", "serve.compile_tape");
            if span.is_active() {
                span.arg("probes", opts.probes);
            }
            let c = Arc::new(CompiledModule::with_elab_opts(&module, &elab, opts));
            built_compiled = Some(c.clone());
            c
        }))
    };
    // Whether the *run itself* observed the cancel and stopped early —
    // a cancel that lands after the final iteration has discarded
    // nothing, so the completed result stays `Done`. The iteration
    // observer catches boundary cancels; the engine's own token
    // (`with_cancel`) catches them mid-iteration, surfacing as
    // `ClosureOutcome::interrupted`.
    let mut observed_cancel = false;
    let (outcome, reclaimed) = match checker_result {
        Err(e) => (Err(EngineError::from(e)), None),
        Ok(checker) => {
            match Engine::with_artifacts_compiled(&module, &elab, checker, compiled, config) {
                // `with_artifacts_compiled` is infallible today (its
                // `Result` covers future fallible mining-spec
                // construction); if it ever gains real failure modes it
                // should hand the checker back on error so this arm can
                // re-park it instead of dropping the design's warm state.
                Err(e) => (Err(e), None),
                Ok(engine) => {
                    let shared_for_progress = shared.clone();
                    let observed_cancel = &mut observed_cancel;
                    let job_cancel = cancel.clone();
                    let (outcome, checker) =
                        engine.with_cancel(cancel.clone()).run_reclaim(|report| {
                            let mut st = shared_for_progress
                                .state
                                .lock()
                                .expect("service state poisoned");
                            if let Some(job) = st.jobs.get_mut(&id) {
                                job.progress.push(ProgressEvent::from_report(report));
                            }
                            if job_cancel.load(Ordering::Acquire) {
                                *observed_cancel = true;
                            }
                            !*observed_cancel
                        });
                    (outcome, Some(checker))
                }
            }
        }
    };

    // Close the job span and detach the recorder *before* taking the
    // retire lock: the trace must be fully flushed into the sink before
    // any client can observe the terminal state (and fetch the export).
    let was_cancelled = observed_cancel || matches!(&outcome, Ok(o) if o.interrupted);
    if job_span.is_active() {
        job_span.arg("cancelled", was_cancelled);
        job_span.arg("failed", outcome.is_err());
    }
    drop(job_span);
    drop(trace_guard);

    // Retire: record the result, park the warm artifacts.
    let mut st = shared.state.lock().expect("service state poisoned");
    st.wall_hist
        .observe_ns(gm_trace::now_ns().saturating_sub(started_ns));
    if let Some(mut checker) = reclaimed {
        if shared.config.warm_memo {
            // Warm memos persist across requests — bound them so a
            // long-lived daemon's parked checkers cannot grow forever.
            checker = checker.with_memo_capacity(shared.config.warm_memo_capacity);
        } else {
            checker.reset_for_reuse();
        }
        st.cache.park(&key, &canonical, checker);
    }
    if let Some(c) = built_compiled {
        st.cache.park_compiled(&key, &canonical, c);
    }
    if let Ok(o) = &outcome {
        st.verify += o.verification_total();
    }
    match outcome {
        Ok(outcome) => {
            if was_cancelled {
                st.cancelled += 1;
            } else {
                st.completed += 1;
            }
            let job = st.jobs.get_mut(&id).expect("running job in table");
            job.outcome = Some(Ok(outcome));
            job.state = if was_cancelled {
                JobState::Cancelled
            } else {
                JobState::Done
            };
        }
        Err(e) => {
            st.failed += 1;
            let job = st.jobs.get_mut(&id).expect("running job in table");
            job.error = Some(e.to_string());
            job.outcome = Some(Err(e));
            job.state = JobState::Failed;
        }
    }
    st.retire(id, shared.config.retain_jobs);
    shared.done_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldmine::SeedStimulus;

    fn tiny_config() -> EngineConfig {
        EngineConfig {
            window: 0,
            stimulus: SeedStimulus::Random { cycles: 8 },
            record_coverage: false,
            ..EngineConfig::default()
        }
    }

    fn parse(src: &str) -> Module {
        gm_rtl::parse_verilog(src).unwrap()
    }

    #[test]
    fn serves_a_job_and_reuses_the_design_cache() {
        let service = ClosureService::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let src = "module m(input a, input b, output y); assign y = a ^ b; endmodule";
        let (first, cached) = service
            .submit_module("m", parse(src), tiny_config())
            .unwrap();
        assert!(!cached);
        assert_eq!(service.wait(first), Some(JobState::Done));
        let first_outcome = service.take_outcome(first).unwrap().unwrap();
        assert!(first_outcome.converged);

        // Same design again: a cache hit, with an identical outcome.
        let (second, cached) = service
            .submit_module("m-again", parse(src), tiny_config())
            .unwrap();
        assert!(cached);
        service.wait(second);
        let second_outcome = service.take_outcome(second).unwrap().unwrap();
        assert_eq!(
            format!("{first_outcome:?}"),
            format!("{second_outcome:?}"),
            "warm artifacts must not change the outcome"
        );
        let stats = service.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.completed, 2);
        service.shutdown();
    }

    #[test]
    fn progress_streams_and_summary_matches_outcome() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let module = gm_designs::arbiter2();
        let gnt0 = module.require("gnt0").unwrap();
        let config = EngineConfig {
            targets: goldmine::TargetSelection::Bits(vec![(gnt0, 0)]),
            record_coverage: false,
            ..EngineConfig::default()
        };
        let (job, _) = service.submit_module("arbiter2", module, config).unwrap();
        service.wait(job);
        let (events, terminal) = service.progress(job, 0).unwrap();
        assert!(terminal);
        assert!(!events.is_empty(), "iteration 0 snapshot always streams");
        assert_eq!(events[0].iteration, 0);
        let summary = service.summary(job).unwrap();
        assert!(summary.converged);
        let outcome = service.take_outcome(job).unwrap().unwrap();
        assert_eq!(summary.outcome_debug, format!("{outcome:?}"));
        assert_eq!(events.len(), outcome.iterations.len());
    }

    #[test]
    fn queued_jobs_cancel_before_running() {
        // One worker, first job slow enough that a queued second job
        // can be cancelled before a worker claims it.
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let module = gm_designs::arbiter4();
        let (slow, _) = service
            .submit_module("slow", module, EngineConfig::default())
            .unwrap();
        let (victim, _) = service
            .submit_module(
                "victim",
                parse("module v(input a, output y); assign y = a; endmodule"),
                tiny_config(),
            )
            .unwrap();
        assert!(service.cancel(victim));
        assert_eq!(service.wait(victim), Some(JobState::Cancelled));
        assert_eq!(service.wait(slow), Some(JobState::Done));
        assert!(!service.cancel(victim), "terminal jobs are not cancellable");
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn finished_jobs_are_retained_up_to_the_bound() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            retain_jobs: 2,
            ..ServeConfig::default()
        });
        let src = "module r(input a, output y); assign y = a; endmodule";
        let ids: Vec<u64> = (0..4)
            .map(|i| {
                let (id, _) = service
                    .submit_module(&format!("r{i}"), parse(src), tiny_config())
                    .unwrap();
                service.wait(id);
                id
            })
            .collect();
        // The two oldest finished records were dropped; the newest two
        // remain queryable.
        assert!(service.status(ids[0]).is_none());
        assert!(service.status(ids[1]).is_none());
        assert!(service.take_outcome(ids[2]).is_some());
        assert_eq!(service.status(ids[3]).unwrap().state, JobState::Done);
        assert_eq!(service.stats().completed, 4, "counters outlive records");
        service.shutdown();
    }

    #[test]
    fn failed_jobs_report_the_engine_error() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        // Force a failure: explicit backend on a design over the input
        // limits.
        let module = parse(
            "module wide(input clk, input [15:0] d, output reg [15:0] q);
               always @(posedge clk) q <= d;
             endmodule",
        );
        let config = EngineConfig {
            backend: gm_mc::Backend::Explicit,
            ..tiny_config()
        };
        let (job, _) = service.submit_module("wide", module, config).unwrap();
        assert_eq!(service.wait(job), Some(JobState::Failed));
        let status = service.status(job).unwrap();
        assert!(status.error.is_some(), "{status:?}");
        assert!(service.summary(job).is_none());
        assert!(service.take_outcome(job).unwrap().is_err());
    }

    #[test]
    fn traced_jobs_capture_a_flight_recording() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let src = "module t(input a, input b, output y); assign y = a & b; endmodule";
        let (traced, _) = service
            .submit_module_traced("traced", parse(src), tiny_config(), true)
            .unwrap();
        let (plain, _) = service
            .submit_module("plain", parse(src), tiny_config())
            .unwrap();
        service.wait(traced);
        service.wait(plain);

        let json = service.trace_json(traced).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        for name in ["serve.queue", "serve.job", "engine.run", "engine.verify"] {
            assert!(
                json.contains(&format!("\"name\":\"{name}\"")),
                "span {name} missing from the recording"
            );
        }
        // Untraced and unknown jobs have no recording to export.
        assert!(service.trace_json(plain).is_err());
        assert!(service.trace_json(u64::MAX).is_err());

        // Tracing never changes the outcome.
        let traced_outcome = service.take_outcome(traced).unwrap().unwrap();
        let plain_outcome = service.take_outcome(plain).unwrap().unwrap();
        assert_eq!(
            format!("{traced_outcome:?}"),
            format!("{plain_outcome:?}"),
            "the recorder must be inert"
        );

        // Both claims and both retirements were sampled.
        let stats = service.stats();
        assert_eq!(stats.queue_seconds.count(), 2);
        assert_eq!(stats.wall_seconds.count(), 2);
        assert!(stats.wall_seconds.sum_ns > 0);
        service.shutdown();
    }

    #[test]
    fn trace_requests_flow_through_the_wire_dispatcher() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let response = service.handle_request(&Request::Submit {
            name: "wired".into(),
            source: "module w(input a, output y); assign y = ~a; endmodule".into(),
            config: WireConfig::default(),
            trace: true,
        });
        let Response::Submitted { job, .. } = response else {
            panic!("unexpected response {response:?}");
        };
        service.wait(job);
        match service.handle_request(&Request::Trace { job }) {
            Response::Trace { job: id, trace } => {
                assert_eq!(id, job);
                assert!(trace.contains("\"name\":\"serve.job\""));
            }
            other => panic!("unexpected response {other:?}"),
        }
        match service.handle_request(&Request::Trace { job: job + 100 }) {
            Response::Error { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let service = ClosureService::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let ids: Vec<u64> = (0..6)
            .map(|i| {
                service
                    .submit_module(
                        &format!("job{i}"),
                        parse("module d(input a, input b, output y); assign y = a | b; endmodule"),
                        tiny_config(),
                    )
                    .unwrap()
                    .0
            })
            .collect();
        service.shutdown();
        for id in ids {
            assert_eq!(
                service.status(id).unwrap().state,
                JobState::Done,
                "shutdown must finish accepted work"
            );
        }
        assert!(
            service
                .submit_module(
                    "late",
                    parse("module z(input a, output y); assign y = a; endmodule"),
                    tiny_config()
                )
                .is_err(),
            "submissions after shutdown are rejected"
        );
    }
}
