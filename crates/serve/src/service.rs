//! The persistent closure service.
//!
//! A [`ClosureService`] owns a pool of long-lived workers running the
//! [`crate::scheduler`] queue discipline, a job table, and the
//! content-addressed [`DesignCache`]. Requests arrive through the typed
//! API ([`ClosureService::submit_module`] & co., used in-process) or
//! through [`ClosureService::handle_request`] (the wire dispatcher the
//! Unix-socket server calls); both paths share all state, so a design
//! submitted over the socket warms the cache for in-process callers and
//! vice versa.
//!
//! ## Determinism
//!
//! A served job's [`ClosureOutcome`] is byte-identical to a standalone
//! [`Engine`] run of the same module and config, regardless of worker
//! count, scheduling policy, cache state, or what else the service is
//! doing: jobs never share mutable state, artifact reuse is
//! stats-invisible ([`gm_mc::Checker::reset_for_reuse`]), and the
//! engine's own determinism contract covers everything inside the run.
//! The differential suite (`tests/serve_agree.rs`) enforces this across
//! the whole design catalog. The one opt-out is
//! [`ServeConfig::warm_memo`], which carries verification memos across
//! runs of the same design — verdicts and artifacts stay identical, but
//! the work counters in the outcome's iteration reports then reflect
//! the memo hits.
//!
//! ## Resilience
//!
//! The lifecycle survives faults without giving up the contract above:
//!
//! * every attempt runs under panic isolation
//!   ([`std::panic::catch_unwind`]), so a panicking job fails *that
//!   job*, not the service; a supervisor thread respawns any worker
//!   whose thread died anyway (e.g. the injected `worker.exit` fault);
//! * retryable failures (injected transient faults — see [`gm_fault`] —
//!   and worker panics) are retried under the bounded, deterministic
//!   [`RetryPolicy`], with the design's possibly-poisoned cache entry
//!   invalidated first so the retry rebuilds from source; a retried
//!   job's outcome is byte-identical to a fault-free run
//!   (`tests/chaos_agree.rs`);
//! * per-job deadlines ([`SubmitOptions::deadline_ms`], defaulting to
//!   [`ServeConfig::default_deadline_ms`]) ride the same cooperative
//!   mid-iteration cancel token as [`ClosureService::cancel`], ending
//!   with the typed [`JobError::DeadlineExceeded`];
//! * admission control ([`ServeConfig::max_queued`] /
//!   [`ServeConfig::max_queued_bytes`]) sheds excess submissions with
//!   the explicit [`ServeError::Overloaded`] instead of letting the
//!   queue grow without bound;
//! * [`ClosureService::shutdown`] drains gracefully, bounded by
//!   [`ServeConfig::drain_timeout_ms`].

use crate::cache::DesignCache;
use crate::protocol::{
    ClosureSummary, JobState, ProgressEvent, Request, Response, ServeStats, WireConfig,
    WireCountHistogram, WireHistogram,
};
use crate::retry::RetryPolicy;
use crate::scheduler::{SchedPolicy, StealQueues};
use gm_mc::{Checker, SessionStats};
use gm_rtl::{Elab, Module};
use goldmine::{
    ClosureOutcome, CompileOptions, CompiledModule, Engine, EngineConfig, EngineError, SimBackend,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker-pool size; 0 = one per available core.
    pub workers: usize,
    /// Design-cache capacity (distinct designs kept warm).
    pub cache_capacity: usize,
    /// Design-cache byte budget (0 = unbounded). When resident warm
    /// state exceeds it, entries are evicted LRU-first until back under
    /// budget — so a handful of huge designs can no longer hold ~all
    /// memory while tiny warm designs are evicted by the entry count.
    /// See [`DesignCache::with_max_bytes`].
    pub cache_max_bytes: usize,
    /// Queue discipline (work-stealing by default).
    pub policy: SchedPolicy,
    /// Keep verification memos warm across runs of the same design.
    /// Off by default: warm memos change the work counters embedded in
    /// the outcome's iteration reports (verdicts and artifacts stay
    /// identical), so the default preserves byte-identity with
    /// standalone runs.
    pub warm_memo: bool,
    /// How many *finished* job records (progress, summary, any
    /// untaken outcome) the table retains; the oldest finished records
    /// are dropped past the bound, so a long-lived daemon's memory
    /// stays bounded. Queued/running jobs are never dropped. A client
    /// polling a dropped job sees "unknown job".
    pub retain_jobs: usize,
    /// Property-memo bound applied to checkers parked under
    /// `warm_memo` ([`gm_mc::Checker::with_memo_capacity`]) — the
    /// eviction knob that keeps a daemon's warm memos from growing
    /// without bound across requests. Irrelevant when `warm_memo` is
    /// off (memos are cleared by the reset).
    pub warm_memo_capacity: usize,
    /// Default per-job deadline in milliseconds, applied to
    /// submissions that don't carry their own
    /// [`SubmitOptions::deadline_ms`]. 0 = no deadline. Enforced by
    /// the supervisor through the job's cooperative cancel token; an
    /// expired job fails with [`JobError::DeadlineExceeded`].
    pub default_deadline_ms: u64,
    /// Bounded retry/backoff for retryable failures (injected
    /// transient faults and worker panics); see [`RetryPolicy`].
    pub retry: RetryPolicy,
    /// Admission bound on queue *depth*: a submission that would leave
    /// more than this many jobs queued is shed with
    /// [`ServeError::Overloaded`]. 0 = unbounded.
    pub max_queued: usize,
    /// Admission bound on queued *bytes* (the canonical source text
    /// held by queued jobs). 0 = unbounded.
    pub max_queued_bytes: usize,
    /// How long [`ClosureService::shutdown`] waits for in-flight and
    /// queued jobs to drain before cancelling whatever is left. 0 =
    /// wait forever (the pre-resilience behavior).
    pub drain_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            cache_capacity: 8,
            cache_max_bytes: 0,
            policy: SchedPolicy::WorkStealing,
            warm_memo: false,
            retain_jobs: 1024,
            warm_memo_capacity: 4096,
            default_deadline_ms: 0,
            retry: RetryPolicy::default(),
            max_queued: 0,
            max_queued_bytes: 0,
            drain_timeout_ms: 0,
        }
    }
}

/// A submission-time failure: the request never became a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request was malformed (parse, elaboration or
    /// target-resolution errors).
    Rejected(String),
    /// Admission control shed the request: the queue is at its
    /// configured bound ([`ServeConfig::max_queued`] /
    /// [`ServeConfig::max_queued_bytes`]). Retryable by the client
    /// once the backlog drains.
    Overloaded {
        /// Jobs queued at the time of the refusal.
        queued: u64,
        /// The bound that was hit (depth or bytes, whichever tripped).
        limit: u64,
    },
    /// The service no longer accepts submissions.
    ShutDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(msg) => write!(f, "serve: {msg}"),
            ServeError::Overloaded { queued, limit } => write!(
                f,
                "serve: overloaded ({queued} jobs queued, limit {limit}); retry later"
            ),
            ServeError::ShutDown => write!(f, "serve: service is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a job ended in [`JobState::Failed`] — the typed half of
/// [`ClosureService::take_outcome`].
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The engine failed deterministically (elaboration/simulation
    /// errors, model-checking resource limits). Never retried: an
    /// identical rerun reproduces the failure.
    Engine(EngineError),
    /// The job's deadline expired before it finished. The run was
    /// stopped through the cooperative cancel token, mid-iteration.
    DeadlineExceeded {
        /// The deadline that expired, in milliseconds from submission.
        deadline_ms: u64,
    },
    /// A retryable failure (injected transient fault or worker panic)
    /// survived the whole retry budget.
    RetriesExhausted {
        /// Total attempts made (initial + retries).
        attempts: u32,
        /// The last attempt's failure, as text.
        last: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Engine failures keep their pre-resilience status text.
            JobError::Engine(e) => write!(f, "{e}"),
            JobError::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline exceeded after {deadline_ms}ms")
            }
            JobError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for JobError {
    fn from(e: EngineError) -> Self {
        JobError::Engine(e)
    }
}

/// Per-submission options for [`ClosureService::submit_module_opts`] /
/// [`ClosureService::submit_source_opts`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Capture a per-job flight recording (see
    /// [`ClosureService::submit_module_traced`]).
    pub trace: bool,
    /// Per-job deadline in milliseconds from submission. `None` falls
    /// back to [`ServeConfig::default_deadline_ms`]; an explicit
    /// `Some(0)` opts *out* of any deadline even when the server has a
    /// default.
    pub deadline_ms: Option<u64>,
}

/// A status snapshot of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// Job label.
    pub name: String,
    /// Progress events recorded so far.
    pub progress_len: usize,
    /// The engine error, for failed jobs.
    pub error: Option<String>,
    /// Whether the design's artifacts were cached at submission.
    pub cached: bool,
}

struct JobRecord {
    name: String,
    key: String,
    /// The design's canonical form — required to park the checker back
    /// safely (see [`DesignCache::park`]).
    canonical: Arc<str>,
    config: EngineConfig,
    module: Arc<Module>,
    elab: Arc<Elab>,
    /// A warm checker checked out of the cache at submission (absent on
    /// cold entries or when every parked checker is busy).
    checker: Option<Checker>,
    /// The design's parked compiled tape, when the cache held one at
    /// submission (an `Arc` clone — shared, unlike the checker).
    compiled: Option<Arc<CompiledModule>>,
    state: JobState,
    progress: Vec<ProgressEvent>,
    outcome: Option<Result<ClosureOutcome, JobError>>,
    error: Option<String>,
    cancel: Arc<AtomicBool>,
    cached: bool,
    /// Submission timestamp on the process trace clock — the base of
    /// the queue-latency histogram and the retroactive `serve.queue`
    /// span.
    submitted_ns: u64,
    /// The job's deadline in milliseconds from submission (`None` = no
    /// deadline), and its absolute expiry on the trace clock. The
    /// supervisor compares the latter against `now_ns` on every tick.
    deadline_ms: Option<u64>,
    deadline_ns: Option<u64>,
    /// Set (with the cancel token) by the supervisor when the deadline
    /// expires — what lets retire distinguish a deadline stop from a
    /// client cancellation, which share the token.
    deadline_hit: bool,
    /// The per-job flight recorder, present when the submission asked
    /// for one. The worker installs it as its thread sink for the whole
    /// claim→retire window; clients fetch the export once the job is
    /// terminal.
    trace: Option<gm_trace::TraceSink>,
}

struct State {
    jobs: HashMap<u64, JobRecord>,
    /// Finished job ids in completion order — the FIFO behind
    /// [`ServeConfig::retain_jobs`].
    finished: std::collections::VecDeque<u64>,
    cache: DesignCache,
    next_id: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    /// Resilience counters (see the matching `gmserve_*_total`
    /// Prometheus families).
    worker_panics: u64,
    jobs_retried: u64,
    deadline_exceeded: u64,
    requests_shed: u64,
    workers_respawned: u64,
    /// Retries per retired job (0 = first attempt succeeded).
    retry_hist: WireCountHistogram,
    /// Verification work aggregated from every retired job's outcome
    /// (the per-job [`SessionStats`] totals) — the service-level view a
    /// metrics scrape exposes.
    verify: SessionStats,
    /// Queue latency (submission → worker claim), observed at every
    /// real claim — cancelled-while-queued jobs never waited a full
    /// queue turn and are not sampled.
    queue_hist: WireHistogram,
    /// Job wall time (worker claim → terminal state), observed at
    /// retire.
    wall_hist: WireHistogram,
}

impl State {
    /// Records that `id` reached a terminal state, evicting the oldest
    /// finished records past the retention bound.
    fn retire(&mut self, id: u64, retain: usize) {
        self.finished.push_back(id);
        while self.finished.len() > retain.max(1) {
            let oldest = self
                .finished
                .pop_front()
                .expect("pop is guarded by the length check above");
            self.jobs.remove(&oldest);
        }
    }

    /// Retires a still-queued job as cancelled: parks its checked-out
    /// warm checker back into the cache, counts the cancellation, and
    /// applies retention. No-op for jobs past `Queued`. Used by both
    /// the worker claim path and the shutdown queue drain — callers
    /// notify `done_cv` afterwards.
    fn cancel_queued(&mut self, id: u64, retain: usize) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.state != JobState::Queued {
            return;
        }
        job.state = JobState::Cancelled;
        let checker = job.checker.take();
        let key = job.key.clone();
        let canonical = job.canonical.clone();
        self.cancelled += 1;
        if let Some(checker) = checker {
            self.cache.park(&key, &canonical, checker);
        }
        self.retire(id, retain);
    }

    /// Retires a still-queued job whose deadline expired before any
    /// worker claimed it: typed [`JobError::DeadlineExceeded`] outcome,
    /// warm checker parked back, retention applied. No-op past
    /// `Queued`. Called by the supervisor under the same lock that
    /// marks `deadline_hit`, so a claim can never observe a queued job
    /// with the flag set. Callers notify `done_cv` afterwards.
    fn expire_queued(&mut self, id: u64, retain: usize) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.state != JobState::Queued {
            return;
        }
        let error = JobError::DeadlineExceeded {
            deadline_ms: job.deadline_ms.unwrap_or(0),
        };
        job.state = JobState::Failed;
        job.error = Some(error.to_string());
        job.outcome = Some(Err(error));
        let checker = job.checker.take();
        let key = job.key.clone();
        let canonical = job.canonical.clone();
        self.failed += 1;
        self.deadline_exceeded += 1;
        if let Some(checker) = checker {
            self.cache.park(&key, &canonical, checker);
        }
        self.retire(id, retain);
    }

    /// Parks a retired attempt's warm artifacts back into the cache.
    fn park_artifacts(
        &mut self,
        config: &ServeConfig,
        key: &str,
        canonical: &Arc<str>,
        reclaimed: Option<Checker>,
        built_compiled: Option<Arc<CompiledModule>>,
    ) {
        if let Some(mut checker) = reclaimed {
            if config.warm_memo {
                // Warm memos persist across requests — bound them so a
                // long-lived daemon's parked checkers cannot grow
                // forever.
                checker = checker.with_memo_capacity(config.warm_memo_capacity);
            } else {
                checker.reset_for_reuse();
            }
            self.cache.park(key, canonical, checker);
        }
        if let Some(c) = built_compiled {
            self.cache.park_compiled(key, canonical, c);
        }
    }
}

/// Locks the service state, recovering from poisoning. Job execution —
/// the only panic-prone code — runs under `catch_unwind` *outside* this
/// lock, and every critical section leaves the table consistent before
/// unlocking, so a poisoned lock (a panicking progress callback, say)
/// carries no torn state worth wedging the whole service over.
fn lock_state(state: &Mutex<State>) -> MutexGuard<'_, State> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    config: ServeConfig,
    queues: StealQueues<u64>,
    state: Mutex<State>,
    /// Notified (with the state mutex) whenever a job reaches a
    /// terminal state.
    done_cv: Condvar,
    open: AtomicBool,
    /// Worker thread slots, indexed by worker id. The supervisor joins
    /// and respawns any slot whose thread died (`worker.exit` faults,
    /// or a panic that escaped the attempt isolation).
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
}

/// The persistent closure service (see the module docs).
///
/// # Examples
///
/// ```
/// use gm_serve::{ClosureService, ServeConfig};
/// use goldmine::{EngineConfig, SeedStimulus};
///
/// let service = ClosureService::new(ServeConfig { workers: 2, ..ServeConfig::default() });
/// let module = gm_rtl::parse_verilog(
///     "module m(input a, input b, output y); assign y = a & b; endmodule")?;
/// let config = EngineConfig {
///     window: 0,
///     stimulus: SeedStimulus::Random { cycles: 8 },
///     record_coverage: false,
///     ..EngineConfig::default()
/// };
/// let (job, cached) = service.submit_module("andgate", module, config)?;
/// assert!(!cached, "first submission is a cache miss");
/// service.wait(job);
/// let outcome = service.take_outcome(job).unwrap()?;
/// assert!(outcome.converged);
/// service.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ClosureService {
    shared: Arc<Shared>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for ClosureService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ClosureService({} workers, {:?})",
            self.shared.queues.worker_count(),
            self.shared.config.policy
        )
    }
}

fn terminal(state: JobState) -> bool {
    matches!(
        state,
        JobState::Done | JobState::Failed | JobState::Cancelled
    )
}

/// How often the supervisor checks deadlines and dead workers.
const SUPERVISOR_TICK: Duration = Duration::from_millis(10);

impl ClosureService {
    /// Starts the service: spawns the worker pool and the supervisor,
    /// and returns the handle. Workers idle until submissions arrive.
    pub fn new(config: ServeConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queues: StealQueues::new(workers, config.policy),
            state: Mutex::new(State {
                jobs: HashMap::new(),
                finished: std::collections::VecDeque::new(),
                cache: DesignCache::with_max_bytes(config.cache_capacity, config.cache_max_bytes),
                next_id: 1,
                submitted: 0,
                completed: 0,
                failed: 0,
                cancelled: 0,
                worker_panics: 0,
                jobs_retried: 0,
                deadline_exceeded: 0,
                requests_shed: 0,
                workers_respawned: 0,
                retry_hist: WireCountHistogram::default(),
                verify: SessionStats::default(),
                queue_hist: WireHistogram::default(),
                wall_hist: WireHistogram::default(),
            }),
            done_cv: Condvar::new(),
            open: AtomicBool::new(true),
            workers: Mutex::new(Vec::new()),
            config,
        });
        {
            let mut slots = shared
                .workers
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for w in 0..workers {
                slots.push(Some(spawn_worker(&shared, w)));
            }
        }
        let supervisor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("gmserve-supervisor".into())
                .spawn(move || supervisor_loop(&shared))
                .expect("spawn service supervisor")
        };
        ClosureService {
            shared,
            supervisor: Mutex::new(Some(supervisor)),
        }
    }

    fn state(&self) -> MutexGuard<'_, State> {
        lock_state(&self.shared.state)
    }

    /// Submits Verilog source with a wire config (the socket path).
    ///
    /// # Errors
    ///
    /// Fails on parse, elaboration or target-resolution errors, when
    /// admission control sheds the request, or after shutdown.
    pub fn submit_source(
        &self,
        name: &str,
        source: &str,
        wire: &WireConfig,
    ) -> Result<(u64, bool), ServeError> {
        self.submit_source_opts(name, source, wire, SubmitOptions::default())
    }

    /// [`ClosureService::submit_source`] with an optional per-job
    /// flight recorder (see [`ClosureService::submit_module_traced`]).
    ///
    /// # Errors
    ///
    /// As [`ClosureService::submit_source`].
    pub fn submit_source_traced(
        &self,
        name: &str,
        source: &str,
        wire: &WireConfig,
        trace: bool,
    ) -> Result<(u64, bool), ServeError> {
        self.submit_source_opts(
            name,
            source,
            wire,
            SubmitOptions {
                trace,
                ..SubmitOptions::default()
            },
        )
    }

    /// [`ClosureService::submit_source`] with full per-submission
    /// options (tracing, deadline).
    ///
    /// # Errors
    ///
    /// As [`ClosureService::submit_source`].
    pub fn submit_source_opts(
        &self,
        name: &str,
        source: &str,
        wire: &WireConfig,
        opts: SubmitOptions,
    ) -> Result<(u64, bool), ServeError> {
        let module = gm_rtl::parse_verilog(source)
            .map_err(|e| ServeError::Rejected(format!("parse error: {e}")))?;
        let config = wire
            .to_engine(&module)
            .map_err(|e| ServeError::Rejected(e.to_string()))?;
        self.submit_module_opts(name, module, config, opts)
    }

    /// Submits a parsed module with a resolved engine config (the
    /// in-process path). Returns the job id and whether the design's
    /// artifacts were already cached.
    ///
    /// # Errors
    ///
    /// Fails on elaboration errors, when admission control sheds the
    /// request, or after shutdown.
    pub fn submit_module(
        &self,
        name: &str,
        module: Module,
        config: EngineConfig,
    ) -> Result<(u64, bool), ServeError> {
        self.submit_module_opts(name, module, config, SubmitOptions::default())
    }

    /// [`ClosureService::submit_module`] with an optional per-job
    /// flight recorder: when `trace` is set the job captures structured
    /// spans for its whole claim→retire window (engine iterations, SAT
    /// queries, simulation batches, cache interactions), retrievable as
    /// Chrome trace-event JSON via [`ClosureService::trace_json`] once
    /// terminal. Tracing never changes the outcome — the `trace_agree`
    /// suite proves byte-identity recorder on/off.
    ///
    /// # Errors
    ///
    /// As [`ClosureService::submit_module`].
    pub fn submit_module_traced(
        &self,
        name: &str,
        module: Module,
        config: EngineConfig,
        trace: bool,
    ) -> Result<(u64, bool), ServeError> {
        self.submit_module_opts(
            name,
            module,
            config,
            SubmitOptions {
                trace,
                ..SubmitOptions::default()
            },
        )
    }

    /// [`ClosureService::submit_module`] with full per-submission
    /// options (tracing, deadline).
    ///
    /// # Errors
    ///
    /// As [`ClosureService::submit_module`].
    pub fn submit_module_opts(
        &self,
        name: &str,
        module: Module,
        config: EngineConfig,
        opts: SubmitOptions,
    ) -> Result<(u64, bool), ServeError> {
        let trace_sink = opts.trace.then(gm_trace::TraceSink::new);
        let deadline_ms = opts
            .deadline_ms
            .unwrap_or(self.shared.config.default_deadline_ms);
        let deadline_ms = (deadline_ms > 0).then_some(deadline_ms);
        let canonical = crate::cache::canonical_form(&module);
        let key = crate::cache::key_of(&canonical);
        // Elaboration is the expensive part of a cold submission; do it
        // *outside* the state lock so a big design never stalls status
        // polls, progress streams or running jobs' iteration callbacks.
        // The loop handles the races: another submitter may insert the
        // design while we build (our build is discarded), or evict it
        // between our peek and our checkout (we build and retry).
        let mut module = Some(module);
        let mut prebuilt: Option<(Arc<Module>, Arc<Elab>)> = None;
        loop {
            let mut st = self.state();
            if !self.shared.open.load(Ordering::Acquire) {
                return Err(ServeError::ShutDown);
            }
            // Admission control, before any expensive build work: shed
            // the request while the queue is at its bound. Recomputed
            // from the table on every pass (O(live jobs) under the
            // lock), so the gauge can never drift from the truth.
            let bounds = (
                self.shared.config.max_queued,
                self.shared.config.max_queued_bytes,
            );
            if bounds.0 > 0 || bounds.1 > 0 {
                let queued: Vec<&JobRecord> = st
                    .jobs
                    .values()
                    .filter(|j| j.state == JobState::Queued)
                    .collect();
                let depth = queued.len();
                let bytes: usize = queued.iter().map(|j| j.canonical.len()).sum();
                let over = if bounds.0 > 0 && depth >= bounds.0 {
                    Some(bounds.0 as u64)
                } else if bounds.1 > 0 && bytes.saturating_add(canonical.len()) > bounds.1 {
                    Some(bounds.1 as u64)
                } else {
                    None
                };
                if let Some(limit) = over {
                    st.requests_shed += 1;
                    return Err(ServeError::Overloaded {
                        queued: depth as u64,
                        limit,
                    });
                }
            }
            if !st.cache.matches(&key, &canonical) && prebuilt.is_none() {
                drop(st);
                let module = module.take().expect("module consumed at most once");
                let elab = gm_rtl::elaborate(&module)
                    .map_err(|e| ServeError::Rejected(format!("elaboration error: {e}")))?;
                prebuilt = Some((Arc::new(module), Arc::new(elab)));
                continue;
            }
            // Which parked tape this job can use: none for the
            // interpreter; otherwise one whose probes match the job's
            // coverage setting (a probed tape also serves probe-free).
            let want_probes =
                (config.sim_backend != SimBackend::Interpreter).then_some(config.record_coverage);
            let checkout = st.cache.checkout(&key, &canonical, want_probes, || {
                Ok::<_, ServeError>(prebuilt.take().expect("artifacts prebuilt on miss"))
            })?;
            let (module, elab, checker, compiled, cached) = (
                checkout.module,
                checkout.elab,
                checkout.checker,
                checkout.compiled,
                checkout.hit,
            );
            let id = st.next_id;
            st.next_id += 1;
            st.submitted += 1;
            let submitted_ns = gm_trace::now_ns();
            st.jobs.insert(
                id,
                JobRecord {
                    name: name.to_string(),
                    key,
                    canonical: Arc::from(canonical.as_str()),
                    config,
                    module,
                    elab,
                    checker,
                    compiled,
                    state: JobState::Queued,
                    progress: Vec::new(),
                    outcome: None,
                    error: None,
                    cancel: Arc::new(AtomicBool::new(false)),
                    cached,
                    submitted_ns,
                    deadline_ms,
                    deadline_ns: deadline_ms
                        .map(|ms| submitted_ns.saturating_add(ms.saturating_mul(1_000_000))),
                    deadline_hit: false,
                    trace: trace_sink,
                },
            );
            // Deal to the owning worker's local queue (still under the
            // state lock: `shutdown`'s post-join drain takes the same
            // lock, so a submission racing shutdown either saw `open`
            // false above or its id is visible to the drain); idle
            // peers steal.
            let worker = (id - 1) as usize % self.shared.queues.worker_count();
            self.shared.queues.push(worker, id);
            return Ok((id, cached));
        }
    }

    /// A job's current status.
    pub fn status(&self, job: u64) -> Option<JobStatus> {
        let st = self.state();
        st.jobs.get(&job).map(|j| JobStatus {
            state: j.state,
            name: j.name.clone(),
            progress_len: j.progress.len(),
            error: j.error.clone(),
            cached: j.cached,
        })
    }

    /// Progress events from index `from` on, plus whether the job is
    /// terminal (polling `progress` with the last seen index streams
    /// per-iteration updates). A retried job's progress restarts: the
    /// failed attempt's events are cleared before the retry runs.
    pub fn progress(&self, job: u64, from: usize) -> Option<(Vec<ProgressEvent>, bool)> {
        let st = self.state();
        st.jobs.get(&job).map(|j| {
            let events = j.progress.get(from..).unwrap_or(&[]).to_vec();
            (events, terminal(j.state))
        })
    }

    /// Requests cancellation. Queued jobs are dropped before they run;
    /// running jobs stop cooperatively *mid-iteration* — the token is
    /// polled between the checker's SAT queries and once per simulated
    /// cycle of the coverage passes (see [`Engine::with_cancel`]), so a
    /// stuck job frees its worker without waiting for the iteration
    /// boundary. The partial outcome stays valid and is retrievable via
    /// [`ClosureService::take_outcome`]. Returns whether the job
    /// existed and was still cancellable.
    pub fn cancel(&self, job: u64) -> bool {
        let mut st = self.state();
        let Some(record) = st.jobs.get_mut(&job) else {
            return false;
        };
        if terminal(record.state) {
            return false;
        }
        record.cancel.store(true, Ordering::Release);
        if record.state == JobState::Queued {
            // The worker will observe the flag and retire the job; wake
            // anyone already waiting.
            self.shared.queues.notify_all();
        }
        true
    }

    /// Blocks until `job` reaches a terminal state; returns it (`None`
    /// for unknown jobs).
    pub fn wait(&self, job: u64) -> Option<JobState> {
        let mut st = self.state();
        loop {
            match st.jobs.get(&job) {
                None => return None,
                Some(j) if terminal(j.state) => return Some(j.state),
                Some(_) => {
                    st = self
                        .shared
                        .done_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// A finished job's wire summary (`None` until it is `Done`, or
    /// after [`ClosureService::take_outcome`] — cancelled jobs' partial
    /// outcomes stay accessible through `take_outcome` only). Rendered
    /// on demand — the table stores one copy of the outcome, not a
    /// duplicate multi-KB debug string per retained job.
    pub fn summary(&self, job: u64) -> Option<ClosureSummary> {
        let st = self.state();
        st.jobs
            .get(&job)
            .and_then(|j| match (&j.state, &j.outcome) {
                (JobState::Done, Some(Ok(outcome))) => {
                    Some(ClosureSummary::from_outcome(outcome, &j.module))
                }
                _ => None,
            })
    }

    /// Removes and returns a finished job's full outcome — the
    /// in-process form the differential tests compare against
    /// standalone engine runs. Failed jobs carry the typed [`JobError`]
    /// (engine failure, deadline, exhausted retries).
    pub fn take_outcome(&self, job: u64) -> Option<Result<ClosureOutcome, JobError>> {
        let mut st = self.state();
        st.jobs.get_mut(&job).and_then(|j| j.outcome.take())
    }

    /// A terminal traced job's flight recording as Chrome trace-event
    /// JSON (see [`ClosureService::submit_module_traced`]). Exported on
    /// demand from the job's sink; repeat calls re-export the same
    /// recording.
    ///
    /// # Errors
    ///
    /// Fails for unknown jobs, jobs still queued or running, and jobs
    /// that were not submitted with tracing.
    pub fn trace_json(&self, job: u64) -> Result<String, ServeError> {
        let st = self.state();
        let Some(j) = st.jobs.get(&job) else {
            return Err(ServeError::Rejected(format!("unknown job {job}")));
        };
        if !terminal(j.state) {
            return Err(ServeError::Rejected(format!(
                "job {job} is still {}; traces are exported once terminal",
                j.state.as_str()
            )));
        }
        match &j.trace {
            Some(sink) => Ok(sink.export_chrome_json()),
            None => Err(ServeError::Rejected(format!(
                "job {job} was not submitted with tracing"
            ))),
        }
    }

    /// Aggregate service counters. Internally consistent: every field
    /// is read under one acquisition of the state lock, and all job
    /// state transitions update their counters under the same lock, so
    /// `submitted == queued + running + completed + failed + cancelled`
    /// holds in every snapshot (shed requests are refused before they
    /// count as submitted).
    pub fn stats(&self) -> ServeStats {
        let st = self.state();
        let cache = st.cache.stats();
        let queued = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count() as u64;
        let running = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count() as u64;
        ServeStats {
            submitted: st.submitted,
            queued,
            running,
            completed: st.completed,
            failed: st.failed,
            cancelled: st.cancelled,
            workers: self.shared.queues.worker_count() as u64,
            steals: self.shared.queues.steals(),
            cache_entries: cache.entries as u64,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_evictions_capacity: cache.evictions_capacity,
            cache_evictions_bytes: cache.evictions_bytes,
            cache_evictions_collision: cache.evictions_collision,
            cache_bytes: cache.approx_bytes as u64,
            cache_max_bytes: cache.max_bytes as u64,
            compiled_built: cache.compiled_built,
            compiled_reused: cache.compiled_reused,
            verify_sat_queries: st.verify.sat_queries,
            verify_sat_decided: st.verify.sat_decided,
            verify_explicit_queries: st.verify.explicit_queries,
            verify_memo_hits: st.verify.memo_hits,
            verify_frames_encoded: st.verify.frames_encoded,
            verify_frames_reused: st.verify.frames_reused,
            verify_cex_canonicalized: st.verify.cex_canonicalized,
            worker_panics: st.worker_panics,
            jobs_retried: st.jobs_retried,
            jobs_deadline_exceeded: st.deadline_exceeded,
            requests_shed: st.requests_shed,
            workers_respawned: st.workers_respawned,
            job_retries: st.retry_hist.clone(),
            queue_seconds: st.queue_hist.clone(),
            wall_seconds: st.wall_hist.clone(),
        }
    }

    /// Dispatches one wire request — the single entry point the socket
    /// server (and any in-process framing user) calls.
    pub fn handle_request(&self, request: &Request) -> Response {
        match request {
            Request::Submit {
                name,
                source,
                config,
                trace,
                deadline_ms,
            } => {
                let opts = SubmitOptions {
                    trace: *trace,
                    deadline_ms: *deadline_ms,
                };
                match self.submit_source_opts(name, source, config, opts) {
                    Ok((job, cached)) => Response::Submitted { job, cached },
                    Err(ServeError::Overloaded { queued, limit }) => {
                        Response::Overloaded { queued, limit }
                    }
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Status { job } => match self.status(*job) {
                Some(s) => Response::Status {
                    job: *job,
                    state: s.state,
                    name: s.name,
                    progress_len: s.progress_len as u64,
                    error: s.error,
                },
                None => Response::Error {
                    message: format!("unknown job {job}"),
                },
            },
            Request::Progress { job, from } => match self.progress(*job, *from as usize) {
                Some((events, terminal)) => Response::Progress {
                    job: *job,
                    from: *from,
                    events,
                    terminal,
                },
                None => Response::Error {
                    message: format!("unknown job {job}"),
                },
            },
            Request::Wait { job } => match self.wait(*job) {
                Some(JobState::Done) => match self.summary(*job) {
                    Some(summary) => Response::Done { job: *job, summary },
                    // The record can be retired (the `retain_jobs`
                    // bound) between wait() and summary().
                    None => Response::Error {
                        message: format!("job {job} finished but its record was retired"),
                    },
                },
                Some(state) => {
                    let error = self.status(*job).and_then(|s| s.error);
                    Response::Error {
                        message: match error {
                            Some(e) => format!("job {job} {}: {e}", state.as_str()),
                            None => format!("job {job} {}", state.as_str()),
                        },
                    }
                }
                None => Response::Error {
                    message: format!("unknown job {job}"),
                },
            },
            Request::Cancel { job } => {
                if self.cancel(*job) {
                    self.status(*job)
                        .map(|s| Response::Status {
                            job: *job,
                            state: s.state,
                            name: s.name,
                            progress_len: s.progress_len as u64,
                            error: s.error,
                        })
                        .unwrap_or(Response::Error {
                            message: format!("unknown job {job}"),
                        })
                } else {
                    Response::Error {
                        message: format!("job {job} is unknown or already finished"),
                    }
                }
            }
            Request::Trace { job } => match self.trace_json(*job) {
                Ok(trace) => Response::Trace { job: *job, trace },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Stats => Response::Stats(Box::new(self.stats())),
            Request::Metrics => Response::Metrics {
                text: self.stats().to_prometheus(),
            },
            Request::Shutdown => {
                // Begin the shutdown here so the wire path is
                // transport-agnostic: submissions are refused and the
                // workers start draining immediately. The *blocking*
                // half (joining workers) stays with whoever owns the
                // service — the socket loop or Drop calls
                // [`ClosureService::shutdown`] after this response.
                self.begin_shutdown();
                Response::ShuttingDown
            }
        }
    }

    /// Non-blocking first half of [`ClosureService::shutdown`]: stop
    /// accepting submissions and let the workers drain. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shared.open.store(false, Ordering::Release);
        self.shared.queues.notify_all();
    }

    /// Stops accepting submissions, drains queued and running jobs, and
    /// joins the supervisor and workers. With a nonzero
    /// [`ServeConfig::drain_timeout_ms`] the drain is *bounded*: jobs
    /// still live when the timeout expires are cancelled through their
    /// cooperative tokens, so shutdown cannot hang on a stuck job.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let supervisor = self
            .supervisor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(h) = supervisor {
            let _ = h.join();
        }
        let drain_ms = self.shared.config.drain_timeout_ms;
        if drain_ms > 0 {
            let deadline = Instant::now() + Duration::from_millis(drain_ms);
            let mut st = self.state();
            while st.jobs.values().any(|j| !terminal(j.state)) {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    // Timed out: cancel everything still live. Running
                    // jobs stop mid-iteration; queued ones are retired
                    // here so the joins below never wait on them.
                    let live: Vec<u64> = st
                        .jobs
                        .iter()
                        .filter(|(_, j)| !terminal(j.state))
                        .map(|(id, _)| *id)
                        .collect();
                    for id in live {
                        if let Some(job) = st.jobs.get_mut(&id) {
                            job.cancel.store(true, Ordering::Release);
                        }
                        st.cancel_queued(id, self.shared.config.retain_jobs);
                    }
                    break;
                }
                st = self
                    .shared
                    .done_cv
                    .wait_timeout(st, left)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            drop(st);
            self.shared.done_cv.notify_all();
            self.shared.queues.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut slots = self
                .shared
                .workers
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            slots.iter_mut().filter_map(Option::take).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        // A submission that raced the close can have pushed after the
        // workers exited; retire anything left in the queues as
        // cancelled so no waiter blocks on a job nobody will run.
        let mut st = self.state();
        for w in 0..self.shared.queues.worker_count() {
            while let Some(id) = self.shared.queues.pop(w) {
                st.cancel_queued(id, self.shared.config.retain_jobs);
            }
        }
        drop(st);
        self.shared.done_cv.notify_all();
    }
}

impl Drop for ClosureService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_worker(shared: &Arc<Shared>, w: usize) -> JoinHandle<()> {
    let shared = shared.clone();
    std::thread::Builder::new()
        .name(format!("gmserve-worker-{w}"))
        .spawn(move || worker_loop(&shared, w))
        .expect("spawn service worker")
}

fn worker_loop(shared: &Arc<Shared>, w: usize) {
    loop {
        // Injected worker death: return without touching the queue —
        // unclaimed jobs stay queued for stealers and for the slot's
        // supervisor-respawned replacement.
        if gm_fault::fire("worker.exit") {
            return;
        }
        match shared.queues.pop(w) {
            Some(id) => run_job(shared, id),
            None => {
                if !shared.open.load(Ordering::Acquire) {
                    break;
                }
                shared.queues.park(|| !shared.open.load(Ordering::Acquire));
            }
        }
    }
}

/// The supervisor: enforces deadlines and respawns dead workers on a
/// fixed tick until shutdown begins.
fn supervisor_loop(shared: &Arc<Shared>) {
    while shared.open.load(Ordering::Acquire) {
        enforce_deadlines(shared);
        respawn_dead_workers(shared);
        std::thread::sleep(SUPERVISOR_TICK);
    }
}

/// Marks every live job past its deadline: raises the cooperative
/// cancel token (running jobs stop mid-iteration and retire as
/// [`JobError::DeadlineExceeded`]) and retires still-queued ones on the
/// spot. Marking and queued-expiry happen under one lock acquisition,
/// so the claim path can never observe a queued job with
/// `deadline_hit` set.
fn enforce_deadlines(shared: &Arc<Shared>) {
    let now = gm_trace::now_ns();
    let mut st = lock_state(&shared.state);
    let expired: Vec<u64> = st
        .jobs
        .iter()
        .filter(|(_, j)| {
            !terminal(j.state) && !j.deadline_hit && j.deadline_ns.is_some_and(|d| now >= d)
        })
        .map(|(id, _)| *id)
        .collect();
    if expired.is_empty() {
        return;
    }
    let mut retired = false;
    for id in expired {
        let Some(job) = st.jobs.get_mut(&id) else {
            continue;
        };
        job.deadline_hit = true;
        job.cancel.store(true, Ordering::Release);
        if job.state == JobState::Queued {
            st.expire_queued(id, shared.config.retain_jobs);
            retired = true;
        }
    }
    drop(st);
    if retired {
        shared.done_cv.notify_all();
    }
}

/// Joins and respawns any worker slot whose thread has died. The queue
/// structure outlives the thread, so the replacement resumes exactly
/// where the dead worker stopped.
fn respawn_dead_workers(shared: &Arc<Shared>) {
    let mut slots = shared
        .workers
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    for w in 0..slots.len() {
        let dead = slots[w].as_ref().is_some_and(JoinHandle::is_finished);
        if !dead || !shared.open.load(Ordering::Acquire) {
            continue;
        }
        if let Some(old) = slots[w].take() {
            let _ = old.join();
        }
        slots[w] = Some(spawn_worker(shared, w));
        lock_state(&shared.state).workers_respawned += 1;
    }
}

/// One attempt's result, handed back to the retry loop.
struct Attempt {
    outcome: Result<ClosureOutcome, AttemptError>,
    /// The checker reclaimed from the engine, to park back warm.
    reclaimed: Option<Checker>,
    /// A compiled tape this attempt built (parked per design).
    built_compiled: Option<Arc<CompiledModule>>,
    /// Whether the run observed the cancel token and stopped early.
    observed_cancel: bool,
}

/// Why one attempt failed — the retry loop's classification input.
enum AttemptError {
    /// A real engine failure; retried only when
    /// [`EngineError::retryable`] says a rerun could differ.
    Engine(EngineError),
    /// A serve-layer injected fault (always retryable).
    Fault(&'static str),
}

/// How the retry loop ended; consumed by the retire block.
enum Finish {
    Finished {
        outcome: ClosureOutcome,
        was_cancelled: bool,
        reclaimed: Option<Checker>,
        built_compiled: Option<Arc<CompiledModule>>,
    },
    Error {
        error: JobError,
        reclaimed: Option<Checker>,
        built_compiled: Option<Arc<CompiledModule>>,
    },
    /// Cancelled between attempts — no partial outcome to keep.
    CancelledBare,
}

/// Renders a caught panic payload (`&str` / `String` are what `panic!`
/// produces; anything else is opaque).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Sleeps the backoff delay in short slices, polling the cancel token
/// so a cancellation or deadline never waits out a long backoff.
/// Timing only — the retry *decision* and the delay itself were fixed
/// by the pure [`RetryPolicy::backoff_ms`] before this call.
fn wait_backoff(cancel: &AtomicBool, ms: u64) {
    if ms == 0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_millis(ms);
    loop {
        if cancel.load(Ordering::Acquire) {
            return;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(5)));
    }
}

/// If the job was cancelled (or its deadline expired) between attempts,
/// the [`Finish`] that ends it; `None` to keep going.
fn cancelled_finish(shared: &Arc<Shared>, id: u64, cancel: &AtomicBool) -> Option<Finish> {
    if !cancel.load(Ordering::Acquire) {
        return None;
    }
    let st = lock_state(&shared.state);
    let deadline = st
        .jobs
        .get(&id)
        .filter(|j| j.deadline_hit)
        .map(|j| j.deadline_ms.unwrap_or(0));
    drop(st);
    Some(match deadline {
        Some(deadline_ms) => Finish::Error {
            error: JobError::DeadlineExceeded { deadline_ms },
            reclaimed: None,
            built_compiled: None,
        },
        None => Finish::CancelledBare,
    })
}

/// Executes one job end to end on the claiming worker: a bounded retry
/// loop of panic-isolated attempts, then a single retire.
fn run_job(shared: &Arc<Shared>, id: u64) {
    // Claim: move the job's artifacts out of the record, stamp the
    // claim on the trace clock and sample the queue-latency histogram
    // (real claims only — a cancelled-while-queued job never waited a
    // full queue turn).
    let (claim, started_ns) = {
        let mut st = lock_state(&shared.state);
        let Some(job) = st.jobs.get_mut(&id) else {
            return;
        };
        if job.state != JobState::Queued {
            return;
        }
        if job.cancel.load(Ordering::Acquire) {
            st.cancel_queued(id, shared.config.retain_jobs);
            shared.done_cv.notify_all();
            return;
        }
        job.state = JobState::Running;
        let claim = (
            job.module.clone(),
            job.elab.clone(),
            job.checker.take(),
            job.compiled.take(),
            job.config.clone(),
            job.cancel.clone(),
            job.key.clone(),
            job.canonical.clone(),
            job.trace.clone(),
            job.submitted_ns,
        );
        let started_ns = gm_trace::now_ns();
        st.queue_hist.observe_ns(started_ns.saturating_sub(claim.9));
        (claim, started_ns)
    };
    let (module, elab, checker, compiled, config, cancel, key, canonical, trace, submitted_ns) =
        claim;

    // Install the per-job flight recorder (when the submission asked
    // for one) for the whole claim→retire window: every span the
    // engine, checker, and simulator open on this thread records into
    // the job's sink. The queue phase predates the claim, so it is
    // recorded retroactively from the stored submission timestamp.
    let trace_guard = trace.map(|sink| {
        sink.record(
            gm_trace::TraceEvent::complete(
                "serve",
                "serve.queue",
                submitted_ns,
                started_ns.saturating_sub(submitted_ns),
            )
            .with_arg("job", id),
        );
        gm_trace::push_thread_sink(sink)
    });
    let mut job_span = gm_trace::span("serve", "serve.job");
    if job_span.is_active() {
        job_span.arg("job", id);
    }

    // The attempt loop. The first attempt consumes the warm artifacts
    // checked out at submission; retries run from scratch (the cache
    // entry is invalidated first, so a poisoned checker or tape cannot
    // carry a fault into the retry).
    let policy = shared.config.retry;
    let mut retries: u32 = 0;
    let mut warm_checker = checker;
    let mut warm_compiled = compiled;
    let finish = loop {
        if retries > 0 {
            // Between attempts: a raised cancel or an expired deadline
            // ends the job without another engine run. (The first
            // attempt is covered by the claim's check above.)
            if let Some(finish) = cancelled_finish(shared, id, &cancel) {
                break finish;
            }
        }
        let attempt_checker = warm_checker.take();
        let attempt_compiled = warm_compiled.take();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(
                shared,
                id,
                &module,
                &elab,
                attempt_checker,
                attempt_compiled,
                config.clone(),
                &cancel,
            )
        }));
        // Every break is terminal; falling through means one retryable
        // failure, described by `failure`.
        let failure = match caught {
            Ok(attempt) => match attempt.outcome {
                Ok(outcome) => {
                    let was_cancelled = attempt.observed_cancel || outcome.interrupted;
                    break Finish::Finished {
                        outcome,
                        was_cancelled,
                        reclaimed: attempt.reclaimed,
                        built_compiled: attempt.built_compiled,
                    };
                }
                Err(AttemptError::Engine(e)) if !e.retryable() => {
                    break Finish::Error {
                        error: JobError::Engine(e),
                        reclaimed: attempt.reclaimed,
                        built_compiled: attempt.built_compiled,
                    };
                }
                Err(AttemptError::Engine(e)) => e.to_string(),
                Err(AttemptError::Fault(point)) => format!("injected fault at {point}"),
            },
            Err(payload) => {
                // The attempt panicked; the job fails or retries, the
                // worker survives.
                let message = panic_message(payload);
                lock_state(&shared.state).worker_panics += 1;
                format!("worker panic: {message}")
            }
        };
        if let Some(finish) = cancelled_finish(shared, id, &cancel) {
            break finish;
        }
        if !policy.allows(retries + 1) {
            break Finish::Error {
                error: JobError::RetriesExhausted {
                    attempts: retries + 1,
                    last: failure,
                },
                reclaimed: None,
                built_compiled: None,
            };
        }
        retries += 1;
        {
            let mut st = lock_state(&shared.state);
            // The failed attempt may have poisoned the design's warm
            // state; drop the entry so the retry rebuilds from source.
            st.cache.invalidate(&key);
            st.jobs_retried += 1;
            if let Some(job) = st.jobs.get_mut(&id) {
                // The retry restarts the run; stale events from the
                // failed attempt would corrupt the progress stream.
                job.progress.clear();
            }
        }
        wait_backoff(&cancel, policy.backoff_ms(id, retries));
    };

    // Close the job span and detach the recorder *before* taking the
    // retire lock: the trace must be fully flushed into the sink before
    // any client can observe the terminal state (and fetch the export).
    if job_span.is_active() {
        job_span.arg(
            "cancelled",
            matches!(
                &finish,
                Finish::Finished {
                    was_cancelled: true,
                    ..
                } | Finish::CancelledBare
            ),
        );
        job_span.arg("failed", matches!(&finish, Finish::Error { .. }));
        job_span.arg("retries", u64::from(retries));
    }
    drop(job_span);
    drop(trace_guard);

    // Retire: record the result, park the warm artifacts, classify.
    let mut st = lock_state(&shared.state);
    st.wall_hist
        .observe_ns(gm_trace::now_ns().saturating_sub(started_ns));
    st.retry_hist.observe(u64::from(retries));
    match finish {
        Finish::Finished {
            outcome,
            was_cancelled,
            reclaimed,
            built_compiled,
        } => {
            st.park_artifacts(&shared.config, &key, &canonical, reclaimed, built_compiled);
            st.verify += outcome.verification_total();
            let job = st
                .jobs
                .get_mut(&id)
                .expect("running jobs are never retired");
            // A cancel raised by the deadline supervisor is a deadline
            // failure, not a client cancellation: the partial outcome
            // is discarded for the typed error.
            if was_cancelled && job.deadline_hit {
                let error = JobError::DeadlineExceeded {
                    deadline_ms: job.deadline_ms.unwrap_or(0),
                };
                job.error = Some(error.to_string());
                job.outcome = Some(Err(error));
                job.state = JobState::Failed;
                st.failed += 1;
                st.deadline_exceeded += 1;
            } else if was_cancelled {
                job.outcome = Some(Ok(outcome));
                job.state = JobState::Cancelled;
                st.cancelled += 1;
            } else {
                job.outcome = Some(Ok(outcome));
                job.state = JobState::Done;
                st.completed += 1;
            }
        }
        Finish::Error {
            error,
            reclaimed,
            built_compiled,
        } => {
            st.park_artifacts(&shared.config, &key, &canonical, reclaimed, built_compiled);
            if matches!(error, JobError::DeadlineExceeded { .. }) {
                st.deadline_exceeded += 1;
            }
            st.failed += 1;
            let job = st
                .jobs
                .get_mut(&id)
                .expect("running jobs are never retired");
            job.error = Some(error.to_string());
            job.outcome = Some(Err(error));
            job.state = JobState::Failed;
        }
        Finish::CancelledBare => {
            st.cancelled += 1;
            let job = st
                .jobs
                .get_mut(&id)
                .expect("running jobs are never retired");
            job.state = JobState::Cancelled;
        }
    }
    st.retire(id, shared.config.retain_jobs);
    shared.done_cv.notify_all();
}

/// One panic-isolated attempt: build (or reuse) the artifacts, run the
/// engine, hand everything back for the retry loop to classify.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    shared: &Arc<Shared>,
    id: u64,
    module: &Arc<Module>,
    elab: &Arc<Elab>,
    checker: Option<Checker>,
    compiled: Option<Arc<CompiledModule>>,
    config: EngineConfig,
    cancel: &Arc<AtomicBool>,
) -> Attempt {
    let inert = |outcome| Attempt {
        outcome,
        reclaimed: None,
        built_compiled: None,
        observed_cancel: false,
    };
    if gm_fault::fire("worker.panic") {
        panic!("injected fault at worker.panic");
    }
    if gm_fault::fire("cache.checkout_fail") {
        // Simulated checkout corruption: the checked-out warm artifacts
        // are dropped, the retry invalidates the cache entry and
        // rebuilds the design from source.
        return inert(Err(AttemptError::Fault("cache.checkout_fail")));
    }

    // Build (or reuse) the checker and run the engine outside the lock.
    let checker_result = match checker {
        Some(c) => Ok(c),
        None => {
            let _span = gm_trace::span("serve", "serve.build_checker");
            Checker::from_elab(module, elab)
        }
    };
    // Reuse the design's parked compiled tape, or build (and later
    // park) one — per canonical design, not per engine. Compilation is
    // deterministic, so reuse never changes the outcome.
    let mut built_compiled: Option<Arc<CompiledModule>> = None;
    let compiled = if config.sim_backend == SimBackend::Interpreter {
        None
    } else {
        Some(compiled.unwrap_or_else(|| {
            // Compile with the probes this job needs: a coverage run
            // gets a probed tape, a trace-only run a leaner probe-free
            // one. The cache slots the parked tape by these options.
            let opts = CompileOptions {
                probes: config.record_coverage,
            };
            let mut span = gm_trace::span("serve", "serve.compile_tape");
            if span.is_active() {
                span.arg("probes", opts.probes);
            }
            let c = Arc::new(CompiledModule::with_elab_opts(module, elab, opts));
            built_compiled = Some(c.clone());
            c
        }))
    };
    // Whether the *run itself* observed the cancel and stopped early —
    // a cancel that lands after the final iteration has discarded
    // nothing, so the completed result stays `Done`. The iteration
    // observer catches boundary cancels; the engine's own token
    // (`with_cancel`) catches them mid-iteration, surfacing as
    // `ClosureOutcome::interrupted`.
    let mut observed_cancel = false;
    let (outcome, reclaimed) = match checker_result {
        Err(e) => (Err(EngineError::from(e)), None),
        Ok(checker) => {
            match Engine::with_artifacts_compiled(module, elab, checker, compiled, config) {
                // `with_artifacts_compiled` is infallible today (its
                // `Result` covers future fallible mining-spec
                // construction); if it ever gains real failure modes it
                // should hand the checker back on error so this arm can
                // re-park it instead of dropping the design's warm state.
                Err(e) => (Err(e), None),
                Ok(engine) => {
                    let shared_for_progress = shared.clone();
                    let observed_cancel = &mut observed_cancel;
                    let job_cancel = cancel.clone();
                    let (outcome, checker) =
                        engine.with_cancel(cancel.clone()).run_reclaim(|report| {
                            let mut st = lock_state(&shared_for_progress.state);
                            if let Some(job) = st.jobs.get_mut(&id) {
                                job.progress.push(ProgressEvent::from_report(report));
                            }
                            if job_cancel.load(Ordering::Acquire) {
                                *observed_cancel = true;
                            }
                            !*observed_cancel
                        });
                    (outcome, Some(checker))
                }
            }
        }
    };
    Attempt {
        outcome: outcome.map_err(AttemptError::Engine),
        reclaimed,
        built_compiled,
        observed_cancel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldmine::SeedStimulus;

    fn tiny_config() -> EngineConfig {
        EngineConfig {
            window: 0,
            stimulus: SeedStimulus::Random { cycles: 8 },
            record_coverage: false,
            ..EngineConfig::default()
        }
    }

    fn parse(src: &str) -> Module {
        gm_rtl::parse_verilog(src).unwrap()
    }

    #[test]
    fn serves_a_job_and_reuses_the_design_cache() {
        let service = ClosureService::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let src = "module m(input a, input b, output y); assign y = a ^ b; endmodule";
        let (first, cached) = service
            .submit_module("m", parse(src), tiny_config())
            .unwrap();
        assert!(!cached);
        assert_eq!(service.wait(first), Some(JobState::Done));
        let first_outcome = service.take_outcome(first).unwrap().unwrap();
        assert!(first_outcome.converged);

        // Same design again: a cache hit, with an identical outcome.
        let (second, cached) = service
            .submit_module("m-again", parse(src), tiny_config())
            .unwrap();
        assert!(cached);
        service.wait(second);
        let second_outcome = service.take_outcome(second).unwrap().unwrap();
        assert_eq!(
            format!("{first_outcome:?}"),
            format!("{second_outcome:?}"),
            "warm artifacts must not change the outcome"
        );
        let stats = service.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.completed, 2);
        service.shutdown();
    }

    #[test]
    fn progress_streams_and_summary_matches_outcome() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let module = gm_designs::arbiter2();
        let gnt0 = module.require("gnt0").unwrap();
        let config = EngineConfig {
            targets: goldmine::TargetSelection::Bits(vec![(gnt0, 0)]),
            record_coverage: false,
            ..EngineConfig::default()
        };
        let (job, _) = service.submit_module("arbiter2", module, config).unwrap();
        service.wait(job);
        let (events, terminal) = service.progress(job, 0).unwrap();
        assert!(terminal);
        assert!(!events.is_empty(), "iteration 0 snapshot always streams");
        assert_eq!(events[0].iteration, 0);
        let summary = service.summary(job).unwrap();
        assert!(summary.converged);
        let outcome = service.take_outcome(job).unwrap().unwrap();
        assert_eq!(summary.outcome_debug, format!("{outcome:?}"));
        assert_eq!(events.len(), outcome.iterations.len());
    }

    #[test]
    fn queued_jobs_cancel_before_running() {
        // One worker, first job slow enough that a queued second job
        // can be cancelled before a worker claims it.
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let module = gm_designs::arbiter4();
        let (slow, _) = service
            .submit_module("slow", module, EngineConfig::default())
            .unwrap();
        let (victim, _) = service
            .submit_module(
                "victim",
                parse("module v(input a, output y); assign y = a; endmodule"),
                tiny_config(),
            )
            .unwrap();
        assert!(service.cancel(victim));
        assert_eq!(service.wait(victim), Some(JobState::Cancelled));
        assert_eq!(service.wait(slow), Some(JobState::Done));
        assert!(!service.cancel(victim), "terminal jobs are not cancellable");
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn finished_jobs_are_retained_up_to_the_bound() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            retain_jobs: 2,
            ..ServeConfig::default()
        });
        let src = "module r(input a, output y); assign y = a; endmodule";
        let ids: Vec<u64> = (0..4)
            .map(|i| {
                let (id, _) = service
                    .submit_module(&format!("r{i}"), parse(src), tiny_config())
                    .unwrap();
                service.wait(id);
                id
            })
            .collect();
        // The two oldest finished records were dropped; the newest two
        // remain queryable.
        assert!(service.status(ids[0]).is_none());
        assert!(service.status(ids[1]).is_none());
        assert!(service.take_outcome(ids[2]).is_some());
        assert_eq!(service.status(ids[3]).unwrap().state, JobState::Done);
        assert_eq!(service.stats().completed, 4, "counters outlive records");
        service.shutdown();
    }

    #[test]
    fn failed_jobs_report_the_engine_error() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        // Force a failure: explicit backend on a design over the input
        // limits.
        let module = parse(
            "module wide(input clk, input [15:0] d, output reg [15:0] q);
               always @(posedge clk) q <= d;
             endmodule",
        );
        let config = EngineConfig {
            backend: gm_mc::Backend::Explicit,
            ..tiny_config()
        };
        let (job, _) = service.submit_module("wide", module, config).unwrap();
        assert_eq!(service.wait(job), Some(JobState::Failed));
        let status = service.status(job).unwrap();
        assert!(status.error.is_some(), "{status:?}");
        assert!(service.summary(job).is_none());
        // Deterministic engine failures are typed and never retried.
        match service.take_outcome(job).unwrap() {
            Err(JobError::Engine(_)) => {}
            other => panic!("expected a typed engine error, got {other:?}"),
        }
        assert_eq!(service.stats().jobs_retried, 0);
    }

    #[test]
    fn traced_jobs_capture_a_flight_recording() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let src = "module t(input a, input b, output y); assign y = a & b; endmodule";
        let (traced, _) = service
            .submit_module_traced("traced", parse(src), tiny_config(), true)
            .unwrap();
        let (plain, _) = service
            .submit_module("plain", parse(src), tiny_config())
            .unwrap();
        service.wait(traced);
        service.wait(plain);

        let json = service.trace_json(traced).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        for name in ["serve.queue", "serve.job", "engine.run", "engine.verify"] {
            assert!(
                json.contains(&format!("\"name\":\"{name}\"")),
                "span {name} missing from the recording"
            );
        }
        // Untraced and unknown jobs have no recording to export.
        assert!(service.trace_json(plain).is_err());
        assert!(service.trace_json(u64::MAX).is_err());

        // Tracing never changes the outcome.
        let traced_outcome = service.take_outcome(traced).unwrap().unwrap();
        let plain_outcome = service.take_outcome(plain).unwrap().unwrap();
        assert_eq!(
            format!("{traced_outcome:?}"),
            format!("{plain_outcome:?}"),
            "the recorder must be inert"
        );

        // Both claims and both retirements were sampled.
        let stats = service.stats();
        assert_eq!(stats.queue_seconds.count(), 2);
        assert_eq!(stats.wall_seconds.count(), 2);
        assert!(stats.wall_seconds.sum_ns > 0);
        // Fault-free runs still populate the retry histogram's zero
        // bucket: one observation per retired job.
        assert_eq!(stats.job_retries.count(), 2);
        assert_eq!(stats.job_retries.sum, 0);
        service.shutdown();
    }

    #[test]
    fn trace_requests_flow_through_the_wire_dispatcher() {
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let response = service.handle_request(&Request::Submit {
            name: "wired".into(),
            source: "module w(input a, output y); assign y = ~a; endmodule".into(),
            config: WireConfig::default(),
            trace: true,
            deadline_ms: None,
        });
        let Response::Submitted { job, .. } = response else {
            panic!("unexpected response {response:?}");
        };
        service.wait(job);
        match service.handle_request(&Request::Trace { job }) {
            Response::Trace { job: id, trace } => {
                assert_eq!(id, job);
                assert!(trace.contains("\"name\":\"serve.job\""));
            }
            other => panic!("unexpected response {other:?}"),
        }
        match service.handle_request(&Request::Trace { job: job + 100 }) {
            Response::Error { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let service = ClosureService::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let ids: Vec<u64> = (0..6)
            .map(|i| {
                service
                    .submit_module(
                        &format!("job{i}"),
                        parse("module d(input a, input b, output y); assign y = a | b; endmodule"),
                        tiny_config(),
                    )
                    .unwrap()
                    .0
            })
            .collect();
        service.shutdown();
        for id in ids {
            assert_eq!(
                service.status(id).unwrap().state,
                JobState::Done,
                "shutdown must finish accepted work"
            );
        }
        assert_eq!(
            service.submit_module(
                "late",
                parse("module z(input a, output y); assign y = a; endmodule"),
                tiny_config()
            ),
            Err(ServeError::ShutDown),
            "submissions after shutdown are rejected"
        );
    }

    #[test]
    fn explicit_zero_deadline_opts_out_of_the_server_default() {
        // A server default deadline generous enough that a tiny job
        // can't trip it; the point here is the resolution logic.
        let service = ClosureService::new(ServeConfig {
            workers: 1,
            default_deadline_ms: 120_000,
            ..ServeConfig::default()
        });
        let src = "module o(input a, output y); assign y = a; endmodule";
        let (defaulted, _) = service
            .submit_module("defaulted", parse(src), tiny_config())
            .unwrap();
        let (opted_out, _) = service
            .submit_module_opts(
                "opted-out",
                parse(src),
                tiny_config(),
                SubmitOptions {
                    deadline_ms: Some(0),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        assert_eq!(service.wait(defaulted), Some(JobState::Done));
        assert_eq!(service.wait(opted_out), Some(JobState::Done));
        assert_eq!(service.stats().jobs_deadline_exceeded, 0);
        service.shutdown();
    }
}
