//! The work-stealing scheduler.
//!
//! Each worker owns a local deque; jobs are dealt round-robin at
//! submission, owners pop oldest-first from their own queue, and — under
//! [`SchedPolicy::WorkStealing`] — an idle worker scans its peers in a
//! fixed ring order and steals from the *back* of the first non-empty
//! queue it finds. [`SchedPolicy::RoundRobin`] keeps the same static
//! deal but never steals: that is the baseline whose idle-shard skew
//! this module exists to fix (a few expensive designs bunched onto one
//! worker leave the rest idle; see the `serve` bench kernels for the
//! measured gap).
//!
//! Scheduling never changes results: jobs are independent, results are
//! merged back in submission order, and each job's outcome is identical
//! to a standalone run — the engine's own determinism contract. Only
//! *where* a job ran (and the [`SchedStats`] steal counters) varies.
//!
//! [`run_jobs`] is the batch entry point used by [`run_campaign`] and
//! the bench kernels; the persistent [`crate::ClosureService`] runs the
//! same queue discipline with long-lived workers.

use goldmine::{CampaignJob, CampaignRun, CampaignSummary, Engine};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// How the worker pool schedules its queues.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Static round-robin deal, no stealing — a skewed workload can
    /// leave workers idle.
    RoundRobin,
    /// Round-robin deal plus idle-worker stealing (work-conserving).
    /// The default.
    #[default]
    WorkStealing,
}

/// Counters from one scheduler run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs a worker claimed from a peer's queue.
    pub steals: u64,
    /// Jobs executed per worker (index = worker).
    pub per_worker: Vec<u64>,
}

/// The shared queue set: one mutex-guarded deque per worker plus the
/// blocking/steal discipline. Used by both the batch [`run_jobs`] and
/// the persistent service pool.
#[derive(Debug)]
pub(crate) struct StealQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    policy: SchedPolicy,
    steals: AtomicU64,
    /// Wakes parked workers on new work or shutdown. Guarded by its own
    /// mutex: waiters re-check the queues after every wake.
    signal: Mutex<()>,
    cv: Condvar,
}

impl<T> StealQueues<T> {
    pub(crate) fn new(workers: usize, policy: SchedPolicy) -> Self {
        StealQueues {
            queues: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            policy,
            steals: AtomicU64::new(0),
            signal: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn worker_count(&self) -> usize {
        self.queues.len()
    }

    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Enqueues onto `worker`'s local queue and wakes parked workers.
    pub(crate) fn push(&self, worker: usize, item: T) {
        self.queues[worker % self.queues.len()]
            .lock()
            .expect("queue poisoned")
            .push_back(item);
        self.cv.notify_all();
    }

    /// Claims the next item for `worker`: oldest from its own queue,
    /// else — under `WorkStealing` — from the back of the first
    /// non-empty peer queue in ring order.
    pub(crate) fn pop(&self, worker: usize) -> Option<T> {
        if let Some(item) = self.queues[worker]
            .lock()
            .expect("queue poisoned")
            .pop_front()
        {
            return Some(item);
        }
        if self.policy == SchedPolicy::WorkStealing {
            let n = self.queues.len();
            for step in 1..n {
                let victim = (worker + step) % n;
                if let Some(item) = self.queues[victim]
                    .lock()
                    .expect("queue poisoned")
                    .pop_back()
                {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(item);
                }
            }
        }
        None
    }

    /// Parks `worker` until new work may be available or `closed`
    /// becomes true. Spurious wakes are fine — callers loop on
    /// [`StealQueues::pop`].
    pub(crate) fn park(&self, closed: impl Fn() -> bool) {
        let guard = self.signal.lock().expect("signal poisoned");
        if closed() {
            return;
        }
        // Re-check under the signal lock happens in the caller's next
        // pop; a short timeout bounds the lost-wakeup window.
        let _unused = self
            .cv
            .wait_timeout(guard, std::time::Duration::from_millis(50))
            .expect("signal poisoned");
    }

    /// Wakes every parked worker (shutdown or new-work broadcast).
    pub(crate) fn notify_all(&self) {
        self.cv.notify_all();
    }
}

/// Runs `jobs` on `workers` threads under `policy`, returning results
/// in submission order plus the scheduler counters.
///
/// The deal is deterministic (job `i` lands on worker `i % workers`);
/// under `WorkStealing` idle workers then rebalance dynamically. Each
/// job runs exactly once, so the result vector is identical under both
/// policies — only wall time and the steal counters differ.
pub fn run_jobs_stats<T, R, F>(
    jobs: Vec<T>,
    workers: usize,
    policy: SchedPolicy,
    run: F,
) -> (Vec<R>, SchedStats)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1).min(jobs.len().max(1));
    let queues: StealQueues<(usize, T)> = StealQueues::new(workers, policy);
    let total = jobs.len();
    for (i, job) in jobs.into_iter().enumerate() {
        queues.push(i % workers, (i, job));
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..total).map(|_| None).collect());
    let per_worker: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for (w, counter) in per_worker.iter().enumerate() {
            let queues = &queues;
            let results = &results;
            let run = &run;
            scope.spawn(move || {
                while let Some((i, job)) = queues.pop(w) {
                    let r = run(job);
                    counter.fetch_add(1, Ordering::Relaxed);
                    results.lock().expect("results poisoned")[i] = Some(r);
                }
            });
        }
    });
    let stats = SchedStats {
        steals: queues.steals(),
        per_worker: per_worker
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
    };
    (
        results
            .into_inner()
            .expect("results poisoned")
            .into_iter()
            .map(|r| r.expect("every job ran"))
            .collect(),
        stats,
    )
}

/// [`run_jobs_stats`] without the counters.
pub fn run_jobs<T, R, F>(jobs: Vec<T>, workers: usize, policy: SchedPolicy, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_jobs_stats(jobs, workers, policy, run).0
}

/// Runs a batch of closure jobs — [`goldmine::Campaign`] jobs, e.g.
/// from [`goldmine::Campaign::into_jobs`] — on the work-stealing pool,
/// producing the same submission-ordered [`CampaignSummary`] the
/// campaign runner would.
///
/// # Examples
///
/// ```
/// use gm_serve::{run_campaign, SchedPolicy};
/// use goldmine::{Campaign, EngineConfig, SeedStimulus};
///
/// let mut campaign = Campaign::new();
/// let module = gm_rtl::parse_verilog(
///     "module m(input a, output y); assign y = a; endmodule")?;
/// let config = EngineConfig {
///     window: 0,
///     stimulus: SeedStimulus::Random { cycles: 8 },
///     record_coverage: false,
///     ..EngineConfig::default()
/// };
/// campaign.push("m", module, config);
/// let summary = run_campaign(campaign.into_jobs(), 2, SchedPolicy::WorkStealing);
/// assert!(summary.all_converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_campaign(
    jobs: Vec<CampaignJob>,
    workers: usize,
    policy: SchedPolicy,
) -> CampaignSummary {
    let runs = run_jobs(jobs, workers, policy, |job: CampaignJob| {
        let outcome = Engine::new(&job.module, job.config.clone()).and_then(|engine| engine.run());
        CampaignRun {
            name: job.name,
            outcome,
        }
    });
    CampaignSummary { runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_jobs_run_once_in_submission_order() {
        for policy in [SchedPolicy::RoundRobin, SchedPolicy::WorkStealing] {
            let jobs: Vec<u64> = (0..23).collect();
            let (results, stats) = run_jobs_stats(jobs, 4, policy, |j| j * 2);
            assert_eq!(results, (0..23).map(|j| j * 2).collect::<Vec<_>>());
            assert_eq!(stats.per_worker.iter().sum::<u64>(), 23);
            if policy == SchedPolicy::RoundRobin {
                assert_eq!(stats.steals, 0, "round-robin never steals");
            }
        }
    }

    #[test]
    fn stealing_rebalances_a_skewed_deal() {
        // Worker 0 gets every slow job under the static deal; with
        // stealing, its peers must take some of them.
        let jobs: Vec<u64> = (0..12).collect();
        let slow = |j: u64| {
            if j.is_multiple_of(4) {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            j
        };
        let (_, stats) = run_jobs_stats(jobs, 4, SchedPolicy::WorkStealing, slow);
        assert!(
            stats.steals > 0,
            "idle workers must steal the skewed tail: {stats:?}"
        );
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let (results, stats) =
            run_jobs_stats(vec![1, 2, 3], 1, SchedPolicy::WorkStealing, |j| j + 1);
        assert_eq!(results, vec![2, 3, 4]);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.per_worker, vec![3]);
    }
}
