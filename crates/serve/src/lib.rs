//! # gm-serve — the persistent closure service
//!
//! The batch pipeline's production shape: a long-lived verification
//! backend that accepts closure requests for many designs, reuses warm
//! design state across them, and streams per-iteration results back.
//! Four layers:
//!
//! * [`protocol`] — serde-annotated [`Request`]/[`Response`] wire types
//!   over length-prefixed JSON frames ([`protocol::write_frame`] /
//!   [`protocol::read_frame`]) that work identically in-process and
//!   across a Unix-domain socket;
//! * [`scheduler`] — a work-stealing deque pool (each worker owns a
//!   local queue, idle workers steal from peers) replacing the static
//!   round-robin deal, with [`run_jobs`] for batch workloads and
//!   [`run_campaign`] as a drop-in [`goldmine::Campaign`] executor;
//! * [`cache`] — a content-addressed [`DesignCache`]: submissions
//!   hash the parsed module, repeated designs reuse the elaboration,
//!   bit-blasted AIG, reachable set and explicit-engine caches, under
//!   a bounded LRU with hit/miss/eviction counters;
//! * [`service`] — the [`ClosureService`] job table tying them
//!   together, plus the Unix-socket transport ([`serve_unix`],
//!   [`ServeClient`]) and the `gmserved` daemon binary.
//!
//! Serving never changes results: a served job's
//! [`goldmine::ClosureOutcome`] is byte-identical to a standalone
//! [`goldmine::Engine`] run under every scheduling policy and cache
//! state (enforced by `tests/serve_agree.rs` across the whole design
//! catalog).
//!
//! ## Quick start
//!
//! ```
//! use gm_serve::{ClosureService, ServeConfig};
//! use goldmine::{EngineConfig, SeedStimulus};
//!
//! let service = ClosureService::new(ServeConfig { workers: 2, ..ServeConfig::default() });
//! let module = gm_rtl::parse_verilog(
//!     "module m(input a, output y); assign y = ~a; endmodule")?;
//! let config = EngineConfig {
//!     window: 0,
//!     stimulus: SeedStimulus::Random { cycles: 8 },
//!     record_coverage: false,
//!     ..EngineConfig::default()
//! };
//! let (job, _) = service.submit_module("inverter", module, config)?;
//! service.wait(job);
//! assert!(service.summary(job).unwrap().converged);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Or over a socket: start `gmserved /tmp/gm.sock`, then drive it with
//! [`ServeClient`] (see `examples/serve_closure.rs`).

#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod net;
pub mod protocol;
pub mod retry;
pub mod scheduler;
pub mod service;

pub use cache::{content_key, CacheStats, DesignCache};
pub use net::{bind_unix, serve_unix, ServeClient};
pub use protocol::{
    ClosureSummary, JobState, ProgressEvent, Request, Response, ServeStats, WireBackend,
    WireConfig, WireCountHistogram, WireHistogram, WireTargets, LATENCY_BUCKETS_NS, RETRY_BUCKETS,
};
pub use retry::RetryPolicy;
pub use scheduler::{run_campaign, run_jobs, run_jobs_stats, SchedPolicy, SchedStats};
pub use service::{ClosureService, JobError, JobStatus, ServeConfig, ServeError, SubmitOptions};
