//! Unix-domain-socket transport: the `gmserved` accept loop and the
//! [`ServeClient`] helper.
//!
//! One thread per connection; each connection is a sequence of
//! length-prefixed request/response frames (see [`crate::protocol`]).
//! A `Shutdown` request is acknowledged on its own connection, then the
//! accept loop stops, the service drains its queues, and
//! [`serve_unix`] returns — the clean-shutdown path the CI smoke test
//! asserts.

use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::service::ClosureService;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Binds a Unix listener at `path`, replacing a stale socket file.
///
/// # Errors
///
/// Propagates bind failures.
pub fn bind_unix(path: &Path) -> io::Result<UnixListener> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    UnixListener::bind(path)
}

/// Serves `service` on `listener` until a client sends
/// `Request::Shutdown`. Returns after the service has drained and every
/// connection thread has been joined.
///
/// # Errors
///
/// Propagates accept-loop I/O failures (per-connection errors only end
/// that connection).
pub fn serve_unix(service: Arc<ClosureService>, listener: UnixListener) -> io::Result<()> {
    /// How often finished connection threads are reaped.
    const REAP_INTERVAL: Duration = Duration::from_millis(250);
    let closing = Arc::new(AtomicBool::new(false));
    listener.set_nonblocking(true)?;
    let mut conn_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut last_reap = std::time::Instant::now();
    let mut fatal = None;
    while !closing.load(Ordering::Acquire) {
        // Reap finished connections on a periodic tick — a long-lived
        // daemon must not accumulate one dead JoinHandle per past
        // client, and the tick fires whether the iteration accepted a
        // connection or idled on `WouldBlock`, so the reap cadence is
        // independent of client traffic.
        if last_reap.elapsed() >= REAP_INTERVAL {
            conn_threads.retain(|t| !t.is_finished());
            last_reap = std::time::Instant::now();
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let service = service.clone();
                let closing = closing.clone();
                conn_threads.push(std::thread::spawn(move || {
                    let _ = handle_connection(&service, stream, &closing);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                // A fatal accept failure still runs the full teardown
                // (unblock + join connections, drain the service) —
                // embedders must not be left with orphaned threads.
                closing.store(true, Ordering::Release);
                fatal = Some(e);
            }
        }
    }
    // Drain the service FIRST: a submission that raced the close may
    // sit in a queue no worker will run, and a connection thread may be
    // blocked in Wait on it — shutdown() cancels those and notifies, so
    // the connection joins below can complete.
    service.shutdown();
    for t in conn_threads {
        let _ = t.join();
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn handle_connection(
    service: &ClosureService,
    mut stream: UnixStream,
    closing: &AtomicBool,
) -> io::Result<()> {
    // Reads poll with a short timeout so an *idle* open connection
    // notices a server shutdown instead of pinning the accept loop's
    // join forever.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    while let Some(frame) = read_frame_interruptible(&mut stream, closing)? {
        // Injected abrupt disconnect: drop the connection between a
        // request and its response — the shape of a client that
        // vanished or a peer reset. Only this connection dies; the
        // accept loop and every other client are untouched.
        if gm_fault::fire("net.disconnect") {
            return Ok(());
        }
        let response = match Request::from_json(&frame) {
            Ok(request) => {
                let response = service.handle_request(&request);
                if matches!(request, Request::Shutdown) {
                    closing.store(true, Ordering::Release);
                }
                response
            }
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        };
        write_response_frame(&mut stream, &response)?;
        if matches!(response, Response::ShuttingDown) {
            break;
        }
    }
    Ok(())
}

/// Writes one response frame, honoring the `net.frame_truncate` fault:
/// when armed and fired, the length prefix and only half the payload
/// reach the client before the connection errors out — the torn-write
/// shape a crashed server leaves behind. The client's frame reader must
/// surface this as `UnexpectedEof`, never a hang or a desynced stream.
fn write_response_frame(stream: &mut UnixStream, response: &Response) -> io::Result<()> {
    if gm_fault::fire("net.frame_truncate") {
        use std::io::Write;
        let bytes = response.to_json().to_string().into_bytes();
        let len = u32::try_from(bytes.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(&bytes[..bytes.len() / 2])?;
        stream.flush()?;
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "injected fault at net.frame_truncate",
        ));
    }
    write_frame(stream, &response.to_json())
}

/// [`read_frame`], but interruptible by the shutdown flag: between
/// frames (and only there) a set `closing` ends the connection cleanly.
/// Mid-frame timeouts keep the partial progress and keep waiting, so
/// the stream never desynchronizes.
fn read_frame_interruptible(
    stream: &mut UnixStream,
    closing: &AtomicBool,
) -> io::Result<Option<crate::json::Json>> {
    use crate::protocol::MAX_FRAME_BYTES;
    let mut len_bytes = [0u8; 4];
    if !read_full_interruptible(stream, &mut len_bytes, closing, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full_interruptible(stream, &mut payload, closing, false)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        ));
    }
    let text =
        String::from_utf8(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    crate::json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Fills `buf`, tolerating read timeouts. Returns `Ok(false)` for a
/// clean end — EOF, or shutdown observed — before the first byte when
/// `at_boundary`; partial progress always keeps waiting for the rest
/// (a shutdown mid-frame aborts with an error instead of desyncing).
fn read_full_interruptible(
    stream: &mut UnixStream,
    buf: &mut [u8],
    closing: &AtomicBool,
    at_boundary: bool,
) -> io::Result<bool> {
    use std::io::Read;
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if closing.load(Ordering::Acquire) {
                    if at_boundary && filled == 0 {
                        return Ok(false);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "server shutting down mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// A blocking client over one Unix-socket connection.
///
/// Thin sugar over the wire protocol: every method sends one request
/// frame and decodes one response frame, turning protocol-level
/// `Error` responses into `io::Error`s.
#[derive(Debug)]
pub struct ServeClient {
    stream: UnixStream,
}

impl ServeClient {
    /// Connects to a `gmserved` socket.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(path: &Path) -> io::Result<Self> {
        Ok(ServeClient {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-closed connection.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.to_json())?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        Response::from_json(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        decode: impl FnOnce(Response) -> Option<T>,
    ) -> io::Result<T> {
        match self.request(request)? {
            Response::Error { message } => Err(io::Error::other(message)),
            // Load shedding is a typed refusal, not a protocol error:
            // `WouldBlock` tells callers the request is retryable once
            // the server's backlog drains.
            Response::Overloaded { queued, limit } => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!("server overloaded ({queued} jobs queued, limit {limit}); retry later"),
            )),
            other => decode(other)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unexpected response")),
        }
    }

    /// Submits a design; returns `(job id, design was cached)`.
    ///
    /// # Errors
    ///
    /// Propagates transport and server-side submission errors.
    pub fn submit(
        &mut self,
        name: &str,
        source: &str,
        config: &crate::protocol::WireConfig,
    ) -> io::Result<(u64, bool)> {
        self.submit_traced(name, source, config, false)
    }

    /// [`ServeClient::submit`] with an optional per-job flight
    /// recorder; fetch the recording with [`ServeClient::trace`] once
    /// the job is terminal.
    ///
    /// # Errors
    ///
    /// Propagates transport and server-side submission errors.
    pub fn submit_traced(
        &mut self,
        name: &str,
        source: &str,
        config: &crate::protocol::WireConfig,
        trace: bool,
    ) -> io::Result<(u64, bool)> {
        self.submit_opts(name, source, config, trace, None)
    }

    /// [`ServeClient::submit`] with every per-submission option:
    /// tracing and a per-job deadline (`None` = the server's default;
    /// `Some(0)` opts out of any deadline). A shed submission (the
    /// server's queue bound) surfaces as a `WouldBlock` error — retry
    /// once the backlog drains.
    ///
    /// # Errors
    ///
    /// Propagates transport and server-side submission errors.
    pub fn submit_opts(
        &mut self,
        name: &str,
        source: &str,
        config: &crate::protocol::WireConfig,
        trace: bool,
        deadline_ms: Option<u64>,
    ) -> io::Result<(u64, bool)> {
        self.expect(
            &Request::Submit {
                name: name.to_string(),
                source: source.to_string(),
                config: config.clone(),
                trace,
                deadline_ms,
            },
            |r| match r {
                Response::Submitted { job, cached } => Some((job, cached)),
                _ => None,
            },
        )
    }

    /// Fetches a terminal traced job's flight recording as Chrome
    /// trace-event JSON (load it in Perfetto or `chrome://tracing`).
    ///
    /// # Errors
    ///
    /// Unknown, non-terminal, or untraced jobs surface as errors
    /// carrying the server's message.
    pub fn trace(&mut self, job: u64) -> io::Result<String> {
        self.expect(&Request::Trace { job }, |r| match r {
            Response::Trace { trace, .. } => Some(trace),
            _ => None,
        })
    }

    /// Polls a job's status.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; unknown jobs are server errors.
    pub fn status(&mut self, job: u64) -> io::Result<Response> {
        self.request(&Request::Status { job })
    }

    /// Fetches progress events from `from` on.
    ///
    /// # Errors
    ///
    /// Propagates transport and server errors.
    pub fn progress(
        &mut self,
        job: u64,
        from: u64,
    ) -> io::Result<(Vec<crate::protocol::ProgressEvent>, bool)> {
        self.expect(&Request::Progress { job, from }, |r| match r {
            Response::Progress {
                events, terminal, ..
            } => Some((events, terminal)),
            _ => None,
        })
    }

    /// Blocks until the job finishes; returns its summary.
    ///
    /// # Errors
    ///
    /// Failed or cancelled jobs surface as errors carrying the server's
    /// message.
    pub fn wait(&mut self, job: u64) -> io::Result<crate::protocol::ClosureSummary> {
        self.expect(&Request::Wait { job }, |r| match r {
            Response::Done { summary, .. } => Some(summary),
            _ => None,
        })
    }

    /// Requests cancellation.
    ///
    /// # Errors
    ///
    /// Propagates transport and server errors.
    pub fn cancel(&mut self, job: u64) -> io::Result<Response> {
        self.request(&Request::Cancel { job })
    }

    /// Fetches aggregate service counters.
    ///
    /// # Errors
    ///
    /// Propagates transport and server errors.
    pub fn stats(&mut self) -> io::Result<crate::protocol::ServeStats> {
        self.expect(&Request::Stats, |r| match r {
            Response::Stats(stats) => Some(*stats),
            _ => None,
        })
    }

    /// Fetches the counters rendered in the Prometheus text exposition
    /// format — the scrape endpoint for monitoring agents.
    ///
    /// # Errors
    ///
    /// Propagates transport and server errors.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.expect(&Request::Metrics, |r| match r {
            Response::Metrics { text } => Some(text),
            _ => None,
        })
    }

    /// Asks the server to shut down; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.expect(&Request::Shutdown, |r| match r {
            Response::ShuttingDown => Some(()),
            _ => None,
        })
    }
}
