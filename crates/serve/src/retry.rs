//! Deterministic retry/backoff policy for the resilient job lifecycle.
//!
//! The delay schedule is a *pure function* of the policy, the job id
//! and the attempt number — no clock reads, no shared RNG — so the
//! decision path is unit-testable and a retried run's timing behavior
//! replays exactly. Only the *wait* consults real time (and it does so
//! cancellably, in the service).
//!
//! Shape: classic capped exponential growth with deterministic
//! "equal jitter" — attempt `n` draws uniformly (from a splitmix64 hash
//! of `(job, attempt)`) in the upper half of `min(base · 2ⁿ⁻¹, max)`,
//! so concurrent retries of different jobs decorrelate while every
//! delay stays within `[cap/2, cap] ⊆ [0, max]`.

/// Bounded-retry knobs, embedded in
/// [`crate::ServeConfig`](crate::ServeConfig).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a retryable failure is retried before the job
    /// fails with [`crate::JobError::RetriesExhausted`]. 0 disables
    /// retries.
    pub max_retries: u32,
    /// First-retry backoff cap in milliseconds (doubles per attempt).
    pub base_ms: u64,
    /// Upper bound on any single backoff delay, in milliseconds.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_ms: 50,
            max_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry `attempt` (1-based: 1 = first retry) of
    /// `job`, in milliseconds. Pure — see the module docs.
    ///
    /// Returns 0 when the policy's `base_ms` is 0 (immediate retries,
    /// the shape chaos tests use to stay fast) and caps the exponential
    /// at `max_ms` otherwise.
    pub fn backoff_ms(&self, job: u64, attempt: u32) -> u64 {
        if self.base_ms == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(1).min(63);
        let cap = self
            .base_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_ms.max(self.base_ms));
        // Equal jitter: uniform over the upper half [cap - cap/2, cap].
        let span = cap / 2 + 1;
        let draw = splitmix64(job.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt)) % span;
        cap - draw
    }

    /// Whether retry `attempt` (1-based) is within budget.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt <= self.max_retries
    }
}

/// splitmix64 finalizer — the jitter hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Growth is bounded: every delay lies in [cap/2, cap] for the
        /// attempt's exponential cap, and never exceeds `max_ms`.
        #[test]
        fn backoff_is_bounded_exponential(
            base_ms in 1u64..500,
            max_ms in 1u64..10_000,
            job in 0u64..u64::MAX,
            attempt in 1u32..100
        ) {
            let policy = RetryPolicy { max_retries: 10, base_ms, max_ms };
            let delay = policy.backoff_ms(job, attempt);
            let cap = base_ms
                .saturating_mul(1u64 << attempt.saturating_sub(1).min(63))
                .min(max_ms.max(base_ms));
            prop_assert!(delay <= cap, "delay {delay} over cap {cap}");
            prop_assert!(delay >= cap - cap / 2, "delay {delay} under half-cap floor of {cap}");
            prop_assert!(delay <= max_ms.max(base_ms), "delay {delay} escaped max_ms {max_ms}");
        }

        /// The jitter is a pure function of (job, attempt): same inputs,
        /// same delay — and different jobs decorrelate somewhere in the
        /// schedule.
        #[test]
        fn jitter_is_deterministic_per_job(job in 0u64..u64::MAX) {
            let policy = RetryPolicy { max_retries: 8, base_ms: 100, max_ms: 5_000, };
            for attempt in 1..=8 {
                prop_assert_eq!(
                    policy.backoff_ms(job, attempt),
                    policy.backoff_ms(job, attempt),
                    "replay diverged"
                );
            }
            let other = job.wrapping_add(1);
            let differs = (1..=8).any(|a| policy.backoff_ms(job, a) != policy.backoff_ms(other, a));
            prop_assert!(differs, "adjacent jobs share the whole schedule");
        }

        /// The budget gate is exact: attempts 1..=max_retries pass, the
        /// next is refused — which is what turns the last retryable
        /// failure into the typed terminal error.
        #[test]
        fn retry_budget_exhausts_exactly(max_retries in 0u32..20) {
            let policy = RetryPolicy { max_retries, base_ms: 1, max_ms: 10 };
            for attempt in 1..=max_retries {
                prop_assert!(policy.allows(attempt));
            }
            prop_assert!(!policy.allows(max_retries + 1));
        }
    }

    #[test]
    fn zero_base_means_immediate_retries() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_ms: 0,
            max_ms: 1_000,
        };
        for attempt in 1..=10 {
            assert_eq!(policy.backoff_ms(7, attempt), 0);
        }
    }

    /// The doubling shape is visible through the jitter: per-attempt
    /// caps are monotone until `max_ms` pins them.
    #[test]
    fn schedule_grows_until_the_cap_pins_it() {
        let policy = RetryPolicy {
            max_retries: 16,
            base_ms: 10,
            max_ms: 320,
        };
        let caps: Vec<u64> = (1u32..=8)
            .map(|a| 10u64.saturating_mul(1 << (a - 1)).min(320))
            .collect();
        assert_eq!(caps, vec![10, 20, 40, 80, 160, 320, 320, 320]);
        for (i, &cap) in caps.iter().enumerate() {
            let d = policy.backoff_ms(42, i as u32 + 1);
            assert!(
                d <= cap && d >= cap - cap / 2,
                "attempt {i}: {d} vs cap {cap}"
            );
        }
    }
}
