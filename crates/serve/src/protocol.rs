//! The closure-service wire protocol.
//!
//! Serde-serializable [`Request`] / [`Response`] types carried as JSON
//! over a length-prefixed framing that works identically in-process
//! (any `Read`/`Write` pair) and across a Unix-domain socket: each
//! frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. (The derives are wired through the offline
//! `serde` shim today; the hand-rolled [`crate::json`] codec produces
//! the actual bytes — see `vendor/README.md`.)
//!
//! Designs travel as Verilog source text and are parsed server-side;
//! the [`WireConfig`] mirrors [`EngineConfig`] with signal *names*
//! instead of module-local ids, so a config resolves against whatever
//! module the server parsed. [`ClosureSummary::outcome_debug`] carries
//! the full `Debug` render of the [`goldmine::ClosureOutcome`], which
//! is how the differential suite proves a served result byte-identical
//! to a standalone engine run across the socket.

use crate::json::{self, Json};
use gm_mc::Backend;
use gm_rtl::Module;
use goldmine::{
    EngineConfig, RefineConfig, SeedStimulus, ShardPolicy, SimBackend, StealPolicy,
    TargetSelection, TemporalConfig, UnknownPolicy, MAX_LANE_BLOCK,
};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Largest accepted frame payload (a design source plus a full outcome
/// debug render fits comfortably).
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// A protocol-level failure: malformed frames, unknown message tags,
/// unresolvable signal names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ProtocolError> {
    v.get(key)
        .ok_or_else(|| ProtocolError(format!("missing field '{key}'")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, ProtocolError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| ProtocolError(format!("field '{key}' must be an unsigned integer")))
}

fn u32_field(v: &Json, key: &str) -> Result<u32, ProtocolError> {
    u32::try_from(u64_field(v, key)?)
        .map_err(|_| ProtocolError(format!("field '{key}' exceeds 32 bits")))
}

fn narrow_u32(value: u64, what: &str) -> Result<u32, ProtocolError> {
    u32::try_from(value).map_err(|_| ProtocolError(format!("{what} exceeds 32 bits")))
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, ProtocolError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| ProtocolError(format!("field '{key}' must be a string")))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, ProtocolError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| ProtocolError(format!("field '{key}' must be a boolean")))
}

/// An optional unsigned field: absent or `null` yields `default`. The
/// wire back-compat shape for knobs added after the first protocol
/// version — older clients never send them and must keep resolving to
/// the behavior they always had.
fn opt_u64_field(v: &Json, key: &str, default: u64) -> Result<u64, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(other) => other
            .as_u64()
            .ok_or_else(|| ProtocolError(format!("field '{key}' must be an unsigned integer"))),
    }
}

/// An optional boolean field: absent or `null` yields `default` (see
/// [`opt_u64_field`]).
fn opt_bool_field(v: &Json, key: &str, default: bool) -> Result<bool, ProtocolError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(other) => other
            .as_bool()
            .ok_or_else(|| ProtocolError(format!("field '{key}' must be a boolean"))),
    }
}

fn wide_usize(value: u64, what: &str) -> Result<usize, ProtocolError> {
    usize::try_from(value)
        .map_err(|_| ProtocolError(format!("{what} exceeds the platform word size")))
}

/// Mining-target selection by signal *name* (wire form of
/// [`TargetSelection`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireTargets {
    /// Every bit of every primary output.
    AllOutputs,
    /// Specific `(signal name, bit)` pairs.
    Bits(Vec<(String, u32)>),
}

/// The wire form of [`EngineConfig`]: everything a closure request
/// configures, with signal names in place of module-local ids.
///
/// Directed seed stimulus is not representable on the wire (it embeds
/// module-local vectors); requests use random or empty seeds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireConfig {
    /// Mining window length.
    pub window: u32,
    /// RNG seed for random stimulus.
    pub seed: u64,
    /// Random seed cycles; `None` = the zero-pattern limit study.
    pub random_cycles: Option<u64>,
    /// Iteration budget.
    pub max_iterations: u32,
    /// Backend: `"auto"`, `"explicit"`, `("bmc", bound)`,
    /// `("kind", max_k)`.
    pub backend: WireBackend,
    /// Whether `Unknown` verdicts are assumed true.
    pub unknown_assume: bool,
    /// Target selection.
    pub targets: WireTargets,
    /// Batch candidate checks per iteration.
    pub batched: bool,
    /// Shard sessions: 0 = off, `n` = fixed, `None` = per-core.
    pub shards: Option<u32>,
    /// Work-conserving shard dispatch (see [`StealPolicy`]).
    pub steal: bool,
    /// Race explicit vs SAT backends.
    pub racing: bool,
    /// Record per-iteration coverage.
    pub record_coverage: bool,
    /// Temporal-mining lookahead horizon (the wire form of
    /// [`TemporalConfig::horizon`]); `0` disables temporal mining.
    /// Absent on the wire = `0` — pre-temporal clients keep the
    /// behavior they always had.
    pub temporal_horizon: u32,
    /// Directed variants synthesized per counterexample prefix
    /// ([`RefineConfig::variants`]); `0` disables the refinement pass.
    /// Absent on the wire = `0`.
    pub refine_variants: u64,
    /// Random data-input cycles appended after each replayed prefix
    /// ([`RefineConfig::extra_cycles`]). Absent on the wire = the
    /// engine default.
    pub refine_extra_cycles: u64,
    /// Top-ranked directed segments absorbed per iteration
    /// ([`RefineConfig::max_absorb`]). Absent on the wire = the engine
    /// default.
    pub refine_max_absorb: u64,
    /// Simulation backend: `"interpreter"`, `"scalar"`, `"batch"`, or
    /// `("wide", W)`. Absent on the wire = the default (64-lane
    /// compiled batch) — older clients keep working unchanged. Every
    /// backend yields a byte-identical outcome (`sim/compiled_agree`);
    /// the knob only trades throughput.
    pub sim_backend: WireSimBackend,
}

/// Wire form of [`SimBackend`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireSimBackend {
    /// The reference event-driven interpreter.
    Interpreter,
    /// The compiled tape, one lane at a time.
    CompiledScalar,
    /// The compiled tape, 64 lanes per pass (the default).
    #[default]
    CompiledBatch,
    /// The compiled tape with a lane block of `W` words — `64 * W`
    /// stimulus vectors per pass. `W` must be in
    /// `1..=`[`MAX_LANE_BLOCK`].
    CompiledBatchWide(u8),
}

/// Wire form of [`Backend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireBackend {
    /// Explicit when in limits, SAT otherwise.
    Auto,
    /// Explicit-state only.
    Explicit,
    /// BMC with the given bound.
    Bmc(u32),
    /// k-induction with the given depth.
    KInduction(u32),
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig::from_engine(&EngineConfig::default()).expect("default config is wire-safe")
    }
}

impl WireConfig {
    /// Converts an [`EngineConfig`] into wire form. Target signal ids
    /// are *not* resolvable without a module, so this only accepts
    /// [`TargetSelection::AllOutputs`]; use [`WireConfig::with_bit_targets`]
    /// for named bit targets.
    ///
    /// # Errors
    ///
    /// Fails on directed stimulus or id-based target selections.
    pub fn from_engine(config: &EngineConfig) -> Result<Self, ProtocolError> {
        let random_cycles = match &config.stimulus {
            SeedStimulus::Random { cycles } => Some(*cycles),
            SeedStimulus::None => None,
            SeedStimulus::Directed(_) => {
                return Err(ProtocolError(
                    "directed stimulus is not representable on the wire".into(),
                ))
            }
        };
        let targets = match &config.targets {
            TargetSelection::AllOutputs => WireTargets::AllOutputs,
            _ => {
                return Err(ProtocolError(
                    "id-based targets need a module; use with_bit_targets".into(),
                ))
            }
        };
        Ok(WireConfig {
            window: config.window,
            seed: config.seed,
            random_cycles,
            max_iterations: config.max_iterations,
            backend: match config.backend {
                Backend::Auto => WireBackend::Auto,
                Backend::Explicit => WireBackend::Explicit,
                Backend::Bmc { bound } => WireBackend::Bmc(bound),
                Backend::KInduction { max_k } => WireBackend::KInduction(max_k),
            },
            unknown_assume: config.unknown == UnknownPolicy::AssumeTrue,
            targets,
            batched: config.batched,
            shards: match config.shards {
                ShardPolicy::Off => Some(0),
                ShardPolicy::Fixed(n) => Some(n as u32),
                ShardPolicy::PerCore => None,
            },
            steal: config.steal == StealPolicy::Stealing,
            racing: config.racing,
            record_coverage: config.record_coverage,
            temporal_horizon: config.temporal.horizon,
            refine_variants: config.refine.variants as u64,
            refine_extra_cycles: config.refine.extra_cycles,
            refine_max_absorb: config.refine.max_absorb as u64,
            sim_backend: match config.sim_backend {
                SimBackend::Interpreter => WireSimBackend::Interpreter,
                SimBackend::CompiledScalar => WireSimBackend::CompiledScalar,
                SimBackend::CompiledBatch => WireSimBackend::CompiledBatch,
                // Normalize to the width the executor will actually
                // use, so the wire form always round-trips.
                b @ SimBackend::CompiledBatchWide(_) => {
                    WireSimBackend::CompiledBatchWide(b.lane_block() as u8)
                }
            },
        })
    }

    /// Replaces the target selection with named `(signal, bit)` pairs.
    pub fn with_bit_targets(mut self, bits: Vec<(String, u32)>) -> Self {
        self.targets = WireTargets::Bits(bits);
        self
    }

    /// Resolves the wire config against a parsed module, producing the
    /// exact [`EngineConfig`] a standalone engine would run with.
    ///
    /// # Errors
    ///
    /// Fails when a named target signal does not exist in `module`.
    pub fn to_engine(&self, module: &Module) -> Result<EngineConfig, ProtocolError> {
        let targets = match &self.targets {
            WireTargets::AllOutputs => TargetSelection::AllOutputs,
            WireTargets::Bits(bits) => TargetSelection::Bits(
                bits.iter()
                    .map(|(name, bit)| {
                        module
                            .require(name)
                            .map(|sig| (sig, *bit))
                            .map_err(|_| ProtocolError(format!("unknown target signal '{name}'")))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        Ok(EngineConfig {
            window: self.window,
            seed: self.seed,
            stimulus: match self.random_cycles {
                Some(cycles) => SeedStimulus::Random { cycles },
                None => SeedStimulus::None,
            },
            max_iterations: self.max_iterations,
            backend: match self.backend {
                WireBackend::Auto => Backend::Auto,
                WireBackend::Explicit => Backend::Explicit,
                WireBackend::Bmc(bound) => Backend::Bmc { bound },
                WireBackend::KInduction(max_k) => Backend::KInduction { max_k },
            },
            unknown: if self.unknown_assume {
                UnknownPolicy::AssumeTrue
            } else {
                UnknownPolicy::LeaveOpen
            },
            targets,
            batched: self.batched,
            shards: match self.shards {
                Some(0) => ShardPolicy::Off,
                Some(n) => ShardPolicy::Fixed(n as usize),
                None => ShardPolicy::PerCore,
            },
            steal: if self.steal {
                StealPolicy::Stealing
            } else {
                StealPolicy::RoundRobin
            },
            racing: self.racing,
            record_coverage: self.record_coverage,
            temporal: TemporalConfig {
                horizon: self.temporal_horizon,
            },
            refine: RefineConfig {
                variants: wide_usize(self.refine_variants, "refine_variants")?,
                extra_cycles: self.refine_extra_cycles,
                max_absorb: wide_usize(self.refine_max_absorb, "refine_max_absorb")?,
            },
            sim_backend: match self.sim_backend {
                WireSimBackend::Interpreter => SimBackend::Interpreter,
                WireSimBackend::CompiledScalar => SimBackend::CompiledScalar,
                WireSimBackend::CompiledBatch => SimBackend::CompiledBatch,
                WireSimBackend::CompiledBatchWide(w) => SimBackend::CompiledBatchWide(w),
            },
        })
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("window", Json::UInt(self.window.into())),
            ("seed", Json::UInt(self.seed)),
            (
                "random_cycles",
                self.random_cycles.map_or(Json::Null, Json::UInt),
            ),
            ("max_iterations", Json::UInt(self.max_iterations.into())),
            (
                "backend",
                match self.backend {
                    WireBackend::Auto => Json::Str("auto".into()),
                    WireBackend::Explicit => Json::Str("explicit".into()),
                    WireBackend::Bmc(b) => {
                        Json::Arr(vec![Json::Str("bmc".into()), Json::UInt(b.into())])
                    }
                    WireBackend::KInduction(k) => {
                        Json::Arr(vec![Json::Str("kind".into()), Json::UInt(k.into())])
                    }
                },
            ),
            ("unknown_assume", Json::Bool(self.unknown_assume)),
            (
                "targets",
                match &self.targets {
                    WireTargets::AllOutputs => Json::Str("all_outputs".into()),
                    WireTargets::Bits(bits) => Json::Arr(
                        bits.iter()
                            .map(|(name, bit)| {
                                Json::Arr(vec![Json::Str(name.clone()), Json::UInt((*bit).into())])
                            })
                            .collect(),
                    ),
                },
            ),
            ("batched", Json::Bool(self.batched)),
            (
                "shards",
                self.shards.map_or(Json::Null, |n| Json::UInt(n.into())),
            ),
            ("steal", Json::Bool(self.steal)),
            ("racing", Json::Bool(self.racing)),
            ("record_coverage", Json::Bool(self.record_coverage)),
            ("temporal_horizon", Json::UInt(self.temporal_horizon.into())),
            ("refine_variants", Json::UInt(self.refine_variants)),
            ("refine_extra_cycles", Json::UInt(self.refine_extra_cycles)),
            ("refine_max_absorb", Json::UInt(self.refine_max_absorb)),
            (
                "sim_backend",
                match self.sim_backend {
                    WireSimBackend::Interpreter => Json::Str("interpreter".into()),
                    WireSimBackend::CompiledScalar => Json::Str("scalar".into()),
                    WireSimBackend::CompiledBatch => Json::Str("batch".into()),
                    WireSimBackend::CompiledBatchWide(w) => {
                        Json::Arr(vec![Json::Str("wide".into()), Json::UInt(w.into())])
                    }
                },
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        let backend = match field(v, "backend")? {
            Json::Str(s) if s == "auto" => WireBackend::Auto,
            Json::Str(s) if s == "explicit" => WireBackend::Explicit,
            Json::Arr(items) => match (items.first().and_then(Json::as_str), items.get(1)) {
                (Some("bmc"), Some(b)) => WireBackend::Bmc(narrow_u32(
                    b.as_u64()
                        .ok_or_else(|| ProtocolError("bmc bound must be an integer".into()))?,
                    "bmc bound",
                )?),
                (Some("kind"), Some(k)) => WireBackend::KInduction(narrow_u32(
                    k.as_u64()
                        .ok_or_else(|| ProtocolError("kind depth must be an integer".into()))?,
                    "kind depth",
                )?),
                _ => return Err(ProtocolError("unknown backend".into())),
            },
            _ => return Err(ProtocolError("unknown backend".into())),
        };
        let targets = match field(v, "targets")? {
            Json::Str(s) if s == "all_outputs" => WireTargets::AllOutputs,
            Json::Arr(items) => WireTargets::Bits(
                items
                    .iter()
                    .map(|pair| {
                        let items = pair
                            .as_arr()
                            .ok_or_else(|| ProtocolError("target must be [name, bit]".into()))?;
                        match (
                            items.first().and_then(Json::as_str),
                            items.get(1).and_then(Json::as_u64),
                        ) {
                            (Some(name), Some(bit)) => {
                                Ok((name.to_string(), narrow_u32(bit, "target bit")?))
                            }
                            _ => Err(ProtocolError("target must be [name, bit]".into())),
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            _ => return Err(ProtocolError("unknown target selection".into())),
        };
        // Absent (or null) is the pre-wide-lane wire form: default to
        // the 64-lane compiled batch, as those clients always ran.
        let sim_backend = match v.get("sim_backend") {
            None | Some(Json::Null) => WireSimBackend::CompiledBatch,
            Some(Json::Str(s)) if s == "interpreter" => WireSimBackend::Interpreter,
            Some(Json::Str(s)) if s == "scalar" => WireSimBackend::CompiledScalar,
            Some(Json::Str(s)) if s == "batch" => WireSimBackend::CompiledBatch,
            Some(Json::Arr(items)) => match (
                items.first().and_then(Json::as_str),
                items.get(1).and_then(Json::as_u64),
            ) {
                (Some("wide"), Some(w)) if (1..=MAX_LANE_BLOCK as u64).contains(&w) => {
                    WireSimBackend::CompiledBatchWide(w as u8)
                }
                (Some("wide"), Some(w)) => {
                    return Err(ProtocolError(format!(
                        "wide lane block must be 1..={MAX_LANE_BLOCK}, got {w}"
                    )))
                }
                _ => return Err(ProtocolError("unknown sim backend".into())),
            },
            _ => return Err(ProtocolError("unknown sim backend".into())),
        };
        Ok(WireConfig {
            window: u32_field(v, "window")?,
            seed: u64_field(v, "seed")?,
            random_cycles: match field(v, "random_cycles")? {
                Json::Null => None,
                other => Some(other.as_u64().ok_or_else(|| {
                    ProtocolError("random_cycles must be an integer or null".into())
                })?),
            },
            max_iterations: u32_field(v, "max_iterations")?,
            backend,
            unknown_assume: bool_field(v, "unknown_assume")?,
            targets,
            batched: bool_field(v, "batched")?,
            shards: match field(v, "shards")? {
                Json::Null => None,
                other => Some(narrow_u32(
                    other
                        .as_u64()
                        .ok_or_else(|| ProtocolError("shards must be an integer or null".into()))?,
                    "shards",
                )?),
            },
            steal: bool_field(v, "steal")?,
            racing: bool_field(v, "racing")?,
            record_coverage: bool_field(v, "record_coverage")?,
            // Absent temporal/refine knobs are the pre-observability
            // wire form: resolve to the engine defaults those clients
            // always ran with.
            temporal_horizon: narrow_u32(
                opt_u64_field(
                    v,
                    "temporal_horizon",
                    TemporalConfig::default().horizon.into(),
                )?,
                "temporal_horizon",
            )?,
            refine_variants: opt_u64_field(
                v,
                "refine_variants",
                RefineConfig::default().variants as u64,
            )?,
            refine_extra_cycles: opt_u64_field(
                v,
                "refine_extra_cycles",
                RefineConfig::default().extra_cycles,
            )?,
            refine_max_absorb: opt_u64_field(
                v,
                "refine_max_absorb",
                RefineConfig::default().max_absorb as u64,
            )?,
            sim_backend,
        })
    }
}

/// One per-iteration progress event streamed back to clients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// Iteration number (0 = seed snapshot).
    pub iteration: u32,
    /// Open candidates at the start of the iteration.
    pub candidates: u64,
    /// Total proved assertions so far.
    pub proved_total: u64,
    /// Candidates refuted this iteration.
    pub refuted: u64,
    /// Input-space coverage of the proved assertions.
    pub input_space_coverage: f64,
    /// Total stimulus cycles accumulated.
    pub suite_cycles: u64,
}

impl ProgressEvent {
    /// Builds an event from an engine iteration report.
    pub fn from_report(r: &goldmine::IterationReport) -> Self {
        ProgressEvent {
            iteration: r.iteration,
            candidates: r.candidates as u64,
            proved_total: r.proved_total as u64,
            refuted: r.refuted as u64,
            input_space_coverage: r.input_space_coverage,
            suite_cycles: r.suite_cycles as u64,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("iteration", Json::UInt(self.iteration.into())),
            ("candidates", Json::UInt(self.candidates)),
            ("proved_total", Json::UInt(self.proved_total)),
            ("refuted", Json::UInt(self.refuted)),
            (
                "input_space_coverage",
                Json::Float(self.input_space_coverage),
            ),
            ("suite_cycles", Json::UInt(self.suite_cycles)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        Ok(ProgressEvent {
            iteration: u32_field(v, "iteration")?,
            candidates: u64_field(v, "candidates")?,
            proved_total: u64_field(v, "proved_total")?,
            refuted: u64_field(v, "refuted")?,
            input_space_coverage: field(v, "input_space_coverage")?
                .as_f64()
                .ok_or_else(|| ProtocolError("input_space_coverage must be a number".into()))?,
            suite_cycles: u64_field(v, "suite_cycles")?,
        })
    }
}

/// The final result of a served closure job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClosureSummary {
    /// Whether every target converged.
    pub converged: bool,
    /// Counterexample iterations performed.
    pub iterations: u32,
    /// Proved assertions, rendered as LTL.
    pub assertions: Vec<String>,
    /// Total stimulus cycles in the closing suite.
    pub suite_cycles: u64,
    /// Candidates assumed true on `Unknown` verdicts.
    pub unknown_assumed: u64,
    /// The full `Debug` render of the
    /// [`goldmine::ClosureOutcome`] — byte-identical to a standalone
    /// engine run's, which is how the differential suite audits the
    /// service across the socket.
    pub outcome_debug: String,
}

impl ClosureSummary {
    /// Builds the wire summary from an engine outcome.
    pub fn from_outcome(outcome: &goldmine::ClosureOutcome, module: &Module) -> Self {
        ClosureSummary {
            converged: outcome.converged,
            iterations: outcome.iteration_count(),
            assertions: outcome
                .assertions
                .iter()
                .map(|a| a.to_ltl(module))
                .collect(),
            suite_cycles: outcome.suite.total_cycles() as u64,
            unknown_assumed: outcome.unknown_assumed as u64,
            outcome_debug: format!("{outcome:?}"),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("converged", Json::Bool(self.converged)),
            ("iterations", Json::UInt(self.iterations.into())),
            (
                "assertions",
                Json::Arr(
                    self.assertions
                        .iter()
                        .map(|a| Json::Str(a.clone()))
                        .collect(),
                ),
            ),
            ("suite_cycles", Json::UInt(self.suite_cycles)),
            ("unknown_assumed", Json::UInt(self.unknown_assumed)),
            ("outcome_debug", Json::Str(self.outcome_debug.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        Ok(ClosureSummary {
            converged: bool_field(v, "converged")?,
            iterations: u32_field(v, "iterations")?,
            assertions: field(v, "assertions")?
                .as_arr()
                .ok_or_else(|| ProtocolError("assertions must be an array".into()))?
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ProtocolError("assertion must be a string".into()))
                })
                .collect::<Result<Vec<_>, _>>()?,
            suite_cycles: u64_field(v, "suite_cycles")?,
            unknown_assumed: u64_field(v, "unknown_assumed")?,
            outcome_debug: str_field(v, "outcome_debug")?.to_string(),
        })
    }
}

/// The lifecycle state of a served job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in a worker queue.
    Queued,
    /// A worker is running the closure loop.
    Running,
    /// Finished; a summary is available.
    Done,
    /// The engine failed; the status carries the error.
    Failed,
    /// Cancelled before or during the run.
    Cancelled,
}

impl JobState {
    /// The wire tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn from_str(s: &str) -> Result<Self, ProtocolError> {
        Ok(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            other => return Err(ProtocolError(format!("unknown job state '{other}'"))),
        })
    }
}

/// Upper bounds of the service latency-histogram buckets, as
/// `(nanoseconds, Prometheus le-label)` pairs. Shared by every
/// [`WireHistogram`] so bucket counts stay comparable across metrics;
/// the final implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_NS: [(u64, &str); 12] = [
    (1_000_000, "0.001"),
    (2_500_000, "0.0025"),
    (5_000_000, "0.005"),
    (10_000_000, "0.01"),
    (25_000_000, "0.025"),
    (50_000_000, "0.05"),
    (100_000_000, "0.1"),
    (250_000_000, "0.25"),
    (500_000_000, "0.5"),
    (1_000_000_000, "1"),
    (2_500_000_000, "2.5"),
    (5_000_000_000, "5"),
];

/// A fixed-bucket latency histogram in wire form.
///
/// Bucket bounds are the process-wide [`LATENCY_BUCKETS_NS`]; counts
/// are stored per bucket (not cumulative) plus one overflow slot, and
/// durations sum in integer nanoseconds, so snapshots stay exactly
/// comparable (`Eq`) and render to the Prometheus cumulative-`le` form
/// on demand.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireHistogram {
    /// Per-bucket observation counts aligned with
    /// [`LATENCY_BUCKETS_NS`]; the extra final slot counts observations
    /// above every bound (the `+Inf` bucket).
    pub buckets: Vec<u64>,
    /// Sum of every observed duration, in nanoseconds.
    pub sum_ns: u64,
}

impl Default for WireHistogram {
    fn default() -> Self {
        WireHistogram {
            buckets: vec![0; LATENCY_BUCKETS_NS.len() + 1],
            sum_ns: 0,
        }
    }
}

impl WireHistogram {
    /// Records one observed duration.
    pub fn observe_ns(&mut self, ns: u64) {
        let slot = LATENCY_BUCKETS_NS
            .iter()
            .position(|&(bound, _)| ns <= bound)
            .unwrap_or(LATENCY_BUCKETS_NS.len());
        self.buckets[slot] += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Total observations (the Prometheus `_count` sample).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The observed-duration sum in seconds (the `_sum` sample).
    pub fn sum_seconds(&self) -> f64 {
        self.sum_ns as f64 / 1e9
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "buckets",
                Json::Arr(self.buckets.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            ("sum_ns", Json::UInt(self.sum_ns)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        let buckets = field(v, "buckets")?
            .as_arr()
            .ok_or_else(|| ProtocolError("histogram buckets must be an array".into()))?
            .iter()
            .map(|c| {
                c.as_u64()
                    .ok_or_else(|| ProtocolError("histogram bucket must be an integer".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if buckets.len() != LATENCY_BUCKETS_NS.len() + 1 {
            return Err(ProtocolError(format!(
                "histogram must have {} buckets, got {}",
                LATENCY_BUCKETS_NS.len() + 1,
                buckets.len()
            )));
        }
        Ok(WireHistogram {
            buckets,
            sum_ns: u64_field(v, "sum_ns")?,
        })
    }
}

/// Upper bounds of the per-job retry-count histogram buckets, as
/// `(retries, le-label)` pairs; the final implicit bucket is `+Inf`.
/// Unit-less (counts, not durations) — most jobs land in the `0`
/// bucket, and anything past the `8` bound signals a retry storm.
pub const RETRY_BUCKETS: [(u64, &str); 5] = [(0, "0"), (1, "1"), (2, "2"), (4, "4"), (8, "8")];

/// A fixed-bucket histogram over small unit-less counts (per-job
/// retries), bucketed by [`RETRY_BUCKETS`]. Same storage discipline as
/// [`WireHistogram`]: per-bucket (non-cumulative) counts plus one
/// overflow slot, integer sum, rendered to the Prometheus
/// cumulative-`le` form on demand.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCountHistogram {
    /// Per-bucket observation counts aligned with [`RETRY_BUCKETS`];
    /// the extra final slot is the `+Inf` bucket.
    pub buckets: Vec<u64>,
    /// Sum of every observed value.
    pub sum: u64,
}

impl Default for WireCountHistogram {
    fn default() -> Self {
        WireCountHistogram {
            buckets: vec![0; RETRY_BUCKETS.len() + 1],
            sum: 0,
        }
    }
}

impl WireCountHistogram {
    /// Records one observed value.
    pub fn observe(&mut self, value: u64) {
        let slot = RETRY_BUCKETS
            .iter()
            .position(|&(bound, _)| value <= bound)
            .unwrap_or(RETRY_BUCKETS.len());
        self.buckets[slot] += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations (the Prometheus `_count` sample).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "buckets",
                Json::Arr(self.buckets.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            ("sum", Json::UInt(self.sum)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        let buckets = field(v, "buckets")?
            .as_arr()
            .ok_or_else(|| ProtocolError("histogram buckets must be an array".into()))?
            .iter()
            .map(|c| {
                c.as_u64()
                    .ok_or_else(|| ProtocolError("histogram bucket must be an integer".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if buckets.len() != RETRY_BUCKETS.len() + 1 {
            return Err(ProtocolError(format!(
                "count histogram must have {} buckets, got {}",
                RETRY_BUCKETS.len() + 1,
                buckets.len()
            )));
        }
        Ok(WireCountHistogram {
            buckets,
            sum: u64_field(v, "sum")?,
        })
    }
}

/// Aggregate service counters.
///
/// Snapshots are internally consistent — every field is read under one
/// acquisition of the service's state lock, so
/// `submitted == queued + running + completed + failed + cancelled`
/// holds in every snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs waiting in a worker queue right now (gauge).
    pub queued: u64,
    /// Jobs a worker is running right now (gauge).
    pub running: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed with an engine error.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Worker-pool size.
    pub workers: u64,
    /// Jobs a worker claimed from a peer's queue.
    pub steals: u64,
    /// Design-cache entries currently resident.
    pub cache_entries: u64,
    /// Submissions whose design was already cached.
    pub cache_hits: u64,
    /// Submissions that had to build design artifacts.
    pub cache_misses: u64,
    /// Cache entries evicted for any reason (the sum of the per-reason
    /// counters below).
    pub cache_evictions: u64,
    /// Cache entries evicted by the entry-count bound.
    pub cache_evictions_capacity: u64,
    /// Cache entries evicted LRU-first by the byte budget.
    pub cache_evictions_bytes: u64,
    /// Cache entries dropped on a content-key collision.
    pub cache_evictions_collision: u64,
    /// Approximate resident bytes of the cached design artifacts.
    pub cache_bytes: u64,
    /// The cache byte budget (0 = unbounded).
    pub cache_max_bytes: u64,
    /// Compiled instruction tapes built and parked into cache entries.
    pub compiled_built: u64,
    /// Submissions that reused a parked compiled tape instead of
    /// recompiling.
    pub compiled_reused: u64,
    /// SAT solver calls across every retired job's verification work.
    pub verify_sat_queries: u64,
    /// Property checks decided by the SAT engines.
    pub verify_sat_decided: u64,
    /// Property checks decided by explicit-state reachability.
    pub verify_explicit_queries: u64,
    /// Property results served from checker memos.
    pub verify_memo_hits: u64,
    /// Time frames newly encoded into unrollings.
    pub verify_frames_encoded: u64,
    /// Frames reused from warm unrollings.
    pub verify_frames_reused: u64,
    /// Counterexamples re-extracted on canonical unrollings.
    pub verify_cex_canonicalized: u64,
    /// Queue latency: submission to worker claim, per claimed job.
    pub queue_seconds: WireHistogram,
    /// Job wall time: worker claim to terminal state, per retired job.
    pub wall_seconds: WireHistogram,
    /// Worker panics caught by the job isolation boundary
    /// (`catch_unwind`) — each one cost a retry or a typed failure,
    /// never a wedged worker.
    pub worker_panics: u64,
    /// Retry attempts scheduled for retryable job failures.
    pub jobs_retried: u64,
    /// Jobs that failed because their deadline expired.
    pub jobs_deadline_exceeded: u64,
    /// Submissions refused by admission control (queue bounds).
    pub requests_shed: u64,
    /// Dead worker threads respawned by the supervisor.
    pub workers_respawned: u64,
    /// Per-retired-job retry counts (most jobs observe 0).
    pub job_retries: WireCountHistogram,
}

impl ServeStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("submitted", Json::UInt(self.submitted)),
            ("queued", Json::UInt(self.queued)),
            ("running", Json::UInt(self.running)),
            ("completed", Json::UInt(self.completed)),
            ("failed", Json::UInt(self.failed)),
            ("cancelled", Json::UInt(self.cancelled)),
            ("workers", Json::UInt(self.workers)),
            ("steals", Json::UInt(self.steals)),
            ("cache_entries", Json::UInt(self.cache_entries)),
            ("cache_hits", Json::UInt(self.cache_hits)),
            ("cache_misses", Json::UInt(self.cache_misses)),
            ("cache_evictions", Json::UInt(self.cache_evictions)),
            (
                "cache_evictions_capacity",
                Json::UInt(self.cache_evictions_capacity),
            ),
            (
                "cache_evictions_bytes",
                Json::UInt(self.cache_evictions_bytes),
            ),
            (
                "cache_evictions_collision",
                Json::UInt(self.cache_evictions_collision),
            ),
            ("cache_bytes", Json::UInt(self.cache_bytes)),
            ("cache_max_bytes", Json::UInt(self.cache_max_bytes)),
            ("compiled_built", Json::UInt(self.compiled_built)),
            ("compiled_reused", Json::UInt(self.compiled_reused)),
            ("verify_sat_queries", Json::UInt(self.verify_sat_queries)),
            ("verify_sat_decided", Json::UInt(self.verify_sat_decided)),
            (
                "verify_explicit_queries",
                Json::UInt(self.verify_explicit_queries),
            ),
            ("verify_memo_hits", Json::UInt(self.verify_memo_hits)),
            (
                "verify_frames_encoded",
                Json::UInt(self.verify_frames_encoded),
            ),
            (
                "verify_frames_reused",
                Json::UInt(self.verify_frames_reused),
            ),
            (
                "verify_cex_canonicalized",
                Json::UInt(self.verify_cex_canonicalized),
            ),
            ("queue_seconds", self.queue_seconds.to_json()),
            ("wall_seconds", self.wall_seconds.to_json()),
            ("worker_panics", Json::UInt(self.worker_panics)),
            ("jobs_retried", Json::UInt(self.jobs_retried)),
            (
                "jobs_deadline_exceeded",
                Json::UInt(self.jobs_deadline_exceeded),
            ),
            ("requests_shed", Json::UInt(self.requests_shed)),
            ("workers_respawned", Json::UInt(self.workers_respawned)),
            ("job_retries", self.job_retries.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        Ok(ServeStats {
            submitted: u64_field(v, "submitted")?,
            queued: u64_field(v, "queued")?,
            running: u64_field(v, "running")?,
            completed: u64_field(v, "completed")?,
            failed: u64_field(v, "failed")?,
            cancelled: u64_field(v, "cancelled")?,
            workers: u64_field(v, "workers")?,
            steals: u64_field(v, "steals")?,
            cache_entries: u64_field(v, "cache_entries")?,
            cache_hits: u64_field(v, "cache_hits")?,
            cache_misses: u64_field(v, "cache_misses")?,
            cache_evictions: u64_field(v, "cache_evictions")?,
            cache_evictions_capacity: u64_field(v, "cache_evictions_capacity")?,
            cache_evictions_bytes: u64_field(v, "cache_evictions_bytes")?,
            cache_evictions_collision: u64_field(v, "cache_evictions_collision")?,
            cache_bytes: u64_field(v, "cache_bytes")?,
            cache_max_bytes: u64_field(v, "cache_max_bytes")?,
            compiled_built: u64_field(v, "compiled_built")?,
            compiled_reused: u64_field(v, "compiled_reused")?,
            verify_sat_queries: u64_field(v, "verify_sat_queries")?,
            verify_sat_decided: u64_field(v, "verify_sat_decided")?,
            verify_explicit_queries: u64_field(v, "verify_explicit_queries")?,
            verify_memo_hits: u64_field(v, "verify_memo_hits")?,
            verify_frames_encoded: u64_field(v, "verify_frames_encoded")?,
            verify_frames_reused: u64_field(v, "verify_frames_reused")?,
            verify_cex_canonicalized: u64_field(v, "verify_cex_canonicalized")?,
            // Absent histograms are the pre-observability wire form.
            queue_seconds: match v.get("queue_seconds") {
                None | Some(Json::Null) => WireHistogram::default(),
                Some(other) => WireHistogram::from_json(other)?,
            },
            wall_seconds: match v.get("wall_seconds") {
                None | Some(Json::Null) => WireHistogram::default(),
                Some(other) => WireHistogram::from_json(other)?,
            },
            // Absent resilience counters are the pre-fault-injection
            // wire form.
            worker_panics: opt_u64_field(v, "worker_panics", 0)?,
            jobs_retried: opt_u64_field(v, "jobs_retried", 0)?,
            jobs_deadline_exceeded: opt_u64_field(v, "jobs_deadline_exceeded", 0)?,
            requests_shed: opt_u64_field(v, "requests_shed", 0)?,
            workers_respawned: opt_u64_field(v, "workers_respawned", 0)?,
            job_retries: match v.get("job_retries") {
                None | Some(Json::Null) => WireCountHistogram::default(),
                Some(other) => WireCountHistogram::from_json(other)?,
            },
        })
    }

    /// Renders the counters in the Prometheus text exposition format —
    /// the scrapeable answer to [`Request::Metrics`]. Counters get
    /// `# TYPE … counter`, point-in-time values (`queued`, `running`,
    /// `cache_entries`, `cache_bytes`, configuration bounds) get
    /// `gauge`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP gmserve_{name} {help}");
            let _ = writeln!(out, "# TYPE gmserve_{name} {kind}");
            let _ = writeln!(out, "gmserve_{name} {value}");
        };
        metric(
            "jobs_submitted_total",
            "counter",
            "Jobs accepted.",
            self.submitted,
        );
        metric(
            "jobs_queued",
            "gauge",
            "Jobs waiting in a worker queue.",
            self.queued,
        );
        metric(
            "jobs_running",
            "gauge",
            "Jobs currently running.",
            self.running,
        );
        metric(
            "jobs_completed_total",
            "counter",
            "Jobs finished successfully.",
            self.completed,
        );
        metric(
            "jobs_failed_total",
            "counter",
            "Jobs failed with an engine error.",
            self.failed,
        );
        metric(
            "jobs_cancelled_total",
            "counter",
            "Jobs cancelled.",
            self.cancelled,
        );
        metric("workers", "gauge", "Worker-pool size.", self.workers);
        metric(
            "steals_total",
            "counter",
            "Jobs claimed from a peer's queue.",
            self.steals,
        );
        metric(
            "cache_entries",
            "gauge",
            "Design-cache entries resident.",
            self.cache_entries,
        );
        metric(
            "cache_hits_total",
            "counter",
            "Submissions served from the design cache.",
            self.cache_hits,
        );
        metric(
            "cache_misses_total",
            "counter",
            "Submissions that built design artifacts.",
            self.cache_misses,
        );
        metric(
            "cache_evictions_total",
            "counter",
            "Cache entries evicted, any reason.",
            self.cache_evictions,
        );
        metric(
            "cache_evictions_capacity_total",
            "counter",
            "Cache entries evicted by the entry-count bound.",
            self.cache_evictions_capacity,
        );
        metric(
            "cache_evictions_bytes_total",
            "counter",
            "Cache entries evicted by the byte budget.",
            self.cache_evictions_bytes,
        );
        metric(
            "cache_evictions_collision_total",
            "counter",
            "Cache entries dropped on a key collision.",
            self.cache_evictions_collision,
        );
        metric(
            "cache_bytes",
            "gauge",
            "Approximate resident bytes of cached artifacts.",
            self.cache_bytes,
        );
        metric(
            "cache_max_bytes",
            "gauge",
            "Cache byte budget (0 = unbounded).",
            self.cache_max_bytes,
        );
        metric(
            "compiled_built_total",
            "counter",
            "Compiled tapes built and parked.",
            self.compiled_built,
        );
        metric(
            "compiled_reused_total",
            "counter",
            "Submissions that reused a parked compiled tape.",
            self.compiled_reused,
        );
        metric(
            "verify_sat_queries_total",
            "counter",
            "SAT solver calls across retired jobs.",
            self.verify_sat_queries,
        );
        metric(
            "verify_sat_decided_total",
            "counter",
            "Property checks decided by the SAT engines.",
            self.verify_sat_decided,
        );
        metric(
            "verify_explicit_queries_total",
            "counter",
            "Property checks decided by explicit-state reachability.",
            self.verify_explicit_queries,
        );
        metric(
            "verify_memo_hits_total",
            "counter",
            "Property results served from checker memos.",
            self.verify_memo_hits,
        );
        metric(
            "verify_frames_encoded_total",
            "counter",
            "Time frames newly encoded into unrollings.",
            self.verify_frames_encoded,
        );
        metric(
            "verify_frames_reused_total",
            "counter",
            "Frames reused from warm unrollings.",
            self.verify_frames_reused,
        );
        metric(
            "verify_cex_canonicalized_total",
            "counter",
            "Counterexamples re-extracted canonically.",
            self.verify_cex_canonicalized,
        );
        metric(
            "worker_panics_total",
            "counter",
            "Worker panics caught by the job isolation boundary.",
            self.worker_panics,
        );
        metric(
            "jobs_retried_total",
            "counter",
            "Retry attempts scheduled for retryable job failures.",
            self.jobs_retried,
        );
        metric(
            "jobs_deadline_exceeded_total",
            "counter",
            "Jobs failed because their deadline expired.",
            self.jobs_deadline_exceeded,
        );
        metric(
            "requests_shed_total",
            "counter",
            "Submissions refused by admission control.",
            self.requests_shed,
        );
        metric(
            "workers_respawned_total",
            "counter",
            "Dead worker threads respawned by the supervisor.",
            self.workers_respawned,
        );
        let mut histogram = |name: &str, help: &str, h: &WireHistogram| {
            let _ = writeln!(out, "# HELP gmserve_{name} {help}");
            let _ = writeln!(out, "# TYPE gmserve_{name} histogram");
            let mut cumulative = 0u64;
            for (&(_, label), count) in LATENCY_BUCKETS_NS.iter().zip(&h.buckets) {
                cumulative += count;
                let _ = writeln!(out, "gmserve_{name}_bucket{{le=\"{label}\"}} {cumulative}");
            }
            let total = h.count();
            let _ = writeln!(out, "gmserve_{name}_bucket{{le=\"+Inf\"}} {total}");
            let _ = writeln!(out, "gmserve_{name}_sum {}", h.sum_seconds());
            let _ = writeln!(out, "gmserve_{name}_count {total}");
        };
        histogram(
            "job_queue_seconds",
            "Time jobs spent queued before a worker claimed them.",
            &self.queue_seconds,
        );
        histogram(
            "job_wall_seconds",
            "Job wall time from worker claim to terminal state.",
            &self.wall_seconds,
        );
        // The retry histogram buckets counts, not durations, so it
        // renders from its own bounds rather than the latency bounds.
        {
            let h = &self.job_retries;
            let _ = writeln!(
                out,
                "# HELP gmserve_job_retries Retries per retired job (0 = first attempt succeeded)."
            );
            let _ = writeln!(out, "# TYPE gmserve_job_retries histogram");
            let mut cumulative = 0u64;
            for (&(_, label), count) in RETRY_BUCKETS.iter().zip(&h.buckets) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "gmserve_job_retries_bucket{{le=\"{label}\"}} {cumulative}"
                );
            }
            let total = h.count();
            let _ = writeln!(out, "gmserve_job_retries_bucket{{le=\"+Inf\"}} {total}");
            let _ = writeln!(out, "gmserve_job_retries_sum {}", h.sum);
            let _ = writeln!(out, "gmserve_job_retries_count {total}");
        }
        let _ = writeln!(
            out,
            "# HELP gmserve_build_info Build metadata; the value is always 1."
        );
        let _ = writeln!(out, "# TYPE gmserve_build_info gauge");
        let _ = writeln!(
            out,
            "gmserve_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        );
        out
    }
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a design (Verilog source) for closure.
    Submit {
        /// A label for reports.
        name: String,
        /// The Verilog source; parsed server-side and content-hashed
        /// into the design cache.
        source: String,
        /// The run configuration.
        config: WireConfig,
        /// Capture a per-job flight recording; fetch it with
        /// [`Request::Trace`] once the job is terminal. Absent on the
        /// wire = `false` — tracing never changes the outcome
        /// (`trace_agree` proves byte-identity), only whether the
        /// recording exists.
        trace: bool,
        /// Per-job deadline in milliseconds from submission. Absent or
        /// `null` on the wire = `None`, which resolves to the server's
        /// configured default; an explicit `0` disables the deadline
        /// for this job.
        deadline_ms: Option<u64>,
    },
    /// Poll a job's lifecycle state.
    Status {
        /// The job id.
        job: u64,
    },
    /// Fetch per-iteration progress events from index `from` on.
    Progress {
        /// The job id.
        job: u64,
        /// First event index wanted (enables incremental streaming).
        from: u64,
    },
    /// Block until the job finishes and return its summary.
    Wait {
        /// The job id.
        job: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job id.
        job: u64,
    },
    /// Fetch a terminal traced job's flight recording as Chrome
    /// trace-event JSON.
    Trace {
        /// The job id.
        job: u64,
    },
    /// Fetch aggregate service counters.
    Stats,
    /// Fetch the counters rendered in the Prometheus text exposition
    /// format (the scrapeable form of [`Request::Stats`]).
    Metrics,
    /// Ask the server to shut down cleanly.
    Shutdown,
}

impl Request {
    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit {
                name,
                source,
                config,
                trace,
                deadline_ms,
            } => Json::obj(vec![
                ("type", Json::Str("submit".into())),
                ("name", Json::Str(name.clone())),
                ("source", Json::Str(source.clone())),
                ("config", config.to_json()),
                ("trace", Json::Bool(*trace)),
                ("deadline_ms", deadline_ms.map_or(Json::Null, Json::UInt)),
            ]),
            Request::Status { job } => Json::obj(vec![
                ("type", Json::Str("status".into())),
                ("job", Json::UInt(*job)),
            ]),
            Request::Progress { job, from } => Json::obj(vec![
                ("type", Json::Str("progress".into())),
                ("job", Json::UInt(*job)),
                ("from", Json::UInt(*from)),
            ]),
            Request::Wait { job } => Json::obj(vec![
                ("type", Json::Str("wait".into())),
                ("job", Json::UInt(*job)),
            ]),
            Request::Cancel { job } => Json::obj(vec![
                ("type", Json::Str("cancel".into())),
                ("job", Json::UInt(*job)),
            ]),
            Request::Trace { job } => Json::obj(vec![
                ("type", Json::Str("trace".into())),
                ("job", Json::UInt(*job)),
            ]),
            Request::Stats => Json::obj(vec![("type", Json::Str("stats".into()))]),
            Request::Metrics => Json::obj(vec![("type", Json::Str("metrics".into()))]),
            Request::Shutdown => Json::obj(vec![("type", Json::Str("shutdown".into()))]),
        }
    }

    /// Deserializes from the wire JSON.
    ///
    /// # Errors
    ///
    /// Fails on unknown tags or missing fields.
    pub fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        match str_field(v, "type")? {
            "submit" => Ok(Request::Submit {
                name: str_field(v, "name")?.to_string(),
                source: str_field(v, "source")?.to_string(),
                config: WireConfig::from_json(field(v, "config")?)?,
                // Absent = untraced, the pre-observability wire form.
                trace: opt_bool_field(v, "trace", false)?,
                // Absent = server-default deadline; 0 = explicitly none.
                deadline_ms: match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(other) => Some(other.as_u64().ok_or_else(|| {
                        ProtocolError("field 'deadline_ms' must be an unsigned integer".into())
                    })?),
                },
            }),
            "status" => Ok(Request::Status {
                job: u64_field(v, "job")?,
            }),
            "progress" => Ok(Request::Progress {
                job: u64_field(v, "job")?,
                from: u64_field(v, "from")?,
            }),
            "wait" => Ok(Request::Wait {
                job: u64_field(v, "job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: u64_field(v, "job")?,
            }),
            "trace" => Ok(Request::Trace {
                job: u64_field(v, "job")?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError(format!("unknown request type '{other}'"))),
        }
    }
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A submission was accepted.
    Submitted {
        /// The assigned job id.
        job: u64,
        /// Whether the design's artifacts were already cached.
        cached: bool,
    },
    /// A status poll answer.
    Status {
        /// The job id.
        job: u64,
        /// Lifecycle state.
        state: JobState,
        /// Job label.
        name: String,
        /// Progress events recorded so far.
        progress_len: u64,
        /// The engine error, for failed jobs.
        error: Option<String>,
    },
    /// A progress slice.
    Progress {
        /// The job id.
        job: u64,
        /// Index of the first event in `events`.
        from: u64,
        /// The events.
        events: Vec<ProgressEvent>,
        /// Whether the job has reached a terminal state (no more events
        /// will follow).
        terminal: bool,
    },
    /// A finished job's summary (answer to `Wait`, or to `Status` once
    /// done if the client asks again — `Wait` is the blocking form).
    Done {
        /// The job id.
        job: u64,
        /// The result.
        summary: ClosureSummary,
    },
    /// A terminal traced job's flight recording.
    Trace {
        /// The job id.
        job: u64,
        /// Chrome trace-event JSON (load in Perfetto or
        /// `chrome://tracing`).
        trace: String,
    },
    /// Aggregate counters. Boxed: the stats block (histograms included)
    /// dwarfs every other variant.
    Stats(Box<ServeStats>),
    /// The counters in the Prometheus text exposition format.
    Metrics {
        /// The rendered metrics page.
        text: String,
    },
    /// The server acknowledges a shutdown request.
    ShuttingDown,
    /// Admission control refused a submission: the queue bound was hit.
    /// A typed response (not a generic `Error`) so clients can
    /// distinguish "back off and resubmit" from a request that will
    /// never succeed.
    Overloaded {
        /// Jobs queued at refusal time.
        queued: u64,
        /// The configured bound that was hit (depth or bytes, whichever
        /// tripped).
        limit: u64,
    },
    /// Any failure: unknown job, parse error, engine error, cancelled
    /// wait.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Response {
    /// Serializes to the wire JSON.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Submitted { job, cached } => Json::obj(vec![
                ("type", Json::Str("submitted".into())),
                ("job", Json::UInt(*job)),
                ("cached", Json::Bool(*cached)),
            ]),
            Response::Status {
                job,
                state,
                name,
                progress_len,
                error,
            } => Json::obj(vec![
                ("type", Json::Str("status".into())),
                ("job", Json::UInt(*job)),
                ("state", Json::Str(state.as_str().into())),
                ("name", Json::Str(name.clone())),
                ("progress_len", Json::UInt(*progress_len)),
                ("error", error.clone().map_or(Json::Null, Json::Str)),
            ]),
            Response::Progress {
                job,
                from,
                events,
                terminal,
            } => Json::obj(vec![
                ("type", Json::Str("progress".into())),
                ("job", Json::UInt(*job)),
                ("from", Json::UInt(*from)),
                (
                    "events",
                    Json::Arr(events.iter().map(ProgressEvent::to_json).collect()),
                ),
                ("terminal", Json::Bool(*terminal)),
            ]),
            Response::Done { job, summary } => Json::obj(vec![
                ("type", Json::Str("done".into())),
                ("job", Json::UInt(*job)),
                ("summary", summary.to_json()),
            ]),
            Response::Trace { job, trace } => Json::obj(vec![
                ("type", Json::Str("trace".into())),
                ("job", Json::UInt(*job)),
                ("trace", Json::Str(trace.clone())),
            ]),
            Response::Stats(stats) => Json::obj(vec![
                ("type", Json::Str("stats".into())),
                ("stats", stats.to_json()),
            ]),
            Response::Metrics { text } => Json::obj(vec![
                ("type", Json::Str("metrics".into())),
                ("text", Json::Str(text.clone())),
            ]),
            Response::ShuttingDown => Json::obj(vec![("type", Json::Str("shutting_down".into()))]),
            Response::Overloaded { queued, limit } => Json::obj(vec![
                ("type", Json::Str("overloaded".into())),
                ("queued", Json::UInt(*queued)),
                ("limit", Json::UInt(*limit)),
            ]),
            Response::Error { message } => Json::obj(vec![
                ("type", Json::Str("error".into())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }

    /// Deserializes from the wire JSON.
    ///
    /// # Errors
    ///
    /// Fails on unknown tags or missing fields.
    pub fn from_json(v: &Json) -> Result<Self, ProtocolError> {
        match str_field(v, "type")? {
            "submitted" => Ok(Response::Submitted {
                job: u64_field(v, "job")?,
                cached: bool_field(v, "cached")?,
            }),
            "status" => Ok(Response::Status {
                job: u64_field(v, "job")?,
                state: JobState::from_str(str_field(v, "state")?)?,
                name: str_field(v, "name")?.to_string(),
                progress_len: u64_field(v, "progress_len")?,
                error: match field(v, "error")? {
                    Json::Null => None,
                    other => Some(
                        other
                            .as_str()
                            .ok_or_else(|| ProtocolError("error must be a string".into()))?
                            .to_string(),
                    ),
                },
            }),
            "progress" => Ok(Response::Progress {
                job: u64_field(v, "job")?,
                from: u64_field(v, "from")?,
                events: field(v, "events")?
                    .as_arr()
                    .ok_or_else(|| ProtocolError("events must be an array".into()))?
                    .iter()
                    .map(ProgressEvent::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
                terminal: bool_field(v, "terminal")?,
            }),
            "done" => Ok(Response::Done {
                job: u64_field(v, "job")?,
                summary: ClosureSummary::from_json(field(v, "summary")?)?,
            }),
            "trace" => Ok(Response::Trace {
                job: u64_field(v, "job")?,
                trace: str_field(v, "trace")?.to_string(),
            }),
            "stats" => Ok(Response::Stats(Box::new(ServeStats::from_json(field(
                v, "stats",
            )?)?))),
            "metrics" => Ok(Response::Metrics {
                text: str_field(v, "text")?.to_string(),
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "overloaded" => Ok(Response::Overloaded {
                queued: u64_field(v, "queued")?,
                limit: u64_field(v, "limit")?,
            }),
            "error" => Ok(Response::Error {
                message: str_field(v, "message")?.to_string(),
            }),
            other => Err(ProtocolError(format!("unknown response type '{other}'"))),
        }
    }
}

/// Writes one length-prefixed frame: 4 bytes big-endian payload length,
/// then the JSON bytes.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> std::io::Result<()> {
    let bytes = payload.to_string().into_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"))?;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&bytes)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `None` on a clean EOF at a
/// frame boundary.
///
/// # Errors
///
/// Fails on truncated frames, oversized lengths, invalid UTF-8 or
/// malformed JSON.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Json>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    json::parse(&text)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let json = req.to_json();
        assert_eq!(Request::from_json(&json).unwrap(), req);
        // And through the framing.
        let mut buf = Vec::new();
        write_frame(&mut buf, &json).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(Request::from_json(&back).unwrap(), req);
    }

    #[test]
    fn requests_round_trip_through_frames() {
        round_trip_request(Request::Submit {
            name: "arbiter2".into(),
            source: "module m(input a, output y);\n  assign y = a;\nendmodule".into(),
            config: WireConfig::default().with_bit_targets(vec![("gnt0".into(), 0)]),
            trace: false,
            deadline_ms: None,
        });
        for sim_backend in [
            WireSimBackend::Interpreter,
            WireSimBackend::CompiledScalar,
            WireSimBackend::CompiledBatch,
            WireSimBackend::CompiledBatchWide(4),
        ] {
            round_trip_request(Request::Submit {
                name: "arbiter2".into(),
                source: "module m(input a, output y); assign y = a; endmodule".into(),
                config: WireConfig {
                    sim_backend,
                    ..WireConfig::default()
                },
                trace: false,
                deadline_ms: None,
            });
        }
        // A traced submission with the temporal/refine knobs engaged.
        round_trip_request(Request::Submit {
            name: "b09".into(),
            source: "module m(input a, output y); assign y = a; endmodule".into(),
            config: WireConfig {
                temporal_horizon: 3,
                refine_variants: 8,
                refine_extra_cycles: 24,
                refine_max_absorb: 4,
                ..WireConfig::default()
            },
            trace: true,
            deadline_ms: Some(30_000),
        });
        // An explicit 0 (deadline disabled) survives the wire distinct
        // from absent (server default).
        round_trip_request(Request::Submit {
            name: "nodeadline".into(),
            source: "module m(input a, output y); assign y = a; endmodule".into(),
            config: WireConfig::default(),
            trace: false,
            deadline_ms: Some(0),
        });
        round_trip_request(Request::Status { job: 7 });
        round_trip_request(Request::Progress { job: 7, from: 3 });
        round_trip_request(Request::Wait { job: u64::MAX });
        round_trip_request(Request::Cancel { job: 0 });
        round_trip_request(Request::Trace { job: 12 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Submitted {
                job: 3,
                cached: true,
            },
            Response::Status {
                job: 3,
                state: JobState::Running,
                name: "b09".into(),
                progress_len: 4,
                error: None,
            },
            Response::Progress {
                job: 3,
                from: 1,
                events: vec![ProgressEvent {
                    iteration: 1,
                    candidates: 12,
                    proved_total: 5,
                    refuted: 2,
                    input_space_coverage: 0.625,
                    suite_cycles: 96,
                }],
                terminal: false,
            },
            Response::Done {
                job: 3,
                summary: ClosureSummary {
                    converged: true,
                    iterations: 4,
                    assertions: vec!["req0 => X gnt0".into()],
                    suite_cycles: 128,
                    unknown_assumed: 0,
                    outcome_debug: "ClosureOutcome { .. }".into(),
                },
            },
            Response::Stats(Box::new(ServeStats {
                submitted: 9,
                queued: 1,
                running: 2,
                workers: 4,
                steals: 2,
                cache_hits: 5,
                cache_evictions_bytes: 3,
                compiled_reused: 4,
                verify_sat_queries: 17,
                queue_seconds: {
                    let mut h = WireHistogram::default();
                    h.observe_ns(40_000);
                    h.observe_ns(7_000_000);
                    h
                },
                wall_seconds: {
                    let mut h = WireHistogram::default();
                    h.observe_ns(800_000_000);
                    h.observe_ns(90_000_000_000);
                    h
                },
                ..ServeStats::default()
            })),
            Response::Trace {
                job: 3,
                trace: "{\"traceEvents\":[]}".into(),
            },
            Response::Metrics {
                text: ServeStats::default().to_prometheus(),
            },
            Response::ShuttingDown,
            Response::Overloaded {
                queued: 64,
                limit: 64,
            },
            Response::Error {
                message: "unknown job 99".into(),
            },
        ] {
            assert_eq!(Response::from_json(&resp.to_json()).unwrap(), resp);
        }
    }

    #[test]
    fn prometheus_rendering_exposes_every_counter_with_a_type_line() {
        let stats = ServeStats {
            submitted: 7,
            queued: 1,
            running: 2,
            completed: 3,
            cancelled: 1,
            cache_bytes: 4096,
            ..ServeStats::default()
        };
        let text = stats.to_prometheus();
        assert!(text.contains("# TYPE gmserve_jobs_submitted_total counter"));
        assert!(text.contains("gmserve_jobs_submitted_total 7"));
        assert!(text.contains("# TYPE gmserve_jobs_queued gauge"));
        assert!(text.contains("gmserve_jobs_queued 1"));
        assert!(text.contains("gmserve_jobs_running 2"));
        assert!(text.contains("gmserve_cache_bytes 4096"));
        assert!(text.contains("# TYPE gmserve_build_info gauge"));
        assert!(text.contains(&format!(
            "gmserve_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )));
        // Every sample line names a gmserve_ metric (optionally with a
        // {label="…"} set) and parses as `name value`, with the value a
        // finite number — the shape a promtool-style lint accepts.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample is `name value`");
            assert!(name.starts_with("gmserve_"), "bad metric line: {line}");
            if let Some(open) = name.find('{') {
                assert!(name.ends_with('}'), "unterminated label set: {line}");
                assert!(name[open + 1..].contains('='), "empty label set: {line}");
            }
            assert!(
                value.parse::<f64>().unwrap().is_finite(),
                "bad sample value: {line}"
            );
        }
        // Exactly one TYPE line per metric family.
        let mut families: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        let total = families.len();
        families.sort_unstable();
        families.dedup();
        assert_eq!(families.len(), total, "duplicate TYPE lines");
    }

    #[test]
    fn prometheus_histograms_render_cumulative_le_buckets() {
        let mut stats = ServeStats::default();
        stats.queue_seconds.observe_ns(500_000); // ≤ 0.001s
        stats.queue_seconds.observe_ns(2_000_000); // ≤ 0.0025s
        stats.queue_seconds.observe_ns(90_000_000_000); // overflow
        let text = stats.to_prometheus();
        assert!(text.contains("# TYPE gmserve_job_queue_seconds histogram"));
        assert!(text.contains("gmserve_job_queue_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("gmserve_job_queue_seconds_bucket{le=\"0.0025\"} 2"));
        // Cumulative counts carry through every later bound.
        assert!(text.contains("gmserve_job_queue_seconds_bucket{le=\"5\"} 2"));
        assert!(text.contains("gmserve_job_queue_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("gmserve_job_queue_seconds_count 3"));
        assert!(text.contains("gmserve_job_queue_seconds_sum 90.0025"));
        // The untouched histogram still renders a full (empty) family.
        assert!(text.contains("gmserve_job_wall_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("gmserve_job_wall_seconds_count 0"));
    }

    #[test]
    fn serve_stats_histograms_round_trip_and_tolerate_absence() {
        let mut stats = ServeStats {
            submitted: 2,
            completed: 2,
            ..ServeStats::default()
        };
        stats.queue_seconds.observe_ns(1_500_000);
        stats.wall_seconds.observe_ns(3_000_000_000);
        let back = ServeStats::from_json(&stats.to_json()).unwrap();
        assert_eq!(back, stats);
        // Pre-observability stats frames carry no histograms; they
        // resolve to empty ones, not an error.
        let mut json = stats.to_json();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "queue_seconds" && k != "wall_seconds");
        }
        let old = ServeStats::from_json(&json).unwrap();
        assert_eq!(old.queue_seconds, WireHistogram::default());
        assert_eq!(old.wall_seconds, WireHistogram::default());
        assert_eq!(old.submitted, 2);
    }

    #[test]
    fn resilience_counters_round_trip_and_tolerate_absence() {
        let mut stats = ServeStats {
            worker_panics: 3,
            jobs_retried: 5,
            jobs_deadline_exceeded: 1,
            requests_shed: 7,
            workers_respawned: 2,
            ..ServeStats::default()
        };
        stats.job_retries.observe(0);
        stats.job_retries.observe(2);
        stats.job_retries.observe(11); // overflow bucket
        let back = ServeStats::from_json(&stats.to_json()).unwrap();
        assert_eq!(back, stats);
        // Pre-fault-injection stats frames carry none of the resilience
        // fields; they resolve to zeros, not an error.
        let mut json = stats.to_json();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "worker_panics"
                        | "jobs_retried"
                        | "jobs_deadline_exceeded"
                        | "requests_shed"
                        | "workers_respawned"
                        | "job_retries"
                )
            });
        }
        let old = ServeStats::from_json(&json).unwrap();
        assert_eq!(old.worker_panics, 0);
        assert_eq!(old.requests_shed, 0);
        assert_eq!(old.job_retries, WireCountHistogram::default());
    }

    #[test]
    fn prometheus_renders_the_resilience_family_with_retry_buckets() {
        let mut stats = ServeStats {
            worker_panics: 2,
            jobs_retried: 4,
            jobs_deadline_exceeded: 1,
            requests_shed: 3,
            workers_respawned: 1,
            ..ServeStats::default()
        };
        stats.job_retries.observe(0);
        stats.job_retries.observe(0);
        stats.job_retries.observe(3); // lands in the le="4" bucket
        let text = stats.to_prometheus();
        assert!(text.contains("# TYPE gmserve_worker_panics_total counter"));
        assert!(text.contains("gmserve_worker_panics_total 2"));
        assert!(text.contains("gmserve_jobs_retried_total 4"));
        assert!(text.contains("gmserve_jobs_deadline_exceeded_total 1"));
        assert!(text.contains("gmserve_requests_shed_total 3"));
        assert!(text.contains("gmserve_workers_respawned_total 1"));
        assert!(text.contains("# TYPE gmserve_job_retries histogram"));
        assert!(text.contains("gmserve_job_retries_bucket{le=\"0\"} 2"));
        assert!(text.contains("gmserve_job_retries_bucket{le=\"2\"} 2"));
        assert!(text.contains("gmserve_job_retries_bucket{le=\"4\"} 3"));
        assert!(text.contains("gmserve_job_retries_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("gmserve_job_retries_sum 3"));
        assert!(text.contains("gmserve_job_retries_count 3"));
    }

    #[test]
    fn temporal_and_refine_knobs_absent_from_the_wire_default_off() {
        // Pre-observability clients never sent the knobs; their frames
        // must resolve to the engine defaults they always ran with.
        let mut json = WireConfig::default().to_json();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| !k.starts_with("temporal_") && !k.starts_with("refine_"));
        }
        let back = WireConfig::from_json(&json).unwrap();
        assert_eq!(back, WireConfig::default());
        let m =
            gm_rtl::parse_verilog("module m(input a, output y); assign y = a; endmodule").unwrap();
        let engine = back.to_engine(&m).unwrap();
        assert_eq!(engine.temporal, TemporalConfig::default());
        assert_eq!(engine.refine, RefineConfig::default());
        // And a submit frame without the trace flag is untraced.
        let req = Json::obj(vec![
            ("type", Json::Str("submit".into())),
            ("name", Json::Str("m".into())),
            ("source", Json::Str("module m; endmodule".into())),
            ("config", WireConfig::default().to_json()),
        ]);
        match Request::from_json(&req).unwrap() {
            Request::Submit {
                trace, deadline_ms, ..
            } => {
                assert!(!trace);
                assert_eq!(
                    deadline_ms, None,
                    "absent deadline resolves to the server default"
                );
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn wire_temporal_and_refine_knobs_reach_the_engine_config() {
        let m =
            gm_rtl::parse_verilog("module m(input a, output y); assign y = a; endmodule").unwrap();
        let wire = WireConfig {
            temporal_horizon: 2,
            refine_variants: 6,
            refine_extra_cycles: 32,
            refine_max_absorb: 3,
            record_coverage: true,
            ..WireConfig::default()
        };
        let engine = wire.to_engine(&m).unwrap();
        assert_eq!(engine.temporal.horizon, 2);
        assert_eq!(engine.refine.variants, 6);
        assert_eq!(engine.refine.extra_cycles, 32);
        assert_eq!(engine.refine.max_absorb, 3);
        // And the round trip through from_engine preserves them.
        assert_eq!(WireConfig::from_engine(&engine).unwrap(), wire);
    }

    #[test]
    fn wire_config_resolves_to_the_standalone_engine_config() {
        let m = gm_rtl::parse_verilog(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk) if (rst) q <= 0; else q <= d;
             endmodule",
        )
        .unwrap();
        let wire = WireConfig::default().with_bit_targets(vec![("q".into(), 0)]);
        let engine = wire.to_engine(&m).unwrap();
        let q = m.require("q").unwrap();
        assert_eq!(engine.targets, TargetSelection::Bits(vec![(q, 0)]));
        assert_eq!(engine.seed, EngineConfig::default().seed);
        // Unknown signal names are rejected, not silently dropped.
        let bad = WireConfig::default().with_bit_targets(vec![("nope".into(), 0)]);
        assert!(bad.to_engine(&m).is_err());
    }

    #[test]
    fn sim_backend_absent_from_the_wire_defaults_to_batch() {
        // Pre-wide-lane clients never sent the field; their frames must
        // keep resolving to the backend they always ran (the default
        // 64-lane batch), not error out.
        let mut json = WireConfig::default().to_json();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "sim_backend");
        }
        let back = WireConfig::from_json(&json).unwrap();
        assert_eq!(back.sim_backend, WireSimBackend::CompiledBatch);
        assert_eq!(back, WireConfig::default());
        // Out-of-range lane blocks are rejected loudly.
        let wide = |w: u64| {
            let mut json = WireConfig::default().to_json();
            if let Json::Obj(fields) = &mut json {
                for (k, v) in fields.iter_mut() {
                    if k == "sim_backend" {
                        *v = Json::Arr(vec![Json::Str("wide".into()), Json::UInt(w)]);
                    }
                }
            }
            WireConfig::from_json(&json)
        };
        assert_eq!(
            wide(8).unwrap().sim_backend,
            WireSimBackend::CompiledBatchWide(8)
        );
        assert!(wide(0).is_err());
        assert!(wide(9).is_err());
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::UInt(1)).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_frame(&mut buf.as_slice()).is_err());
        let huge = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        assert!(read_frame(&mut huge.as_slice()).is_err());
        // Clean EOF at a boundary is not an error.
        assert_eq!(read_frame(&mut [].as_slice()).unwrap(), None);
    }
}
