//! A minimal JSON value, writer and parser.
//!
//! The build environment vendors `serde` as a no-op shim (see
//! `vendor/README.md`), so the wire protocol carries its own tiny JSON
//! implementation: exactly the subset the protocol emits — objects with
//! ordered keys, arrays, strings, booleans, `null`, unsigned/signed
//! integers and floats. The writer and parser round-trip each other
//! (property-checked in the tests below); numbers that fit `u64`/`i64`
//! stay exact, so job ids and RNG seeds never lose precision.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (ids, counters, seeds — kept exact).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (deterministic wire bytes).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Float(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(n) => {
                if n.is_finite() {
                    let mut text = format!("{n}");
                    // `Display` omits the point for integral floats;
                    // keep the token a float so parsing round-trips.
                    if !text.contains(['.', 'e', 'E']) {
                        text.push_str(".0");
                    }
                    out.push_str(&text);
                } else {
                    // JSON has no NaN/Inf; the protocol never sends them.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to the canonical compact form (`to_string` comes with).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Deepest container nesting the parser accepts. Frames come from
/// untrusted sockets: recursion must be bounded well below the thread
/// stack (the protocol itself nests a handful of levels).
const MAX_DEPTH: usize = 128;

/// Parses one JSON value (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let result = self.array_inner();
        self.depth -= 1;
        result
    }

    fn array_inner(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let result = self.object_inner();
        self.depth -= 1;
        result
    }

    fn object_inner(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                            // hex4 leaves pos on the last hex digit's
                            // successor - 1; see hex4.
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is a &str, so the
                    // bytes are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits after a `\u`, leaving `pos` on the last
    /// digit (the caller's shared `pos += 1` steps past it).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let start = self.pos + 1;
        if start + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..start + 4])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = start + 3;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_shape() {
        let v = Json::obj(vec![
            ("id", Json::UInt(u64::MAX)),
            ("neg", Json::Int(-42)),
            ("ratio", Json::Float(0.625)),
            ("whole", Json::Float(3.0)),
            ("name", Json::Str("a \"b\"\\\n\tc — π".to_string())),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "list",
                Json::Arr(vec![
                    Json::UInt(1),
                    Json::Str(String::new()),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(
            parse(r#""a\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("aAé😀".to_string())
        );
    }

    #[test]
    fn u64_precision_survives() {
        let seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let text = Json::UInt(seed).to_string();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Well under MAX_FRAME_BYTES but far beyond any sane document:
        // must error, not blow the connection thread's stack.
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // A document at a reasonable depth still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"\\x\"",
            "1 2",
            // Lone / mismatched surrogates must error, not underflow.
            r#""\ud83d""#,
            r#""\ud83dx""#,
            r#""\ud83d\u0041""#,
            r#""\udc00""#,
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
