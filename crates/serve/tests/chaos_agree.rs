//! Chaos-agreement suite: under seeded fault injection every served
//! job either completes with a [`goldmine::ClosureOutcome`]
//! *byte-identical* to a fault-free run, or fails with a typed,
//! documented [`JobError`] — never a hang, never a corrupted result.
//!
//! Each test doubles as the falsification-power gate: it asserts that
//! every fault point it armed actually *fired* (`FaultGuard::fired`),
//! so a refactor that silently unwires an injection site fails CI here
//! instead of making the chaos sweep vacuously green.
//!
//! Fault arming is process-global, so every test in this binary holds
//! the `CHAOS` mutex for its whole body (CI additionally runs this
//! binary with `--test-threads=1`).

use gm_serve::{
    ClosureService, JobError, JobState, Request, Response, RetryPolicy, ServeConfig, ServeError,
    SubmitOptions, WireConfig,
};
use goldmine::{Engine, EngineConfig, SeedStimulus, ShardPolicy, TargetSelection, UnknownPolicy};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes the whole suite: fault plans are process-global.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Immediate retries with headroom for every capped fault in a sweep
/// landing on the same job.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_ms: 0,
        max_ms: 0,
    }
}

/// Fast bounded catalog designs for the sweep (the agreement property
/// needs real engine runs, not big ones).
fn sweep_jobs() -> Vec<(String, gm_rtl::Module, EngineConfig)> {
    ["cex_small", "arbiter2", "b01", "b02", "b09"]
        .iter()
        .map(|name| {
            let d = gm_designs::by_name(name).expect("bundled design");
            let module = d.module();
            let targets: Vec<_> = module
                .outputs()
                .into_iter()
                .filter(|&s| module.signal_width(s) == 1)
                .map(|s| (s, 0))
                .take(2)
                .collect();
            let config = EngineConfig {
                window: d.window,
                stimulus: SeedStimulus::Random { cycles: 32 },
                targets: TargetSelection::Bits(targets),
                backend: gm_mc::Backend::Auto,
                max_iterations: 10,
                unknown: UnknownPolicy::AssumeTrue,
                record_coverage: false,
                ..EngineConfig::default()
            };
            (d.name.to_string(), module, config)
        })
        .collect()
}

fn tiny_module() -> gm_rtl::Module {
    gm_rtl::parse_verilog("module t(input a, input b, output y); assign y = a & b; endmodule")
        .unwrap()
}

fn tiny_config() -> EngineConfig {
    EngineConfig {
        window: 0,
        stimulus: SeedStimulus::Random { cycles: 8 },
        record_coverage: false,
        ..EngineConfig::default()
    }
}

/// A 16-bit counter whose sole q[15] counterexample sits ~32768 frames
/// deep: one BMC dispatch scans tens of thousands of window starts, so
/// uncancelled the job runs for minutes — the shape that proves
/// deadlines and drains interrupt *mid-iteration*, not at boundaries.
fn slow_job() -> (gm_rtl::Module, EngineConfig) {
    let m = gm_rtl::parse_verilog(
        "module cnt16(input clk, input rst, output reg [15:0] q);
           always @(posedge clk) if (rst) q <= 0; else q <= q + 1;
         endmodule",
    )
    .unwrap();
    let q = m.require("q").unwrap();
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Random { cycles: 32 },
        targets: TargetSelection::Bits(vec![(q, 15)]),
        backend: gm_mc::Backend::Bmc { bound: 50_000 },
        max_iterations: 2,
        record_coverage: false,
        shards: ShardPolicy::Off,
        ..EngineConfig::default()
    };
    (m, config)
}

fn poll_until(
    service: &ClosureService,
    job: u64,
    timeout: Duration,
    pred: impl Fn(&gm_serve::JobStatus) -> bool,
) {
    let start = Instant::now();
    loop {
        if let Some(status) = service.status(job) {
            if pred(&status) {
                return;
            }
        }
        assert!(
            start.elapsed() < timeout,
            "condition not reached within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The tentpole property: ≥8 seeded fault plans over a catalog of real
/// designs, with worker panics, poisoned cache checkouts and transient
/// SAT faults all armed — every job must retire `Done` with an outcome
/// byte-identical to its fault-free baseline, and every armed point
/// must have fired at least once across the sweep.
#[test]
fn seeded_fault_sweeps_preserve_outcomes_byte_for_byte() {
    let _guard = chaos_lock();
    let jobs = sweep_jobs();
    // Fault-free baselines, computed while nothing is armed.
    let baselines: Vec<String> = jobs
        .iter()
        .map(|(_, module, config)| {
            let outcome = Engine::new(module, config.clone()).unwrap().run().unwrap();
            format!("{outcome:?}")
        })
        .collect();

    let (mut panics, mut checkouts, mut flakies) = (0u64, 0u64, 0u64);
    let mut total_retried = 0u64;
    for seed in 0..8u64 {
        // Full-rate capped points fire deterministically on their first
        // evaluations; the seed varies the plan's budgets, so different
        // sweeps exercise different fault mixes. Worst case every fire
        // lands on one job: 2 + 1 + 3 = 6 retries, within the budget.
        let plan = gm_fault::FaultPlan::new(seed)
            .point_limited("worker.panic", gm_fault::PPM, 1 + seed % 2)
            .point_limited("cache.checkout_fail", gm_fault::PPM, 1)
            .point_limited("sat.flaky", gm_fault::PPM, 1 + seed % 3);
        let guard = gm_fault::arm(plan);
        let service = ClosureService::new(ServeConfig {
            workers: 2,
            retry: chaos_retry(),
            ..ServeConfig::default()
        });
        let ids: Vec<u64> = jobs
            .iter()
            .map(|(name, module, config)| {
                service
                    .submit_module(name, module.clone(), config.clone())
                    .unwrap()
                    .0
            })
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                service.wait(*id),
                Some(JobState::Done),
                "seed {seed}: job {} must survive the fault plan",
                jobs[i].0
            );
            let outcome = service.take_outcome(*id).unwrap().unwrap();
            assert_eq!(
                format!("{outcome:?}"),
                baselines[i],
                "seed {seed}: job {} diverged from its fault-free baseline",
                jobs[i].0
            );
        }
        let stats = service.stats();
        let fired_this_seed = guard.fired("worker.panic")
            + guard.fired("cache.checkout_fail")
            + guard.fired("sat.flaky");
        assert!(
            stats.jobs_retried >= fired_this_seed.min(1),
            "seed {seed}: fired faults must show up as retries"
        );
        assert_eq!(
            stats.worker_panics,
            guard.fired("worker.panic"),
            "seed {seed}: every injected panic is counted"
        );
        total_retried += stats.jobs_retried;
        panics += guard.fired("worker.panic");
        checkouts += guard.fired("cache.checkout_fail");
        flakies += guard.fired("sat.flaky");
        service.shutdown();
    }

    // Falsification power: a sweep in which a declared point never
    // fired proves nothing about that fault path.
    assert!(panics >= 1, "worker.panic never fired across the sweep");
    assert!(
        checkouts >= 1,
        "cache.checkout_fail never fired across the sweep"
    );
    assert!(flakies >= 1, "sat.flaky never fired across the sweep");
    assert!(total_retried >= 1, "no job was ever retried");
}

/// `sat.stall` wedges a SAT dispatch until the cancel token rises: the
/// per-job deadline must cut the stalled run loose mid-iteration with
/// the typed error, and the worker must come back healthy.
#[test]
fn deadlines_cut_stalled_jobs_loose_with_the_typed_error() {
    let _guard = chaos_lock();
    let service = ClosureService::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let d = gm_designs::by_name("arbiter2").unwrap();
    let module = d.module();
    let gnt0 = module.require("gnt0").unwrap();
    let config = EngineConfig {
        window: d.window,
        stimulus: SeedStimulus::Random { cycles: 32 },
        targets: TargetSelection::Bits(vec![(gnt0, 0)]),
        record_coverage: false,
        ..EngineConfig::default()
    };

    let fault =
        gm_fault::arm(gm_fault::FaultPlan::new(7).point_limited("sat.stall", gm_fault::PPM, 1));
    let submitted_at = Instant::now();
    let (job, _) = service
        .submit_module_opts(
            "stalled",
            module,
            config,
            SubmitOptions {
                deadline_ms: Some(500),
                ..SubmitOptions::default()
            },
        )
        .unwrap();
    assert_eq!(service.wait(job), Some(JobState::Failed));
    let latency = submitted_at.elapsed();
    assert!(
        latency < Duration::from_secs(15),
        "deadline enforcement took {latency:?}"
    );
    match service.take_outcome(job).unwrap() {
        Err(JobError::DeadlineExceeded { deadline_ms: 500 }) => {}
        other => panic!("expected the typed deadline error, got {other:?}"),
    }
    let status = service.status(job).unwrap();
    assert_eq!(
        status.error.as_deref(),
        Some("deadline exceeded after 500ms")
    );
    assert_eq!(service.stats().jobs_deadline_exceeded, 1);
    assert_eq!(fault.fired("sat.stall"), 1, "the stall must have fired");
    drop(fault);

    // The worker survived the stalled job and keeps serving.
    let (next, _) = service
        .submit_module("after-stall", tiny_module(), tiny_config())
        .unwrap();
    assert_eq!(service.wait(next), Some(JobState::Done));
    service.shutdown();
}

/// A queued job whose deadline expires before any worker claims it is
/// retired by the supervisor with the same typed error — no worker
/// time is spent on work nobody can use.
#[test]
fn queued_jobs_expire_at_their_deadline_without_running() {
    let _guard = chaos_lock();
    let service = ClosureService::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let (slow_module, slow_config) = slow_job();
    let (slow, _) = service
        .submit_module("hog", slow_module, slow_config)
        .unwrap();
    poll_until(&service, slow, Duration::from_secs(30), |s| {
        s.state == JobState::Running
    });
    let (victim, _) = service
        .submit_module_opts(
            "expiring",
            tiny_module(),
            tiny_config(),
            SubmitOptions {
                deadline_ms: Some(200),
                ..SubmitOptions::default()
            },
        )
        .unwrap();
    assert_eq!(service.wait(victim), Some(JobState::Failed));
    match service.take_outcome(victim).unwrap() {
        Err(JobError::DeadlineExceeded { deadline_ms: 200 }) => {}
        other => panic!("expected the typed deadline error, got {other:?}"),
    }
    assert_eq!(service.stats().jobs_deadline_exceeded, 1);
    assert!(service.cancel(slow));
    assert_eq!(service.wait(slow), Some(JobState::Cancelled));
    service.shutdown();
}

/// Admission control: past the queue bound, submissions are shed with
/// the explicit typed refusal — in-process and over the wire — and the
/// shed counter moves. Shed requests never become jobs.
#[test]
fn overload_sheds_submissions_with_the_typed_refusal() {
    let _guard = chaos_lock();
    let service = ClosureService::new(ServeConfig {
        workers: 1,
        max_queued: 1,
        ..ServeConfig::default()
    });
    let (slow_module, slow_config) = slow_job();
    let (slow, _) = service
        .submit_module("hog", slow_module, slow_config)
        .unwrap();
    poll_until(&service, slow, Duration::from_secs(30), |s| {
        s.state == JobState::Running
    });
    // The queue takes exactly one job; the next submission is shed.
    let (queued, _) = service
        .submit_module("queued", tiny_module(), tiny_config())
        .unwrap();
    match service.submit_module("shed", tiny_module(), tiny_config()) {
        Err(ServeError::Overloaded {
            queued: 1,
            limit: 1,
        }) => {}
        other => panic!("expected the typed overload refusal, got {other:?}"),
    }
    // The wire dispatcher maps the refusal to its own response tag.
    match service.handle_request(&Request::Submit {
        name: "shed-wire".into(),
        source: "module w(input a, output y); assign y = ~a; endmodule".into(),
        config: WireConfig::default(),
        trace: false,
        deadline_ms: None,
    }) {
        Response::Overloaded {
            queued: 1,
            limit: 1,
        } => {}
        other => panic!("expected the wire overload response, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.requests_shed, 2);
    assert_eq!(
        stats.submitted, 2,
        "shed requests are never counted as submitted"
    );
    assert!(service.cancel(slow));
    assert_eq!(service.wait(slow), Some(JobState::Cancelled));
    assert_eq!(service.wait(queued), Some(JobState::Done));
    service.shutdown();
}

/// `worker.exit` kills a worker thread outright; the supervisor must
/// respawn the slot and the queued work must still complete.
#[test]
fn the_supervisor_respawns_dead_workers() {
    let _guard = chaos_lock();
    let fault =
        gm_fault::arm(gm_fault::FaultPlan::new(3).point_limited("worker.exit", gm_fault::PPM, 1));
    // The single worker dies on its first loop pass, before it can
    // claim anything; the job below completes only if the supervisor
    // brings the slot back.
    let service = ClosureService::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let (job, _) = service
        .submit_module("survivor", tiny_module(), tiny_config())
        .unwrap();
    assert_eq!(service.wait(job), Some(JobState::Done));
    assert_eq!(fault.fired("worker.exit"), 1, "the exit must have fired");
    assert!(
        service.stats().workers_respawned >= 1,
        "the supervisor must have respawned the dead worker"
    );
    drop(fault);
    service.shutdown();
}

/// Graceful drain is *bounded*: with a drain timeout configured,
/// shutdown cancels whatever outlives it instead of hanging on a job
/// with minutes left to run.
#[test]
fn shutdown_drain_is_bounded_by_the_drain_timeout() {
    let _guard = chaos_lock();
    let service = ClosureService::new(ServeConfig {
        workers: 1,
        drain_timeout_ms: 300,
        ..ServeConfig::default()
    });
    let (slow_module, slow_config) = slow_job();
    let (slow, _) = service
        .submit_module("hog", slow_module, slow_config)
        .unwrap();
    poll_until(&service, slow, Duration::from_secs(30), |s| {
        s.state == JobState::Running
    });
    let shutdown_at = Instant::now();
    service.shutdown();
    let elapsed = shutdown_at.elapsed();
    assert!(
        elapsed < Duration::from_secs(15),
        "bounded drain took {elapsed:?}"
    );
    assert_eq!(
        service.status(slow).unwrap().state,
        JobState::Cancelled,
        "the job that outlived the drain is cancelled, not lost"
    );
}

/// Network faults stay scoped to one connection: an injected abrupt
/// disconnect or a torn response frame surfaces as a clean client
/// error (never a hang or a desynced stream), and the next connection
/// is served normally.
#[test]
fn net_faults_end_one_connection_cleanly_and_spare_the_rest() {
    let _guard = chaos_lock();
    let path = std::env::temp_dir().join(format!("gm-serve-chaos-{}.sock", std::process::id()));
    let listener = gm_serve::bind_unix(&path).unwrap();
    let service = std::sync::Arc::new(ClosureService::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    }));
    let server = {
        let service = service.clone();
        std::thread::spawn(move || gm_serve::serve_unix(service, listener))
    };

    // Abrupt disconnect: the server drops the connection between a
    // request and its response; the client sees a clean EOF error.
    let fault = gm_fault::arm(gm_fault::FaultPlan::new(11).point_limited(
        "net.disconnect",
        gm_fault::PPM,
        1,
    ));
    let mut victim = gm_serve::ServeClient::connect(&path).unwrap();
    let err = victim
        .stats()
        .expect_err("the injected disconnect must error out");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    assert_eq!(fault.fired("net.disconnect"), 1);
    drop(fault);

    // Torn response frame: the length prefix promises more bytes than
    // arrive; the client's frame reader reports the truncation instead
    // of waiting forever.
    let fault = gm_fault::arm(gm_fault::FaultPlan::new(12).point_limited(
        "net.frame_truncate",
        gm_fault::PPM,
        1,
    ));
    let mut victim = gm_serve::ServeClient::connect(&path).unwrap();
    let err = victim
        .stats()
        .expect_err("the injected truncation must error out");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    assert_eq!(fault.fired("net.frame_truncate"), 1);
    drop(fault);

    // Fresh connections are untouched: a full submit→wait round trip.
    let mut client = gm_serve::ServeClient::connect(&path).unwrap();
    let (job, _) = client
        .submit(
            "after-faults",
            "module a(input x, output y); assign y = ~x; endmodule",
            &WireConfig::default(),
        )
        .unwrap();
    let summary = client.wait(job).unwrap();
    assert!(summary.converged);
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&path);
}
