//! Operational guarantees of the closure service: cancellation frees a
//! worker *mid-iteration* (not at the next iteration boundary), the
//! design cache honors its byte budget with LRU-first victims, and
//! concurrent metrics scrapes always see an internally consistent
//! snapshot.

use gm_mc::Checker;
use gm_serve::cache::{canonical_form, DesignCache};
use gm_serve::{ClosureService, JobState, Request, Response, ServeConfig};
use goldmine::{EngineConfig, SeedStimulus, ShardPolicy, TargetSelection};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tiny fast-converging job for worker-liveness probes.
fn tiny_job() -> (gm_rtl::Module, EngineConfig) {
    let m = gm_rtl::parse_verilog(
        "module and2(input a, input b, output y); assign y = a & b; endmodule",
    )
    .unwrap();
    let config = EngineConfig {
        window: 0,
        stimulus: SeedStimulus::Random { cycles: 4 },
        max_iterations: 4,
        record_coverage: false,
        shards: ShardPolicy::Off,
        ..EngineConfig::default()
    };
    (m, config)
}

/// Polls `status` until `pred` holds (or panics after `timeout`).
fn poll_until(
    service: &ClosureService,
    job: u64,
    timeout: Duration,
    pred: impl Fn(&gm_serve::JobStatus) -> bool,
) {
    let start = Instant::now();
    loop {
        let status = service.status(job).expect("job exists");
        if pred(&status) {
            return;
        }
        assert!(
            start.elapsed() < timeout,
            "job {job} never reached the polled state (stuck at {:?})",
            status.state
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Cancelling a job whose single iteration would run for minutes must
/// free the worker within the SAT-query poll interval, not at the next
/// iteration boundary — and the truncated outcome must say so.
#[test]
fn cancellation_frees_the_worker_mid_iteration() {
    let service = ClosureService::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });

    // A 16-bit counter whose random traces never raise q[15]: mining
    // yields "q[15] stays 0" candidates whose sole counterexample sits
    // ~32768 frames deep, so one BMC dispatch scans tens of thousands
    // of window starts. Uncancelled, this iteration runs for minutes.
    let m = gm_rtl::parse_verilog(
        "module cnt16(input clk, input rst, output reg [15:0] q);
           always @(posedge clk) if (rst) q <= 0; else q <= q + 1;
         endmodule",
    )
    .unwrap();
    let q = m.require("q").unwrap();
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Random { cycles: 32 },
        targets: TargetSelection::Bits(vec![(q, 15)]),
        backend: gm_mc::Backend::Bmc { bound: 50_000 },
        max_iterations: 2,
        record_coverage: false,
        shards: ShardPolicy::Off,
        ..EngineConfig::default()
    };
    let (job, _) = service.submit_module("cnt16", m, config).unwrap();

    // Wait for the slow verification pass: the iteration-0 snapshot has
    // been reported (progress_len >= 1) and the worker is inside the
    // BMC dispatch of iteration 1.
    poll_until(&service, job, Duration::from_secs(30), |s| {
        s.state == JobState::Running && s.progress_len >= 1
    });
    std::thread::sleep(Duration::from_millis(300));

    let cancelled_at = Instant::now();
    assert!(service.cancel(job), "running jobs are cancellable");
    assert_eq!(service.wait(job), Some(JobState::Cancelled));
    let latency = cancelled_at.elapsed();
    assert!(
        latency < Duration::from_secs(15),
        "cancel took {latency:?} — the worker waited for the iteration instead of \
         stopping at the next in-iteration poll point"
    );

    // The truncated outcome is still a valid outcome, and it records
    // that the run was interrupted mid-iteration (a plain boundary
    // stop leaves `interrupted` false).
    let outcome = service
        .take_outcome(job)
        .expect("outcome recorded")
        .expect("cancelled runs produce a truncated Ok outcome");
    assert!(outcome.interrupted, "cancel landed mid-iteration");
    assert!(!outcome.converged);

    // The freed worker picks up new work immediately.
    let (m, config) = tiny_job();
    let (next, _) = service.submit_module("and2", m, config).unwrap();
    assert_eq!(service.wait(next), Some(JobState::Done));
    service.shutdown();
}

/// The byte budget is enforced after every growing operation, victims
/// leave LRU-first, and a sole oversized entry sheds its warm extras
/// instead of thrashing.
#[test]
fn byte_budget_evicts_lru_first_and_never_exceeds_budget() {
    const A: &str = "module a(input x, output y); assign y = x; endmodule";
    const B: &str = "module b(input x, output y); assign y = ~x; endmodule";
    const C: &str = "module c(input x, input z, output y); assign y = x ^ z; endmodule";
    const D: &str = "module d(input x, input z, output y); assign y = x & z; endmodule";
    let canon = |src: &str| canonical_form(&gm_rtl::parse_verilog(src).unwrap());
    let build = |src: &'static str| {
        move || {
            let m = gm_rtl::parse_verilog(src).unwrap();
            let e = gm_rtl::elaborate(&m).unwrap();
            Ok::<_, ()>((Arc::new(m), Arc::new(e)))
        }
    };

    // Room for two resident sources but never three.
    let budget = canon(A).len() + canon(B).len() + canon(C).len() - 1;
    let mut cache = DesignCache::with_max_bytes(8, budget);
    cache
        .checkout("a", &canon(A), Some(true), build(A))
        .unwrap();
    cache
        .checkout("b", &canon(B), Some(true), build(B))
        .unwrap();
    assert!(cache.stats().approx_bytes <= budget);
    assert_eq!(cache.stats().evictions_bytes, 0);

    // Touch A so B is the LRU victim when C overflows the budget.
    assert!(
        cache
            .checkout("a", &canon(A), Some(true), build(A))
            .unwrap()
            .hit
    );
    cache
        .checkout("c", &canon(C), Some(true), build(C))
        .unwrap();
    let stats = cache.stats();
    assert!(stats.approx_bytes <= budget, "budget violated after insert");
    assert_eq!(stats.evictions_bytes, 1);
    assert!(cache.matches("a", &canon(A)), "recently used entry kept");
    assert!(!cache.matches("b", &canon(B)), "LRU entry evicted first");
    assert!(cache.matches("c", &canon(C)));

    // Touch C so A is next out when D arrives.
    assert!(
        cache
            .checkout("c", &canon(C), Some(true), build(C))
            .unwrap()
            .hit
    );
    cache
        .checkout("d", &canon(D), Some(true), build(D))
        .unwrap();
    assert!(!cache.matches("a", &canon(A)), "victim order follows LRU");
    assert!(cache.matches("c", &canon(C)));
    assert!(cache.matches("d", &canon(D)));
    assert!(cache.stats().approx_bytes <= budget);
    assert_eq!(cache.stats().evictions_bytes, 2);
    assert_eq!(cache.stats().evictions, 2, "sum counter tracks the split");

    // A sole entry larger than the whole budget sheds its parked
    // checkers rather than evicting itself. Budget sits strictly
    // between the bare entry and the entry with a *warm* parked
    // checker (one decided property puts bytes in its memo/session).
    let module_a = gm_rtl::parse_verilog(A).unwrap();
    let x = module_a.require("x").unwrap();
    let y = module_a.require("y").unwrap();
    let mut parked = Checker::new(&module_a).unwrap();
    parked
        .check_batch(&[gm_mc::WindowProperty {
            antecedent: vec![gm_mc::BitAtom::new(x, 0, 0, true)],
            consequent: gm_mc::BitAtom::new(y, 0, 0, true),
        }])
        .unwrap();
    assert!(parked.approx_bytes() > 0, "warm checkers account bytes");
    let sole_budget = canon(A).len() + parked.approx_bytes() - 1;
    let mut small = DesignCache::with_max_bytes(8, sole_budget);
    small
        .checkout("a", &canon(A), Some(true), build(A))
        .unwrap();
    small.park("a", &canon(A), parked);
    assert!(
        small.stats().approx_bytes <= sole_budget,
        "oversized warm state was shed"
    );
    assert!(
        small.matches("a", &canon(A)),
        "the design itself stays resident"
    );
    let warm = small
        .checkout("a", &canon(A), Some(true), build(A))
        .unwrap();
    assert!(warm.hit && warm.checker.is_none());
}

/// Parses a Prometheus exposition page into name → value, keeping the
/// integer-valued series (the histogram `_sum` lines carry fractional
/// seconds and are not part of the lifecycle invariant).
fn parse_scrape(text: &str) -> HashMap<String, u64> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            let name = parts.next().expect("metric name").to_string();
            let value = parts.next().expect("metric value").parse().ok()?;
            Some((name, value))
        })
        .collect()
}

/// Four clients scraping the metrics endpoint while jobs flow through
/// submit/complete/cancel must always observe
/// `submitted == queued + running + completed + failed + cancelled` —
/// the snapshot is taken under one lock, never stitched from counters
/// in motion.
#[test]
fn concurrent_metrics_scrapes_are_internally_consistent() {
    let service = Arc::new(ClosureService::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let scrapers: Vec<_> = (0..4)
            .map(|_| {
                let service = service.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut scrapes = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let Response::Metrics { text } = service.handle_request(&Request::Metrics)
                        else {
                            panic!("metrics request answered with the wrong response")
                        };
                        let m = parse_scrape(&text);
                        let lifecycle = m["gmserve_jobs_queued"]
                            + m["gmserve_jobs_running"]
                            + m["gmserve_jobs_completed_total"]
                            + m["gmserve_jobs_failed_total"]
                            + m["gmserve_jobs_cancelled_total"];
                        assert_eq!(
                            m["gmserve_jobs_submitted_total"], lifecycle,
                            "scrape caught counters mid-transition"
                        );
                        // The resilience families render in every
                        // scrape (zeros included) so dashboards can
                        // rely on them, and the retry histogram is
                        // internally consistent: +Inf is the count,
                        // and only worker-retired jobs are observed.
                        for counter in [
                            "gmserve_worker_panics_total",
                            "gmserve_jobs_retried_total",
                            "gmserve_jobs_deadline_exceeded_total",
                            "gmserve_requests_shed_total",
                            "gmserve_workers_respawned_total",
                        ] {
                            assert!(m.contains_key(counter), "{counter} missing from scrape");
                        }
                        let retired = m["gmserve_jobs_completed_total"]
                            + m["gmserve_jobs_failed_total"]
                            + m["gmserve_jobs_cancelled_total"];
                        assert_eq!(
                            m["gmserve_job_retries_bucket{le=\"+Inf\"}"],
                            m["gmserve_job_retries_count"],
                            "+Inf bucket must equal the histogram count"
                        );
                        assert!(
                            m["gmserve_job_retries_count"] <= retired,
                            "retry observations outnumber retired jobs"
                        );
                        scrapes += 1;
                    }
                    scrapes
                })
            })
            .collect();

        let mut jobs = Vec::new();
        for i in 0..24 {
            let (m, config) = tiny_job();
            let (job, _) = service.submit_module("and2", m, config).unwrap();
            // Cancel a third of them so every lifecycle counter moves.
            if i % 3 == 0 {
                service.cancel(job);
            }
            jobs.push(job);
        }
        for job in jobs {
            service.wait(job);
        }
        stop.store(true, Ordering::Release);
        let total: u64 = scrapers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "scrapers observed at least one snapshot");
    });
    service.shutdown();
}
