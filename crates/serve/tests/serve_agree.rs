//! Differential suite: everything the service returns must be
//! *byte-identical* to a standalone [`Engine`] run of the same module
//! and config — across the whole design catalog, under both scheduler
//! policies, through concurrent clients, across cache eviction and
//! rebuild, and over the Unix-socket wire.

use gm_rtl::{Module, SignalId};
use gm_serve::{ClosureService, JobState, SchedPolicy, ServeClient, ServeConfig, WireConfig};
use goldmine::{
    ClosureOutcome, Engine, EngineConfig, SeedStimulus, TargetSelection, UnknownPolicy,
};
use std::sync::{Arc, OnceLock};

fn one_bit_targets(m: &Module) -> Vec<(SignalId, u32)> {
    m.outputs()
        .into_iter()
        .filter(|&s| m.signal_width(s) == 1)
        .map(|s| (s, 0))
        .collect()
}

/// A bounded config per catalog design (the differential property does
/// not need the full pipeline budgets; the two big lite blocks are
/// bounded exactly like `tests/pipeline.rs` bounds them).
fn catalog_jobs() -> Vec<(String, Module, EngineConfig)> {
    gm_designs::catalog()
        .into_iter()
        .map(|d| {
            let module = d.module();
            let (backend, max_iterations, targets) = match d.name {
                // fetch_stage's full Auto-backend closure costs ~6 s
                // alone — the differential property only needs the
                // served run to mirror the standalone run, so it gets
                // the same hard bound as the big lite blocks.
                "b17_lite" | "b18_lite" | "fetch_stage" => (
                    gm_mc::Backend::KInduction { max_k: 1 },
                    1,
                    vec![one_bit_targets(&module)[0]],
                ),
                _ => {
                    let mut t = one_bit_targets(&module);
                    t.truncate(2);
                    (gm_mc::Backend::Auto, 10, t)
                }
            };
            let config = EngineConfig {
                window: d.window,
                stimulus: SeedStimulus::Random { cycles: 32 },
                targets: TargetSelection::Bits(targets),
                backend,
                max_iterations,
                unknown: UnknownPolicy::AssumeTrue,
                record_coverage: false,
                ..EngineConfig::default()
            };
            (d.name.to_string(), module, config)
        })
        .collect()
}

/// One catalog job plus its standalone baseline outcome.
struct Baseline {
    name: String,
    module: Module,
    config: EngineConfig,
    outcome: ClosureOutcome,
}

/// The shared fixture: every test in this binary compares served
/// outcomes against the same standalone `Engine` baselines, so they are
/// computed once per process instead of once per test (the catalog
/// sweep dominated this suite's wall time).
fn baselines() -> &'static [Baseline] {
    static BASELINES: OnceLock<Vec<Baseline>> = OnceLock::new();
    BASELINES.get_or_init(|| {
        catalog_jobs()
            .into_iter()
            .map(|(name, module, config)| {
                let outcome = Engine::new(&module, config.clone()).unwrap().run().unwrap();
                Baseline {
                    name,
                    module,
                    config,
                    outcome,
                }
            })
            .collect()
    })
}

fn baselines_for(names: &[&str]) -> Vec<&'static Baseline> {
    let all = baselines();
    names
        .iter()
        .map(|n| {
            all.iter()
                .find(|b| b.name == *n)
                .expect("fixture covers the whole catalog")
        })
        .collect()
}

#[test]
fn served_outcomes_match_standalone_across_the_catalog_under_both_policies() {
    for policy in [SchedPolicy::RoundRobin, SchedPolicy::WorkStealing] {
        let jobs: Vec<&Baseline> = baselines().iter().collect();
        let expected: Vec<String> = jobs.iter().map(|b| format!("{:?}", b.outcome)).collect();
        let service = ClosureService::new(ServeConfig {
            workers: 3,
            cache_capacity: 16,
            policy,
            ..ServeConfig::default()
        });
        let ids: Vec<u64> = jobs
            .iter()
            .map(|b| {
                service
                    .submit_module(&b.name, b.module.clone(), b.config.clone())
                    .unwrap()
                    .0
            })
            .collect();
        for ((id, expect), b) in ids.into_iter().zip(&expected).zip(&jobs) {
            assert_eq!(
                service.wait(id),
                Some(JobState::Done),
                "{} under {policy:?}",
                b.name
            );
            let outcome = service.take_outcome(id).unwrap().unwrap();
            assert_eq!(
                format!("{outcome:?}"),
                *expect,
                "{}: served outcome diverged from standalone under {policy:?}",
                b.name
            );
        }
        let stats = service.stats();
        assert_eq!(stats.completed, jobs.len() as u64);
        if policy == SchedPolicy::RoundRobin {
            assert_eq!(stats.steals, 0, "round-robin must never steal");
        }
        service.shutdown();
    }
}

#[test]
fn concurrent_multi_client_submissions_agree_with_standalone() {
    let jobs = baselines_for(&["arbiter2", "b01", "b02", "b09"]);
    let expected: Vec<String> = jobs.iter().map(|b| format!("{:?}", b.outcome)).collect();
    let service = Arc::new(ClosureService::new(ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    }));
    // Four clients, each submitting the full set concurrently: the same
    // design runs in parallel with itself, exercising the parked-checker
    // pool and the cache hit path under contention.
    std::thread::scope(|scope| {
        for client in 0..4 {
            let service = service.clone();
            let jobs = &jobs;
            let expected = &expected;
            scope.spawn(move || {
                for (b, expect) in jobs.iter().zip(expected) {
                    let (id, _) = service
                        .submit_module(
                            &format!("{}-client{client}", b.name),
                            b.module.clone(),
                            b.config.clone(),
                        )
                        .unwrap();
                    assert_eq!(service.wait(id), Some(JobState::Done));
                    let outcome = service.take_outcome(id).unwrap().unwrap();
                    assert_eq!(
                        format!("{outcome:?}"),
                        *expect,
                        "client {client}: {} diverged",
                        b.name
                    );
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.cache_misses, 4, "one miss per distinct design");
    assert_eq!(stats.cache_hits, 12, "every repeat submission hits");
    service.shutdown();
}

#[test]
fn cache_eviction_and_rebuild_never_change_outcomes() {
    let jobs = baselines_for(&["cex_small", "arbiter2", "b01"]);
    let expected: Vec<String> = jobs.iter().map(|b| format!("{:?}", b.outcome)).collect();
    // Capacity 2 with 3 designs cycled twice: every design gets evicted
    // and rebuilt at least once along the way.
    let service = ClosureService::new(ServeConfig {
        workers: 1,
        cache_capacity: 2,
        ..ServeConfig::default()
    });
    for round in 0..2 {
        for (b, expect) in jobs.iter().zip(&expected) {
            let (id, _) = service
                .submit_module(&b.name, b.module.clone(), b.config.clone())
                .unwrap();
            assert_eq!(service.wait(id), Some(JobState::Done));
            let outcome = service.take_outcome(id).unwrap().unwrap();
            assert_eq!(
                format!("{outcome:?}"),
                *expect,
                "round {round}: {} diverged after eviction churn",
                b.name
            );
        }
    }
    let stats = service.stats();
    assert!(
        stats.cache_evictions > 0,
        "the churn must actually evict: {stats:?}"
    );
    assert_eq!(stats.completed, 6);
    service.shutdown();
}

#[test]
fn warm_memo_mode_keeps_verdicts_and_artifacts_identical() {
    // warm_memo changes only the work counters inside the iteration
    // reports; the convergence verdicts, proved assertions and suite
    // must still match a standalone run exactly.
    let b = baselines_for(&["arbiter2"])[0];
    let standalone = &b.outcome;
    let service = ClosureService::new(ServeConfig {
        workers: 1,
        warm_memo: true,
        ..ServeConfig::default()
    });
    for round in 0..2 {
        let (id, _) = service
            .submit_module(&b.name, b.module.clone(), b.config.clone())
            .unwrap();
        service.wait(id);
        let outcome = service.take_outcome(id).unwrap().unwrap();
        assert_eq!(outcome.converged, standalone.converged, "round {round}");
        assert_eq!(
            format!("{:?}", outcome.assertions),
            format!("{:?}", standalone.assertions),
            "round {round}"
        );
        assert_eq!(
            format!("{:?}", outcome.suite),
            format!("{:?}", standalone.suite),
            "round {round}"
        );
        assert_eq!(outcome.iteration_count(), standalone.iteration_count());
    }
    service.shutdown();
}

#[test]
fn traced_served_runs_agree_and_export_loadable_recordings() {
    // A traced submission must produce the same bytes as the untraced
    // standalone baseline — the flight recorder is pure observation —
    // and its export must be parseable JSON carrying the span
    // vocabulary of every layer the job crossed.
    let jobs = baselines_for(&["arbiter2", "b01"]);
    let service = ClosureService::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    for b in &jobs {
        let (id, _) = service
            .submit_module_traced(&b.name, b.module.clone(), b.config.clone(), true)
            .unwrap();
        assert_eq!(service.wait(id), Some(JobState::Done), "{}", b.name);
        let outcome = service.take_outcome(id).unwrap().unwrap();
        assert_eq!(
            format!("{outcome:?}"),
            format!("{:?}", b.outcome),
            "{}: tracing changed the served outcome",
            b.name
        );
        let trace = service.trace_json(id).unwrap();
        let parsed = gm_serve::json::parse(&trace).expect("trace export parses as JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        assert!(!events.is_empty(), "{}: empty recording", b.name);
        let names: std::collections::HashSet<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(gm_serve::json::Json::as_str))
            .collect();
        for name in [
            "serve.queue",
            "serve.job",
            "engine.run",
            "engine.iteration",
            "engine.verify",
            "mc.check_batch",
        ] {
            assert!(names.contains(name), "{}: span {name} missing", b.name);
        }
    }
    // Both claims and retirements landed in the latency histograms.
    let stats = service.stats();
    assert_eq!(stats.queue_seconds.count(), 2);
    assert_eq!(stats.wall_seconds.count(), 2);
    service.shutdown();
}

#[test]
fn traces_and_histograms_travel_the_socket() {
    let path = std::env::temp_dir().join(format!("gm-serve-trace-{}.sock", std::process::id()));
    let listener = gm_serve::bind_unix(&path).unwrap();
    let service = Arc::new(ClosureService::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    }));
    let server = {
        let service = service.clone();
        std::thread::spawn(move || gm_serve::serve_unix(service, listener))
    };
    let wire = WireConfig {
        random_cycles: Some(32),
        max_iterations: 10,
        record_coverage: false,
        ..WireConfig::default()
    }
    .with_bit_targets(vec![("gnt0".into(), 0), ("gnt1".into(), 0)]);
    let b = baselines_for(&["arbiter2"])[0];

    let mut client = ServeClient::connect(&path).unwrap();
    let (job, _) = client
        .submit_traced("arbiter2", gm_designs::sources::ARBITER2, &wire, true)
        .unwrap();
    // Traces are refused until the job is terminal or when it was
    // submitted untraced.
    let summary = client.wait(job).unwrap();
    assert_eq!(
        summary.outcome_debug,
        format!("{:?}", b.outcome),
        "traced wire run diverged from the standalone baseline"
    );
    let trace = client.trace(job).unwrap();
    assert!(trace.contains("\"name\":\"serve.job\""), "{trace}");
    assert!(gm_serve::json::parse(&trace).is_ok());
    assert!(client.trace(job + 7).is_err(), "unknown jobs error");
    let (untraced, _) = client
        .submit("arbiter2-plain", gm_designs::sources::ARBITER2, &wire)
        .unwrap();
    client.wait(untraced).unwrap();
    assert!(client.trace(untraced).is_err(), "untraced jobs error");
    // The scrape endpoint exposes the histograms and build gauge.
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("# TYPE gmserve_job_queue_seconds histogram"));
    assert!(metrics.contains("gmserve_job_wall_seconds_count 2"));
    assert!(metrics.contains("# TYPE gmserve_build_info gauge"));
    let stats = client.stats().unwrap();
    assert_eq!(stats.wall_seconds.count(), 2);
    assert!(stats.wall_seconds.sum_ns > 0);
    client.shutdown().unwrap();
    drop(client);
    server.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shutdown_returns_even_with_an_idle_connection_open() {
    let path = std::env::temp_dir().join(format!("gm-serve-idle-{}.sock", std::process::id()));
    let listener = gm_serve::bind_unix(&path).unwrap();
    let service = Arc::new(ClosureService::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    }));
    let server = {
        let service = service.clone();
        std::thread::spawn(move || gm_serve::serve_unix(service, listener))
    };
    // An idle client that never sends a frame and never hangs up…
    let idle = ServeClient::connect(&path).unwrap();
    // …must not pin the accept loop's connection join after a shutdown
    // request from someone else.
    let mut closer = ServeClient::connect(&path).unwrap();
    closer.shutdown().unwrap();
    drop(closer);
    server.join().unwrap().unwrap();
    drop(idle);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn socket_round_trip_is_byte_identical_and_shuts_down_cleanly() {
    let path = std::env::temp_dir().join(format!("gm-serve-agree-{}.sock", std::process::id()));
    let listener = gm_serve::bind_unix(&path).unwrap();
    let service = Arc::new(ClosureService::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }));
    let server = {
        let service = service.clone();
        std::thread::spawn(move || gm_serve::serve_unix(service, listener))
    };

    let module = gm_designs::arbiter2();
    let wire = WireConfig {
        random_cycles: Some(32),
        max_iterations: 10,
        record_coverage: false,
        ..WireConfig::default()
    }
    .with_bit_targets(vec![("gnt0".into(), 0), ("gnt1".into(), 0)]);
    let config = wire.to_engine(&module).unwrap();
    // The wire config resolves to exactly the catalog job's engine
    // config, so the shared fixture baseline applies here too.
    let b = baselines_for(&["arbiter2"])[0];
    assert_eq!(config, b.config, "wire round-trip matches the fixture");
    let expect = format!("{:?}", b.outcome);

    let mut client = ServeClient::connect(&path).unwrap();
    let (job, cached) = client
        .submit("arbiter2", gm_designs::sources::ARBITER2, &wire)
        .unwrap();
    assert!(!cached);
    let summary = client.wait(job).unwrap();
    assert_eq!(
        summary.outcome_debug, expect,
        "the wire summary must carry the standalone outcome byte-for-byte"
    );
    assert!(summary.converged);
    let (events, terminal) = client.progress(job, 0).unwrap();
    assert!(terminal);
    assert_eq!(events.len(), summary.iterations as usize + 1);
    let stats = client.stats().unwrap();
    assert_eq!((stats.submitted, stats.completed), (1, 1));
    // A second client sees the same server state.
    let mut second = ServeClient::connect(&path).unwrap();
    assert_eq!(second.stats().unwrap().completed, 1);
    second.shutdown().unwrap();
    // The accept loop joins every connection thread before returning,
    // so both clients must hang up first.
    drop(client);
    drop(second);
    server.join().unwrap().unwrap();
    assert!(!path.exists() || std::fs::remove_file(&path).is_ok());
}
