//! # gm-sim — cycle-accurate behavioral RTL simulation
//!
//! The dynamic half of GoldMine's *data generator*: a deterministic
//! two-valued interpreter for `gm-rtl` modules with
//!
//! * observer hooks for coverage collection ([`SimObserver`]),
//! * per-cycle trace capture ([`Trace`]) with VCD export,
//! * random and directed stimulus sources ([`RandomStimulus`],
//!   [`DirectedStimulus`]),
//! * reset-rooted multi-segment test suites ([`TestSuite`]) — the shape
//!   of the validation stimulus the refinement loop accumulates.
//!
//! Clocking model: one implicit clock; every [`Simulator::step`] is a
//! full cycle (settle combinational logic, sample, latch registers).
//! Sequential processes use non-blocking semantics, combinational
//! processes blocking semantics in elaboration's topological order.
//!
//! Two engines share those semantics: the tree-walking interpreter
//! ([`Simulator`], the reference) and the compiled backend
//! ([`CompiledModule`]), which lowers the design once into a flat
//! instruction tape and executes it either one vector at a time
//! ([`ScalarSim`]) or bit-parallel in lane blocks of 1–8 words — 64 to
//! 512 stimulus vectors per pass ([`BatchSim`], bit `k` of block word
//! `j` = vector `j*64 + k`) — with boolean-node coverage probes fused
//! into the tape and drained in bulk ([`BatchObserver::drain_probes`]).
//! Callers select an engine (and lane-block width) via [`SimBackend`],
//! and can compile observation out entirely with [`CompileOptions`];
//! `sim/compiled_agree` proves every backend trace- and
//! coverage-identical.

#![warn(missing_docs)]

mod compile;
mod sim;
mod stim;
mod suite;
mod trace;

pub use compile::{
    BatchObserver, BatchSim, CompileOptions, CompiledModule, LaneSet, LaneSnapshot,
    NopBatchObserver, ProbeHits, ScalarSim, SimBackend, MAX_LANE_BLOCK,
};
pub use sim::{BranchOutcome, ExprRole, MultiObserver, NopObserver, SimObserver, Simulator};
pub use stim::{
    collect_vectors, synthesize_directed, DirectedStimulus, InputVector, RandomStimulus, Stimulus,
};
pub use suite::{run_segment, Segment, TestSuite};
pub use trace::Trace;
