//! Simulation traces: per-cycle snapshots of every signal.
//!
//! A [`Trace`] is the data-mining substrate of the paper: GoldMine's data
//! generator simulates the design and hands traces to the decision-tree
//! miner. Rows are settled pre-edge snapshots, so a register's row-`t`
//! value is its state *during* cycle `t` (the paper's `gnt0(t)` column)
//! and its row-`t+1` value is the post-edge state (`gnt0(t+1)`).

use gm_rtl::{Bv, Module, SignalId};
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// A recorded simulation trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    names: Vec<String>,
    widths: Vec<u32>,
    rows: Vec<Vec<u64>>,
}

impl Trace {
    /// Creates an empty trace shaped for `module`'s signal table.
    pub fn for_module(module: &Module) -> Self {
        Trace {
            names: module
                .signals()
                .iter()
                .map(|s| s.name().to_string())
                .collect(),
            widths: module.signals().iter().map(|s| s.width()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a snapshot row.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the trace's signal count.
    pub fn push_row(&mut self, values: &[Bv]) {
        assert_eq!(values.len(), self.names.len(), "snapshot arity mismatch");
        self.rows.push(values.iter().map(|v| v.bits()).collect());
    }

    /// Appends a pre-extracted raw row (one `u64` of bits per signal).
    /// The compiled executors use this to skip `Bv` materialization.
    pub(crate) fn push_row_raw(&mut self, row: Vec<u64>) {
        debug_assert_eq!(row.len(), self.names.len(), "snapshot arity mismatch");
        self.rows.push(row);
    }

    /// The number of recorded cycles.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the trace has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The number of signals per row.
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// The value of signal `sig` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` or `sig` is out of range.
    pub fn value(&self, cycle: usize, sig: SignalId) -> Bv {
        Bv::new(self.rows[cycle][sig.index()], self.widths[sig.index()])
    }

    /// The value of a single bit of `sig` at `cycle`.
    pub fn bit(&self, cycle: usize, sig: SignalId, bit: u32) -> bool {
        self.value(cycle, sig).bit(bit)
    }

    /// Signal names, indexed by [`SignalId::index`].
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Signal widths, indexed by [`SignalId::index`].
    pub fn widths(&self) -> &[u32] {
        &self.widths
    }

    /// Appends all rows of `other` (same shape) to this trace.
    ///
    /// # Panics
    ///
    /// Panics if the traces have different signal tables.
    pub fn extend_from(&mut self, other: &Trace) {
        assert_eq!(self.names, other.names, "trace shape mismatch");
        self.rows.extend(other.rows.iter().cloned());
    }

    /// Writes the trace as a minimal VCD (value change dump) document.
    ///
    /// All signals live under one scope named `top`; time advances by one
    /// `#` tick per cycle.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_vcd(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "$timescale 1ns $end")?;
        writeln!(w, "$scope module top $end")?;
        let ids: Vec<String> = (0..self.names.len()).map(vcd_id).collect();
        for (i, name) in self.names.iter().enumerate() {
            writeln!(w, "$var wire {} {} {} $end", self.widths[i], ids[i], name)?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;
        let mut last: Vec<Option<u64>> = vec![None; self.names.len()];
        for (t, row) in self.rows.iter().enumerate() {
            writeln!(w, "#{t}")?;
            for (i, &v) in row.iter().enumerate() {
                if last[i] != Some(v) {
                    if self.widths[i] == 1 {
                        writeln!(w, "{}{}", v & 1, ids[i])?;
                    } else {
                        writeln!(w, "b{:b} {}", v, ids[i])?;
                    }
                    last[i] = Some(v);
                }
            }
        }
        writeln!(w, "#{}", self.rows.len())?;
        Ok(())
    }

    /// Renders the VCD document to a `String`.
    pub fn to_vcd_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_vcd(&mut buf)
            .expect("writing to Vec cannot fail");
        String::from_utf8(buf).expect("VCD output is ASCII")
    }
}

/// Generates a short printable VCD identifier for signal index `i`.
fn vcd_id(mut i: usize) -> String {
    // Base-94 over the printable ASCII range used by VCD identifiers.
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::ModuleBuilder;

    fn module() -> Module {
        let mut b = ModuleBuilder::new("t");
        let a = b.input("a", 1);
        let w = b.input("wide", 4);
        let y = b.output("y", 1);
        b.assign(
            y,
            gm_rtl::Expr::Signal(a).and(gm_rtl::Expr::Signal(w).index(0)),
        );
        b.finish()
    }

    #[test]
    fn records_and_reads_values() {
        let m = module();
        let mut t = Trace::for_module(&m);
        t.push_row(&[Bv::one_bit(), Bv::new(0b1010, 4), Bv::zero_bit()]);
        t.push_row(&[Bv::zero_bit(), Bv::new(0b0101, 4), Bv::one_bit()]);
        assert_eq!(t.len(), 2);
        let wide = m.require("wide").unwrap();
        assert_eq!(t.value(0, wide), Bv::new(0b1010, 4));
        assert!(t.bit(1, wide, 0));
        assert!(!t.bit(1, wide, 1));
    }

    #[test]
    fn extend_concatenates_rows() {
        let m = module();
        let mut t1 = Trace::for_module(&m);
        t1.push_row(&[Bv::one_bit(), Bv::new(1, 4), Bv::zero_bit()]);
        let mut t2 = Trace::for_module(&m);
        t2.push_row(&[Bv::zero_bit(), Bv::new(2, 4), Bv::one_bit()]);
        t1.extend_from(&t2);
        assert_eq!(t1.len(), 2);
        let wide = m.require("wide").unwrap();
        assert_eq!(t1.value(1, wide), Bv::new(2, 4));
    }

    #[test]
    fn vcd_output_is_wellformed() {
        let m = module();
        let mut t = Trace::for_module(&m);
        t.push_row(&[Bv::one_bit(), Bv::new(0b1010, 4), Bv::zero_bit()]);
        t.push_row(&[Bv::one_bit(), Bv::new(0b1011, 4), Bv::zero_bit()]);
        let vcd = t.to_vcd_string();
        assert!(vcd.contains("$var wire 4"));
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("b1010"));
        // Unchanged signals are not re-dumped at #1.
        let after_t1 = vcd.split("#1\n").nth(1).unwrap();
        assert!(
            !after_t1.contains("1!"),
            "signal `a` unchanged at #1: {vcd}"
        );
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let ids: Vec<String> = (0..500).map(vcd_id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for id in ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }
}
