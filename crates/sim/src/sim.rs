//! The cycle-accurate behavioral simulator.

use crate::trace::Trace;
use gm_rtl::{elaborate, Bv, Elab, Expr, Module, Result, SignalId, Stmt, StmtId, StmtKind};

/// Which branch of a control statement was taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchOutcome {
    /// The `then` branch of an `if`.
    Then,
    /// The `else` branch of an `if` (taken even when the branch is empty).
    Else,
    /// Arm `index` of a `case`.
    Arm(u32),
    /// The `default` arm of a `case` (explicit or implicit fall-through).
    Default,
}

/// The syntactic role of an expression reported to observers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExprRole {
    /// Condition of an `if`.
    Condition,
    /// Subject of a `case`.
    CaseSubject,
    /// Right-hand side of an assignment.
    AssignRhs,
}

/// Observation hooks for simulation events.
///
/// Coverage collectors implement this trait; all methods default to no-ops
/// so observers only pay for what they watch. `values` slices are indexed
/// by [`SignalId::index`] and reflect the environment at the moment of the
/// event (pre-edge values inside sequential processes).
pub trait SimObserver {
    /// A statement was executed.
    fn on_stmt(&mut self, _stmt: StmtId) {}
    /// A control statement resolved to a branch.
    fn on_branch(&mut self, _stmt: StmtId, _outcome: BranchOutcome) {}
    /// An expression was evaluated in the given role with the given
    /// environment.
    fn on_expr(&mut self, _stmt: StmtId, _role: ExprRole, _expr: &Expr, _values: &[Bv]) {}
    /// A cycle finished: `values` holds the settled pre-edge snapshot.
    fn on_cycle_end(&mut self, _cycle: u64, _values: &[Bv]) {}
}

/// An observer that ignores every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopObserver;

impl SimObserver for NopObserver {}

/// Forwards events to several observers in order.
#[derive(Default)]
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn SimObserver>,
}

impl std::fmt::Debug for MultiObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MultiObserver({} observers)", self.observers.len())
    }
}

impl<'a> MultiObserver<'a> {
    /// Creates an empty multiplexer.
    pub fn new() -> Self {
        MultiObserver {
            observers: Vec::new(),
        }
    }

    /// Adds an observer; events are delivered in insertion order.
    pub fn push(&mut self, obs: &'a mut dyn SimObserver) -> &mut Self {
        self.observers.push(obs);
        self
    }
}

impl SimObserver for MultiObserver<'_> {
    fn on_stmt(&mut self, stmt: StmtId) {
        for o in &mut self.observers {
            o.on_stmt(stmt);
        }
    }
    fn on_branch(&mut self, stmt: StmtId, outcome: BranchOutcome) {
        for o in &mut self.observers {
            o.on_branch(stmt, outcome);
        }
    }
    fn on_expr(&mut self, stmt: StmtId, role: ExprRole, expr: &Expr, values: &[Bv]) {
        for o in &mut self.observers {
            o.on_expr(stmt, role, expr, values);
        }
    }
    fn on_cycle_end(&mut self, cycle: u64, values: &[Bv]) {
        for o in &mut self.observers {
            o.on_cycle_end(cycle, values);
        }
    }
}

/// A cycle-accurate interpreter for an elaborated [`Module`].
///
/// Each [`Simulator::step`] models one clock cycle: inputs are applied,
/// combinational processes settle in topological order (blocking
/// semantics), observers sample the settled pre-edge state, then all
/// sequential processes fire with non-blocking semantics.
///
/// # Examples
///
/// ```
/// use gm_sim::Simulator;
/// use gm_rtl::{parse_verilog, Bv};
///
/// let m = parse_verilog(
///     "module inv(input a, output y); assign y = ~a; endmodule")?;
/// let mut sim = Simulator::new(&m)?;
/// let a = m.require("a")?;
/// let y = m.require("y")?;
/// sim.set_input(a, Bv::one_bit());
/// sim.step();
/// assert_eq!(sim.value(y), Bv::zero_bit());
/// # Ok::<(), gm_rtl::RtlError>(())
/// ```
#[derive(Debug)]
pub struct Simulator<'m> {
    module: &'m Module,
    elab: Elab,
    values: Vec<Bv>,
    cycle: u64,
}

impl<'m> Simulator<'m> {
    /// Elaborates `module` and constructs a simulator at the reset state.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors (see [`gm_rtl::elaborate`]).
    pub fn new(module: &'m Module) -> Result<Self> {
        let elab = elaborate(module)?;
        Ok(Self::with_elab(module, elab))
    }

    /// Constructs a simulator from an already elaborated module.
    pub fn with_elab(module: &'m Module, elab: Elab) -> Self {
        let values = module.signals().iter().map(|s| s.init()).collect();
        Simulator {
            module,
            elab,
            values,
            cycle: 0,
        }
    }

    /// The module being simulated.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The elaboration backing this simulator.
    pub fn elab(&self) -> &Elab {
        &self.elab
    }

    /// The number of completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The current value of a signal.
    pub fn value(&self, sig: SignalId) -> Bv {
        self.values[sig.index()]
    }

    /// The full current value snapshot, indexed by [`SignalId::index`].
    pub fn values(&self) -> &[Bv] {
        &self.values
    }

    /// Drives an input (or forces any signal) for the current cycle.
    /// Values are truncated/extended to the signal width.
    pub fn set_input(&mut self, sig: SignalId, value: Bv) {
        let w = self.module.signal_width(sig);
        self.values[sig.index()] = value.resize(w);
    }

    /// Drives several inputs at once.
    pub fn set_inputs(&mut self, inputs: &[(SignalId, Bv)]) {
        for (s, v) in inputs {
            self.set_input(*s, *v);
        }
    }

    /// Returns all registers to their declared init values and resets the
    /// cycle counter. Input values are cleared to zero.
    pub fn reset_to_initial(&mut self) {
        for (i, s) in self.module.signals().iter().enumerate() {
            self.values[i] = s.init();
        }
        self.cycle = 0;
    }

    /// Settles combinational logic without advancing the clock.
    pub fn settle(&mut self) {
        self.settle_observed(&mut NopObserver);
    }

    /// Settles combinational logic, reporting events to `obs`.
    pub fn settle_observed(&mut self, obs: &mut dyn SimObserver) {
        for &pi in self.elab.comb_order() {
            let body: &[Stmt] = &self.module.processes()[pi].body;
            for st in body {
                exec_stmt(self.module, st, &mut self.values, None, obs);
            }
        }
    }

    /// Runs one full clock cycle: settle, sample, clock edge.
    pub fn step(&mut self) {
        self.step_observed(&mut NopObserver);
    }

    /// Runs one full clock cycle, reporting events to `obs`.
    ///
    /// `on_cycle_end` fires after combinational settling and before the
    /// clock edge, so the reported snapshot matches what a waveform viewer
    /// would show just before the edge.
    pub fn step_observed(&mut self, obs: &mut dyn SimObserver) {
        self.settle_observed(obs);
        obs.on_cycle_end(self.cycle, &self.values);
        // Clock edge: non-blocking updates.
        let mut updates: Vec<(SignalId, Bv)> = Vec::new();
        for &pi in self.elab.seq_processes() {
            let body: &[Stmt] = &self.module.processes()[pi].body;
            for st in body {
                exec_stmt(self.module, st, &mut self.values, Some(&mut updates), obs);
            }
        }
        for (sig, v) in updates {
            self.values[sig.index()] = v;
        }
        self.cycle += 1;
    }

    /// Simulates `vectors` (one input assignment per cycle) from the
    /// current state, returning the recorded trace.
    ///
    /// Each trace row is the settled pre-edge snapshot of *all* signals.
    pub fn run_vectors(
        &mut self,
        vectors: &[Vec<(SignalId, Bv)>],
        obs: &mut dyn SimObserver,
    ) -> Trace {
        let mut trace = Trace::for_module(self.module);
        for vec in vectors {
            self.set_inputs(vec);
            self.settle_observed(obs);
            obs.on_cycle_end(self.cycle, &self.values);
            trace.push_row(&self.values);
            // Finish the cycle: clock edge.
            let mut updates: Vec<(SignalId, Bv)> = Vec::new();
            for &pi in self.elab.seq_processes() {
                let body: &[Stmt] = &self.module.processes()[pi].body;
                for st in body {
                    exec_stmt(self.module, st, &mut self.values, Some(&mut updates), obs);
                }
            }
            for (sig, v) in updates {
                self.values[sig.index()] = v;
            }
            self.cycle += 1;
        }
        trace
    }
}

/// Executes one statement. When `updates` is `Some`, assignments are
/// non-blocking (deferred); otherwise they write through immediately.
fn exec_stmt(
    module: &Module,
    stmt: &Stmt,
    values: &mut Vec<Bv>,
    mut updates: Option<&mut Vec<(SignalId, Bv)>>,
    obs: &mut dyn SimObserver,
) {
    obs.on_stmt(stmt.id);
    match &stmt.kind {
        StmtKind::Assign { lhs, rhs } => {
            obs.on_expr(stmt.id, ExprRole::AssignRhs, rhs, values);
            let w = module.signal_width(*lhs);
            let v = rhs.eval(&|s: SignalId| values[s.index()]).resize(w);
            match updates {
                Some(u) => u.push((*lhs, v)),
                None => values[lhs.index()] = v,
            }
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            obs.on_expr(stmt.id, ExprRole::Condition, cond, values);
            let taken = cond.eval(&|s: SignalId| values[s.index()]).is_nonzero();
            obs.on_branch(
                stmt.id,
                if taken {
                    BranchOutcome::Then
                } else {
                    BranchOutcome::Else
                },
            );
            let body = if taken { then_body } else { else_body };
            for st in body {
                exec_stmt(module, st, values, updates.as_deref_mut(), obs);
            }
        }
        StmtKind::Case {
            subject,
            arms,
            default,
        } => {
            obs.on_expr(stmt.id, ExprRole::CaseSubject, subject, values);
            let subj = subject.eval(&|s: SignalId| values[s.index()]);
            let mut matched = None;
            'arms: for (i, arm) in arms.iter().enumerate() {
                for label in &arm.labels {
                    if label.bits() == subj.bits() {
                        matched = Some(i);
                        break 'arms;
                    }
                }
            }
            match matched {
                Some(i) => {
                    obs.on_branch(stmt.id, BranchOutcome::Arm(i as u32));
                    for st in &arms[i].body {
                        exec_stmt(module, st, values, updates.as_deref_mut(), obs);
                    }
                }
                None => {
                    obs.on_branch(stmt.id, BranchOutcome::Default);
                    if let Some(d) = default {
                        for st in d {
                            exec_stmt(module, st, values, updates.as_deref_mut(), obs);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::parse_verilog;

    const ARBITER2: &str = "
    module arbiter2(input clk, input rst, input req0, input req1,
                    output reg gnt0, output reg gnt1);
      always @(posedge clk)
        if (rst) begin
          gnt0 <= 0; gnt1 <= 0;
        end else begin
          gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
          gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
        end
    endmodule";

    #[test]
    fn combinational_logic_settles_in_order() {
        let m = parse_verilog(
            "module m(input a, output y);
               wire t;
               assign y = ~t;
               assign t = ~a;
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        let a = m.require("a").unwrap();
        let y = m.require("y").unwrap();
        sim.set_input(a, Bv::one_bit());
        sim.settle();
        assert_eq!(sim.value(y), Bv::one_bit());
        sim.set_input(a, Bv::zero_bit());
        sim.settle();
        assert_eq!(sim.value(y), Bv::zero_bit());
    }

    #[test]
    fn arbiter_round_robin_behaviour() {
        let m = parse_verilog(ARBITER2).unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        let rst = m.require("rst").unwrap();
        let req0 = m.require("req0").unwrap();
        let req1 = m.require("req1").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();

        // Reset.
        sim.set_input(rst, Bv::one_bit());
        sim.step();
        assert_eq!(sim.value(gnt0), Bv::zero_bit());
        sim.set_input(rst, Bv::zero_bit());

        // req0 alone: grant0 next cycle.
        sim.set_inputs(&[(req0, Bv::one_bit()), (req1, Bv::zero_bit())]);
        sim.step();
        assert_eq!(sim.value(gnt0), Bv::one_bit());
        assert_eq!(sim.value(gnt1), Bv::zero_bit());

        // Both request while gnt0 held: round-robin hands to port 1.
        sim.set_inputs(&[(req0, Bv::one_bit()), (req1, Bv::one_bit())]);
        sim.step();
        assert_eq!(sim.value(gnt0), Bv::zero_bit());
        assert_eq!(sim.value(gnt1), Bv::one_bit());
    }

    #[test]
    fn nonblocking_swap() {
        // Classic register swap only works with non-blocking semantics.
        let m = parse_verilog(
            "module m(input clk, input rst, output reg a, output reg b);
               always @(posedge clk)
                 if (rst) begin a <= 1; b <= 0; end
                 else begin a <= b; b <= a; end
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        let rst = m.require("rst").unwrap();
        let a = m.require("a").unwrap();
        let b = m.require("b").unwrap();
        sim.set_input(rst, Bv::one_bit());
        sim.step();
        sim.set_input(rst, Bv::zero_bit());
        assert_eq!(
            (sim.value(a), sim.value(b)),
            (Bv::one_bit(), Bv::zero_bit())
        );
        sim.step();
        assert_eq!(
            (sim.value(a), sim.value(b)),
            (Bv::zero_bit(), Bv::one_bit())
        );
        sim.step();
        assert_eq!(
            (sim.value(a), sim.value(b)),
            (Bv::one_bit(), Bv::zero_bit())
        );
    }

    #[test]
    fn assignment_truncates_to_lhs_width() {
        let m = parse_verilog(
            "module m(input [3:0] a, output [1:0] y);
               assign y = a + 4'd1;
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        let a = m.require("a").unwrap();
        let y = m.require("y").unwrap();
        sim.set_input(a, Bv::new(0b0111, 4));
        sim.settle();
        assert_eq!(sim.value(y), Bv::new(0b00, 2), "8 truncates to 2 bits");
    }

    #[test]
    fn observer_sees_branches_and_stmts() {
        #[derive(Default)]
        struct Collect {
            stmts: Vec<u32>,
            branches: Vec<(u32, BranchOutcome)>,
        }
        impl SimObserver for Collect {
            fn on_stmt(&mut self, s: StmtId) {
                self.stmts.push(s.index() as u32);
            }
            fn on_branch(&mut self, s: StmtId, o: BranchOutcome) {
                self.branches.push((s.index() as u32, o));
            }
        }
        let m = parse_verilog(ARBITER2).unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        let rst = m.require("rst").unwrap();
        let mut obs = Collect::default();
        sim.set_input(rst, Bv::one_bit());
        sim.step_observed(&mut obs);
        assert!(!obs.stmts.is_empty());
        assert_eq!(obs.branches.len(), 1);
        assert_eq!(obs.branches[0].1, BranchOutcome::Then);
        sim.set_input(rst, Bv::zero_bit());
        sim.step_observed(&mut obs);
        assert_eq!(obs.branches[1].1, BranchOutcome::Else);
    }

    #[test]
    fn reset_to_initial_restores_declared_inits() {
        let m = parse_verilog(
            "module m(input clk, input rst, input d, output reg [3:0] q);
               always @(posedge clk)
                 if (rst) q <= 4'd5;
                 else q <= q + 4'd1;
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        let q = m.require("q").unwrap();
        assert_eq!(sim.value(q), Bv::new(5, 4), "parser extracted reset init");
        sim.step();
        sim.step();
        assert_ne!(sim.value(q), Bv::new(5, 4));
        sim.reset_to_initial();
        assert_eq!(sim.value(q), Bv::new(5, 4));
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn case_default_fallthrough_observed() {
        let m = parse_verilog(
            "module m(input clk, input [1:0] s, output reg y);
               always @(posedge clk)
                 case (s)
                   2'b00: y <= 0;
                   2'b01: y <= 1;
                   default: y <= y;
                 endcase
             endmodule",
        )
        .unwrap();
        #[derive(Default)]
        struct Branches(Vec<BranchOutcome>);
        impl SimObserver for Branches {
            fn on_branch(&mut self, _s: StmtId, o: BranchOutcome) {
                self.0.push(o);
            }
        }
        let mut sim = Simulator::new(&m).unwrap();
        let s = m.require("s").unwrap();
        let mut obs = Branches::default();
        for v in [0u64, 1, 3] {
            sim.set_input(s, Bv::new(v, 2));
            sim.step_observed(&mut obs);
        }
        assert_eq!(
            obs.0,
            vec![
                BranchOutcome::Arm(0),
                BranchOutcome::Arm(1),
                BranchOutcome::Default
            ]
        );
    }
}
