//! Stimulus sources: the paper's *data generator* inputs.
//!
//! GoldMine seeds mining with either random input patterns or existing
//! directed/regression tests (§2.1 of the paper); counterexample traces
//! are later replayed as additional directed vectors.

use gm_rtl::{Bv, Module, SignalId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One cycle's worth of input assignments.
pub type InputVector = Vec<(SignalId, Bv)>;

/// A source of per-cycle input vectors.
pub trait Stimulus {
    /// Produces the input vector for the next cycle, or `None` when the
    /// source is exhausted.
    fn next_vector(&mut self) -> Option<InputVector>;
}

/// Uniform random stimulus over the module's data inputs.
///
/// The clock is implicit and the reset input is *not* driven here — the
/// suite runner handles the reset protocol. Reproducible via the seed.
///
/// # Examples
///
/// ```
/// use gm_sim::{RandomStimulus, Stimulus};
/// # let m = gm_rtl::parse_verilog(
/// #   "module m(input a, input b, output y); assign y = a & b; endmodule")?;
/// let mut stim = RandomStimulus::new(&m, 7, 100);
/// let mut n = 0;
/// while let Some(v) = stim.next_vector() {
///     assert_eq!(v.len(), 2);
///     n += 1;
/// }
/// assert_eq!(n, 100);
/// # Ok::<(), gm_rtl::RtlError>(())
/// ```
#[derive(Debug)]
pub struct RandomStimulus {
    inputs: Vec<(SignalId, u32)>,
    rng: SmallRng,
    remaining: u64,
}

impl RandomStimulus {
    /// Creates a random source producing `cycles` vectors over the data
    /// inputs of `module`, seeded with `seed`.
    pub fn new(module: &Module, seed: u64, cycles: u64) -> Self {
        let inputs = module
            .data_inputs()
            .into_iter()
            .map(|s| (s, module.signal_width(s)))
            .collect();
        RandomStimulus {
            inputs,
            rng: SmallRng::seed_from_u64(seed),
            remaining: cycles,
        }
    }
}

impl Stimulus for RandomStimulus {
    fn next_vector(&mut self) -> Option<InputVector> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(
            self.inputs
                .iter()
                .map(|(s, w)| (*s, Bv::new(self.rng.gen::<u64>(), *w)))
                .collect(),
        )
    }
}

/// A fixed sequence of input vectors (a directed test).
#[derive(Clone, Debug, Default)]
pub struct DirectedStimulus {
    vectors: Vec<InputVector>,
    pos: usize,
}

impl DirectedStimulus {
    /// Creates a directed test from explicit vectors.
    pub fn new(vectors: Vec<InputVector>) -> Self {
        DirectedStimulus { vectors, pos: 0 }
    }

    /// Builds a directed test from named single-bit assignments:
    /// one inner slice of `(name, value)` pairs per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`gm_rtl::RtlError::UnknownSignal`] for unresolved names.
    pub fn from_named(module: &Module, cycles: &[&[(&str, u64)]]) -> gm_rtl::Result<Self> {
        let mut vectors = Vec::with_capacity(cycles.len());
        for cyc in cycles {
            let mut v = Vec::with_capacity(cyc.len());
            for (name, value) in *cyc {
                let sig = module.require(name)?;
                v.push((sig, Bv::new(*value, module.signal_width(sig))));
            }
            vectors.push(v);
        }
        Ok(DirectedStimulus { vectors, pos: 0 })
    }

    /// The underlying vectors.
    pub fn vectors(&self) -> &[InputVector] {
        &self.vectors
    }
}

impl Stimulus for DirectedStimulus {
    fn next_vector(&mut self) -> Option<InputVector> {
        let v = self.vectors.get(self.pos)?.clone();
        self.pos += 1;
        Some(v)
    }
}

/// Synthesizes `variants` directed vector sequences from a
/// counterexample prefix.
///
/// Each variant replays `prefix` verbatim — steering the design back
/// into the state the counterexample reached — then appends
/// `extra_cycles` of random data-input vectors so the run explores
/// outward from that state instead of stopping where the witness did.
/// Variant suffixes are seeded from `seed` and the variant index only,
/// so the result is reproducible across runs and backends.
pub fn synthesize_directed(
    module: &Module,
    prefix: &[InputVector],
    seed: u64,
    extra_cycles: u64,
    variants: usize,
) -> Vec<Vec<InputVector>> {
    (0..variants as u64)
        .map(|i| {
            let mut vectors = prefix.to_vec();
            // Weyl-sequence mix keeps variant 0 distinct from a plain
            // `RandomStimulus::new(module, seed, ..)` stream.
            let variant_seed = seed ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut suffix = RandomStimulus::new(module, variant_seed, extra_cycles);
            while let Some(v) = suffix.next_vector() {
                vectors.push(v);
            }
            vectors
        })
        .collect()
}

/// Collects every vector a stimulus will produce.
pub fn collect_vectors(stim: &mut dyn Stimulus) -> Vec<InputVector> {
    let mut out = Vec::new();
    while let Some(v) = stim.next_vector() {
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::parse_verilog;

    fn module() -> Module {
        parse_verilog(
            "module m(input clk, input rst, input a, input [3:0] b, output y);
               assign y = a & b[0];
             endmodule",
        )
        .unwrap()
    }

    #[test]
    fn random_stimulus_is_reproducible() {
        let m = module();
        let v1 = collect_vectors(&mut RandomStimulus::new(&m, 42, 50));
        let v2 = collect_vectors(&mut RandomStimulus::new(&m, 42, 50));
        let v3 = collect_vectors(&mut RandomStimulus::new(&m, 43, 50));
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
        assert_eq!(v1.len(), 50);
    }

    #[test]
    fn random_stimulus_skips_clock_and_reset() {
        let m = module();
        let v = collect_vectors(&mut RandomStimulus::new(&m, 1, 3));
        let clk = m.require("clk").unwrap();
        let rst = m.require("rst").unwrap();
        for vec in &v {
            assert!(vec.iter().all(|(s, _)| *s != clk && *s != rst));
            assert_eq!(vec.len(), 2);
        }
    }

    #[test]
    fn random_values_respect_width() {
        let m = module();
        let b = m.require("b").unwrap();
        for vec in collect_vectors(&mut RandomStimulus::new(&m, 5, 100)) {
            let (_, v) = vec.iter().find(|(s, _)| *s == b).unwrap();
            assert_eq!(v.width(), 4);
            assert!(v.bits() < 16);
        }
    }

    #[test]
    fn synthesized_variants_share_the_prefix_and_diverge_after() {
        let m = module();
        let a = m.require("a").unwrap();
        let prefix: Vec<InputVector> = vec![vec![(a, Bv::one_bit())], vec![(a, Bv::zero_bit())]];
        let out = synthesize_directed(&m, &prefix, 11, 8, 3);
        assert_eq!(out.len(), 3);
        for v in &out {
            assert_eq!(v.len(), prefix.len() + 8);
            assert_eq!(&v[..prefix.len()], &prefix[..]);
        }
        assert_ne!(out[0][2..], out[1][2..], "variant suffixes must differ");
        // Deterministic: same arguments, same vectors.
        assert_eq!(out, synthesize_directed(&m, &prefix, 11, 8, 3));
        assert_ne!(out, synthesize_directed(&m, &prefix, 12, 8, 3));
    }

    #[test]
    fn directed_from_named() {
        let m = module();
        let d = DirectedStimulus::from_named(&m, &[&[("a", 1), ("b", 9)], &[("a", 0)]]).unwrap();
        assert_eq!(d.vectors().len(), 2);
        let a = m.require("a").unwrap();
        assert_eq!(d.vectors()[0][0], (a, Bv::one_bit()));
        assert!(DirectedStimulus::from_named(&m, &[&[("zz", 1)]]).is_err());
    }
}
