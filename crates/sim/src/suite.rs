//! Test suites: ordered collections of stimulus segments.
//!
//! The paper's refinement loop accumulates a *test suite*: the original
//! seed patterns plus one directed segment per counterexample. Each
//! segment starts from the design's reset state (counterexample traces
//! are reset-rooted), so segments are replayed independently.

use crate::sim::{SimObserver, Simulator};
use crate::stim::InputVector;
use crate::trace::Trace;
use gm_rtl::{Bv, Module, Result};

/// A named stimulus segment, run from reset.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Where the segment came from (seed test, counterexample id, ...).
    pub label: String,
    /// One input vector per cycle.
    pub vectors: Vec<InputVector>,
}

/// An ordered collection of segments forming the validation stimulus.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TestSuite {
    segments: Vec<Segment>,
}

impl TestSuite {
    /// Creates an empty suite.
    pub fn new() -> Self {
        TestSuite::default()
    }

    /// Appends a segment.
    pub fn push(&mut self, label: impl Into<String>, vectors: Vec<InputVector>) {
        self.segments.push(Segment {
            label: label.into(),
            vectors,
        });
    }

    /// The segments in insertion order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the suite has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total stimulus cycles across all segments (excluding reset cycles).
    pub fn total_cycles(&self) -> usize {
        self.segments.iter().map(|s| s.vectors.len()).sum()
    }

    /// Runs every segment from reset on `module`, reporting events to
    /// `obs` and returning one trace per segment.
    ///
    /// The reset protocol: if the module designates a reset input, each
    /// segment begins with one cycle of `reset = 1` (observed for
    /// coverage, *not* recorded in the trace) followed by the segment's
    /// vectors with `reset = 0`. Traces therefore start in the reset
    /// state, which is what the miner assumes.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors.
    pub fn run(&self, module: &Module, obs: &mut dyn SimObserver) -> Result<Vec<Trace>> {
        let mut traces = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            traces.push(run_segment(module, &seg.vectors, obs)?);
        }
        Ok(traces)
    }

    /// Runs every segment through the compiled bit-parallel executor
    /// with a lane block of `block` words (lane `k` of each pass
    /// replays segment `chunk*64*block + k` from reset), returning one
    /// trace per segment — trace- and coverage-identical to
    /// [`TestSuite::run`] with the interpreter. `block` is normalized
    /// to a supported width (1, 2, 4, 8); pass
    /// [`crate::SimBackend::lane_block`] when routing a config.
    pub fn run_compiled(
        &self,
        module: &Module,
        compiled: &crate::CompiledModule,
        obs: &mut dyn crate::BatchObserver,
        block: usize,
    ) -> Vec<Trace> {
        compiled
            .run_segments_batched(module, &self.segments, obs, true, None, block)
            .expect("no cancel token")
    }

    /// Like [`TestSuite::run_compiled`] but skips trace materialization
    /// — the fast path for coverage measurement, where the per-lane
    /// transpose would dominate.
    pub fn observe_compiled(
        &self,
        module: &Module,
        compiled: &crate::CompiledModule,
        obs: &mut dyn crate::BatchObserver,
        block: usize,
    ) {
        compiled.run_segments_batched(module, &self.segments, obs, false, None, block);
    }

    /// Bench-only twin of [`TestSuite::observe_compiled`] that enters
    /// the executor through the uninstrumented pre-trace path, so the
    /// recorder-overhead bench can compare the traced entry against a
    /// true baseline. Not for production callers.
    #[doc(hidden)]
    pub fn observe_compiled_baseline(
        &self,
        module: &Module,
        compiled: &crate::CompiledModule,
        obs: &mut dyn crate::BatchObserver,
        block: usize,
    ) {
        compiled.run_segments_batched_untraced(module, &self.segments, obs, false, None, block);
    }

    /// [`TestSuite::observe_compiled`] with a cooperative cancel token
    /// polled once per simulated cycle. Returns `false` when the token
    /// cut the pass short — the observer has then seen a *partial*
    /// pass, so the caller must discard whatever it accumulated.
    pub fn observe_compiled_cancellable(
        &self,
        module: &Module,
        compiled: &crate::CompiledModule,
        obs: &mut dyn crate::BatchObserver,
        cancel: Option<&std::sync::atomic::AtomicBool>,
        block: usize,
    ) -> bool {
        compiled
            .run_segments_batched(module, &self.segments, obs, false, cancel, block)
            .is_some()
    }
}

/// Runs one reset-rooted stimulus segment on a fresh simulator,
/// returning its trace. This is the replay primitive for counterexample
/// traces (the paper's `Ctx_simulation()`); [`TestSuite::run`] uses it
/// for every segment.
///
/// # Errors
///
/// Propagates elaboration errors.
pub fn run_segment(
    module: &Module,
    vectors: &[InputVector],
    obs: &mut dyn SimObserver,
) -> Result<Trace> {
    let mut span = gm_trace::span("sim", "sim.segment");
    if span.is_active() {
        span.arg("engine", "interpreter");
        span.arg("cycles", vectors.len());
    }
    let mut sim = Simulator::new(module)?;
    apply_reset(&mut sim, module, obs);
    Ok(sim.run_vectors(vectors, obs))
}

/// Drives the reset protocol on a fresh simulator: registers are already
/// at their init values; if a reset input exists, pulse it for one
/// observed cycle and deassert it.
pub(crate) fn apply_reset(sim: &mut Simulator<'_>, module: &Module, obs: &mut dyn SimObserver) {
    if let Some(rst) = module.reset() {
        for d in module.data_inputs() {
            sim.set_input(d, Bv::zeros(module.signal_width(d)));
        }
        sim.set_input(rst, Bv::one_bit());
        sim.step_observed(obs);
        sim.set_input(rst, Bv::zero_bit());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NopObserver;
    use crate::stim::{collect_vectors, DirectedStimulus, RandomStimulus};
    use gm_rtl::parse_verilog;

    const COUNTER: &str = "
    module counter(input clk, input rst, input en, output reg [2:0] q);
      always @(posedge clk)
        if (rst) q <= 0;
        else if (en) q <= q + 3'd1;
        else q <= q;
    endmodule";

    #[test]
    fn segments_run_from_reset() {
        let m = parse_verilog(COUNTER).unwrap();
        let en = m.require("en").unwrap();
        let q = m.require("q").unwrap();
        let mut suite = TestSuite::new();
        let seg: Vec<InputVector> = (0..3).map(|_| vec![(en, Bv::one_bit())]).collect();
        suite.push("seed", seg.clone());
        suite.push("cex-1", seg);
        let traces = suite.run(&m, &mut NopObserver).unwrap();
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert_eq!(t.len(), 3);
            // Row 0 is the reset state (q=0 during the first data cycle).
            assert_eq!(t.value(0, q), Bv::new(0, 3));
            assert_eq!(t.value(1, q), Bv::new(1, 3));
            assert_eq!(t.value(2, q), Bv::new(2, 3));
        }
    }

    #[test]
    fn suite_accumulates_counts() {
        let m = parse_verilog(COUNTER).unwrap();
        let mut suite = TestSuite::new();
        let mut r = RandomStimulus::new(&m, 3, 10);
        suite.push("seed", collect_vectors(&mut r));
        let mut d = DirectedStimulus::from_named(&m, &[&[("en", 1)]]).unwrap();
        suite.push("cex", collect_vectors(&mut d));
        assert_eq!(suite.len(), 2);
        assert_eq!(suite.total_cycles(), 11);
        assert_eq!(suite.segments()[1].label, "cex");
    }

    #[test]
    fn traces_reflect_directed_content() {
        let m = parse_verilog(COUNTER).unwrap();
        let q = m.require("q").unwrap();
        let mut suite = TestSuite::new();
        let vectors = DirectedStimulus::from_named(
            &m,
            &[&[("en", 1)], &[("en", 0)], &[("en", 1)], &[("en", 1)]],
        )
        .unwrap()
        .vectors()
        .to_vec();
        suite.push("directed", vectors);
        let traces = suite.run(&m, &mut NopObserver).unwrap();
        let t = &traces[0];
        assert_eq!(t.value(1, q), Bv::new(1, 3), "after one enabled cycle");
        assert_eq!(t.value(2, q), Bv::new(1, 3), "hold while disabled");
        assert_eq!(t.value(3, q), Bv::new(2, 3));
    }
}
