//! The compiled bit-parallel simulation backend.
//!
//! The tree-walking [`crate::Simulator`] re-traverses the statement AST
//! for every cycle of every stimulus vector. This module lowers an
//! elaborated module **once** into a flat, topologically ordered
//! instruction tape — SSA-style bytecode over a dense `u64` register
//! file — and executes that tape instead. No AST is touched on the hot
//! path and no [`Bv`] values are materialized between instructions.
//!
//! # Tape format
//!
//! A [`CompiledModule`] holds two tapes: the *settle* tape (every
//! combinational process, flattened in elaboration's topological order)
//! and the *edge* tape (every sequential process, writing into
//! next-state shadow registers that are committed at the clock edge, so
//! non-blocking semantics fall out of the register file layout).
//! Registers are written once per tape execution (SSA): the first
//! `signal_count` registers mirror the module's signal table, state
//! signals get one extra shadow register, constants are pre-broadcast
//! at executor construction, and every subexpression gets a fresh
//! temporary.
//!
//! Control flow is lowered to *predication*: each statement executes
//! under a 1-bit mask register, `if`/`case` refine the mask per branch
//! (first-match-wins for `case` arms), and assignments merge into their
//! destination under the mask. This makes the tape straight-line — the
//! prerequisite for running many stimulus vectors per pass.
//!
//! # Lane encoding (bit parallelism in blocks of W words)
//!
//! The same tape runs in two modes:
//!
//! * [`ScalarSim`] — one register = one `u64` value, one stimulus
//!   vector per pass. Word-level arithmetic, fastest for single
//!   segments (counterexample replay).
//! * [`BatchSim<W>`] — one register bit = a *lane block* of `W` words
//!   (`W` ∈ {1, 2, 4, 8}), where **bit `k` of block word `j` carries
//!   stimulus vector (lane) `j*64 + k`**. Bitwise ops are lane-parallel
//!   for free; arithmetic ripples carries across the bit-sliced words;
//!   predication masks become per-lane words. One tape execution
//!   simulates up to `64·W` independent reset-rooted segments
//!   simultaneously, and the per-instruction inner loops unroll over
//!   the block so tape dispatch amortizes across `W` words. Ragged
//!   segment tails keep the active-lane-mask treatment at every
//!   64-lane boundary of the block.
//!
//! Observation happens through [`BatchObserver`]: statement/branch
//! events carry a per-lane-block hit set ([`LaneSet`]), and cycle
//! boundaries expose a [`LaneSnapshot`] for toggle/FSM/trace consumers.
//! Boolean-node probes (compiled in for every width-1 non-constant
//! subexpression of watched expressions, in the same pre-order the
//! coverage collectors enumerate) are *fused* into the tape: the batch
//! executors OR-accumulate per-probe hit words inline (one true word
//! and one false word per probe per block word, no dynamic dispatch)
//! and collectors drain them in bulk through
//! [`BatchObserver::drain_probes`]. The scalar executor reports probes
//! through [`BatchObserver::on_bool_node`] with a single active lane.
//! Callers that attach no observer at all can compile a probe-free
//! tape ([`CompileOptions`] with `probes: false`) that executes no
//! observation instructions whatsoever.
//!
//! # When the interpreter is still used
//!
//! The interpreter remains the reference semantics and the differential
//! oracle: `sim/compiled_agree` proves trace- and coverage-identity on
//! the whole design catalog plus randomized modules, for every
//! supported lane-block width. Callers pick an engine via
//! [`SimBackend`]; the interpreter is also what observer code using the
//! borrowing [`crate::SimObserver`] API keeps running on.

use crate::sim::{BranchOutcome, ExprRole};
use crate::stim::InputVector;
use crate::suite::Segment;
use crate::trace::Trace;
use gm_rtl::{
    elaborate, BinaryOp, Bv, Elab, Expr, Module, Result, SignalId, Stmt, StmtId, StmtKind, UnaryOp,
};
use std::collections::HashMap;

/// The widest supported lane block, in 64-lane words (512 lanes).
pub const MAX_LANE_BLOCK: usize = 8;

/// Which simulation engine executes stimulus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SimBackend {
    /// The tree-walking interpreter ([`crate::Simulator`]): the
    /// reference semantics and the differential oracle.
    Interpreter,
    /// The compiled instruction tape, one stimulus vector per pass.
    CompiledScalar,
    /// The compiled tape in 64-lane bit-parallel mode: bit `k` of every
    /// tape word carries stimulus vector `k`, so one tape execution
    /// simulates up to 64 segments. The default.
    #[default]
    CompiledBatch,
    /// The compiled tape over a lane block of `W` words: up to `64·W`
    /// stimulus vectors per pass. The width is normalized to the
    /// nearest supported block (1, 2, 4 or 8 words → 64–512 lanes);
    /// `CompiledBatchWide(1)` is exactly [`SimBackend::CompiledBatch`].
    CompiledBatchWide(u8),
}

impl SimBackend {
    /// Words per lane block for the batch executors — 1, 2, 4 or 8,
    /// rounding an unsupported requested width up to the next
    /// supported one (capped at [`MAX_LANE_BLOCK`]). Non-batch
    /// backends run one vector at a time and report 1.
    pub fn lane_block(&self) -> usize {
        match self {
            SimBackend::CompiledBatchWide(w) => match w {
                0 | 1 => 1,
                2 => 2,
                3 | 4 => 4,
                _ => MAX_LANE_BLOCK,
            },
            _ => 1,
        }
    }

    /// Stimulus vectors simulated per pass: `64·lane_block` for the
    /// batch executors, 1 otherwise.
    pub fn lanes(&self) -> usize {
        match self {
            SimBackend::Interpreter | SimBackend::CompiledScalar => 1,
            SimBackend::CompiledBatch | SimBackend::CompiledBatchWide(_) => 64 * self.lane_block(),
        }
    }
}

/// What gets compiled into a tape beyond the design logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompileOptions {
    /// Compile observation instructions — statement/branch events and
    /// the fused boolean-node probes — into the tapes. With `false`
    /// the tape carries no observation work at all (and an empty probe
    /// table): the fast shape for trace-only callers such as
    /// counterexample replay, seed-trace generation and mining-feature
    /// extraction, which attach no coverage collector.
    pub probes: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { probes: true }
    }
}

/// The set of lanes an observation event fired in: one `u64` per block
/// word, bit `k` of word `j` = lane `j*64 + k`. The scalar executor
/// reports a single word with only bit 0 meaningful.
#[derive(Clone, Copy, Debug)]
pub struct LaneSet<'a>(&'a [u64]);

impl<'a> LaneSet<'a> {
    /// Wraps per-word lane hit masks.
    pub fn new(words: &'a [u64]) -> Self {
        LaneSet(words)
    }

    /// The raw per-word hit masks (block-sized).
    pub fn words(&self) -> &'a [u64] {
        self.0
    }

    /// Hit mask of block word `j` (0 beyond the block).
    #[inline]
    pub fn word(&self, j: usize) -> u64 {
        self.0.get(j).copied().unwrap_or(0)
    }

    /// Whether any lane is in the set.
    pub fn any(&self) -> bool {
        self.0.iter().any(|&w| w != 0)
    }

    /// Whether lane `lane` is in the set.
    #[inline]
    pub fn contains(&self, lane: u32) -> bool {
        self.word(lane as usize / 64) >> (lane % 64) & 1 == 1
    }

    /// Total lanes addressed by the set (64 per block word).
    pub fn lane_count(&self) -> u32 {
        (self.0.len() * 64) as u32
    }
}

/// A bulk view of the fused boolean-node probe hits accumulated by a
/// batch executor: which probes saw a true value and which saw a false
/// value in any active lane since the executor was created. Drained
/// through [`BatchObserver::drain_probes`].
#[derive(Debug)]
pub struct ProbeHits<'a> {
    probes: &'a [(StmtId, ExprRole, u32)],
    any_true: &'a [u64],
    any_false: &'a [u64],
    block: usize,
}

impl ProbeHits<'_> {
    /// The number of probes in the tape.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether the tape has no probes.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Calls `f(stmt, role, node, any_true, any_false)` for every probe
    /// that fired at least once with either polarity. `node` is the
    /// pre-order boolean-node index within the watched expression — the
    /// same enumeration [`BatchObserver::on_bool_node`] reports.
    pub fn for_each(&self, mut f: impl FnMut(StmtId, ExprRole, u32, bool, bool)) {
        for (p, &(stmt, role, node)) in self.probes.iter().enumerate() {
            let words = p * self.block;
            let t = self.any_true[words..words + self.block]
                .iter()
                .any(|&w| w != 0);
            let fa = self.any_false[words..words + self.block]
                .iter()
                .any(|&w| w != 0);
            if t || fa {
                f(stmt, role, node, t, fa);
            }
        }
    }
}

/// Observation hooks for compiled simulation, lane-parallel.
///
/// Statement/branch/cycle events carry a [`LaneSet`] (one stimulus
/// vector per bit of each block word); the scalar executor reports
/// single-word sets with lane 0 only. Events with an empty lane set
/// are not delivered, mirroring the interpreter (statements in untaken
/// branches produce no events).
///
/// Boolean-node probes arrive differently per executor: the scalar
/// executor dispatches [`BatchObserver::on_bool_node`] per probe
/// instruction, while the batch executors accumulate fused per-probe
/// hit words inline and deliver them in bulk through
/// [`BatchObserver::drain_probes`] — at least once per completed pass,
/// possibly batching many cycles into one drain. Probe polarity is
/// monotone (a node that was ever true in an active lane stays
/// "seen true"), so a batched drain is observationally identical to a
/// per-cycle one, and repeated drains are idempotent.
pub trait BatchObserver {
    /// A statement executed in the given lanes.
    fn on_stmt(&mut self, _stmt: StmtId, _lanes: &LaneSet<'_>) {}
    /// A control statement resolved to `outcome` in the given lanes.
    fn on_branch(&mut self, _stmt: StmtId, _outcome: BranchOutcome, _lanes: &LaneSet<'_>) {}
    /// Boolean node `node` (pre-order index among the width-1
    /// non-constant subexpressions of the watched expression, the same
    /// enumeration coverage uses) evaluated to `values` (per lane) in
    /// the given lanes. Scalar executor only; the batch executors
    /// deliver probes through [`BatchObserver::drain_probes`].
    fn on_bool_node(
        &mut self,
        _stmt: StmtId,
        _role: ExprRole,
        _node: u32,
        _values: u64,
        _lanes: u64,
    ) {
    }
    /// Fused probe hits accumulated by a batch executor, drained in
    /// bulk (see the trait docs for delivery granularity).
    fn drain_probes(&mut self, _hits: &ProbeHits<'_>) {}
    /// A cycle finished settling in the given lanes; `snap` is the
    /// settled pre-edge snapshot of every signal.
    fn on_cycle_end(&mut self, _cycle: u64, _lanes: &LaneSet<'_>, _snap: &LaneSnapshot<'_>) {}
}

/// A [`BatchObserver`] that ignores every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopBatchObserver;

impl BatchObserver for NopBatchObserver {}

/// Register index into a compiled tape's register file.
type Reg = u32;

/// One tape instruction. Operand semantics mirror [`Bv`]: operands are
/// zero-extended to the destination width, arithmetic wraps, predicates
/// produce one bit.
#[derive(Clone, Copy, Debug)]
enum Inst {
    And {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Or {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Xor {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Not {
        d: Reg,
        a: Reg,
    },
    Neg {
        d: Reg,
        a: Reg,
    },
    Add {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Sub {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Mul {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Eq {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Ne {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Lt {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Le {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Shl {
        d: Reg,
        a: Reg,
        amt: Reg,
    },
    Shr {
        d: Reg,
        a: Reg,
        amt: Reg,
    },
    ShlC {
        d: Reg,
        a: Reg,
        amt: u32,
    },
    ShrC {
        d: Reg,
        a: Reg,
        amt: u32,
    },
    RedAnd {
        d: Reg,
        a: Reg,
    },
    RedOr {
        d: Reg,
        a: Reg,
    },
    RedXor {
        d: Reg,
        a: Reg,
    },
    LogicNot {
        d: Reg,
        a: Reg,
    },
    Truth {
        d: Reg,
        a: Reg,
    },
    Mux {
        d: Reg,
        c: Reg,
        t: Reg,
        e: Reg,
    },
    Index {
        d: Reg,
        a: Reg,
        bit: u32,
    },
    Slice {
        d: Reg,
        a: Reg,
        lo: u32,
    },
    Concat {
        d: Reg,
        hi: Reg,
        lo: Reg,
    },
    Resize {
        d: Reg,
        a: Reg,
    },
    /// `d = a & !b` over 1-bit mask registers.
    AndNot {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    /// Masked merge: `d = mask ? src : d` (per lane).
    Store {
        d: Reg,
        src: Reg,
        mask: Reg,
    },
    ObsStmt {
        stmt: StmtId,
        mask: Reg,
    },
    ObsBranch {
        stmt: StmtId,
        outcome: BranchOutcome,
        mask: Reg,
    },
    ObsBool {
        probe: u32,
        val: Reg,
        mask: Reg,
    },
}

/// An elaborated module lowered to instruction tapes, shareable across
/// any number of executors.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// Combinational settle tape (processes in topological order).
    comb: Vec<Inst>,
    /// Sequential edge tape (writes next-state shadows).
    seq: Vec<Inst>,
    /// Width of each register.
    widths: Vec<u32>,
    /// Per-register bit offset for the bit-sliced arena (one lane-block
    /// of words per bit).
    base: Vec<u32>,
    /// Total bit rows in the bit-sliced arena (× block words = arena
    /// size).
    words_total: usize,
    /// Number of signals (registers `0..n` mirror the signal table).
    n_signals: usize,
    /// Power-on value per signal.
    sig_init: Vec<u64>,
    /// `(current, shadow)` register pairs for state signals.
    state_pairs: Vec<(Reg, Reg)>,
    /// Constant registers and their values, preloaded per executor.
    const_inits: Vec<(Reg, u64)>,
    /// Probe table: `ObsBool` indices resolve to `(stmt, role, node)`.
    probes: Vec<(StmtId, ExprRole, u32)>,
    /// What this tape was compiled with (probe-free tapes must not be
    /// handed to coverage-observing callers).
    options: CompileOptions,
    /// The designated reset input, for the suite reset protocol.
    reset: Option<SignalId>,
    /// Data inputs (cleared during the reset pulse).
    data_inputs: Vec<SignalId>,
}

impl CompiledModule {
    /// Elaborates `module` and lowers it to tapes with default options
    /// (probes compiled in).
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors (see [`gm_rtl::elaborate`]).
    pub fn compile(module: &Module) -> Result<Self> {
        Self::compile_with(module, CompileOptions::default())
    }

    /// Elaborates `module` and lowers it to tapes with the given
    /// options.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors (see [`gm_rtl::elaborate`]).
    pub fn compile_with(module: &Module, options: CompileOptions) -> Result<Self> {
        let elab = elaborate(module)?;
        Ok(Self::with_elab_opts(module, &elab, options))
    }

    /// Lowers an already elaborated module to tapes with default
    /// options.
    pub fn with_elab(module: &Module, elab: &Elab) -> Self {
        Self::with_elab_opts(module, elab, CompileOptions::default())
    }

    /// Lowers an already elaborated module to tapes with the given
    /// options.
    pub fn with_elab_opts(module: &Module, elab: &Elab, options: CompileOptions) -> Self {
        Compiler::lower(module, elab, options)
    }

    /// Total instruction count across both tapes.
    pub fn tape_len(&self) -> usize {
        self.comb.len() + self.seq.len()
    }

    /// The number of registers in the tape's register file.
    pub fn register_count(&self) -> usize {
        self.widths.len()
    }

    /// The number of compiled boolean-node probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// The options this tape was compiled with.
    pub fn options(&self) -> CompileOptions {
        self.options
    }

    /// Whether observation instructions (and the probe table) were
    /// compiled in.
    pub fn has_probes(&self) -> bool {
        self.options.probes
    }

    /// Approximate resident size of the compiled module — the
    /// accounting input for a design cache that parks compiled modules
    /// alongside checkers (an estimate, not an allocator figure).
    ///
    /// Beyond the tapes and tables this includes the per-executor
    /// arenas a parked tape feeds — the bit-sliced register file and
    /// the fused probe-hit buffers — sized at the widest supported
    /// lane block ([`MAX_LANE_BLOCK`]), so a byte-budgeted cache stays
    /// honest no matter which `W` a checkout later runs at.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.tape_len() * std::mem::size_of::<Inst>()
            + (self.widths.len() + self.base.len()) * std::mem::size_of::<u32>()
            + self.sig_init.len() * std::mem::size_of::<u64>()
            + self.state_pairs.len() * std::mem::size_of::<(Reg, Reg)>()
            + self.const_inits.len() * std::mem::size_of::<(Reg, u64)>()
            + self.probes.len() * std::mem::size_of::<(StmtId, ExprRole, u32)>()
            + self.data_inputs.len() * std::mem::size_of::<SignalId>()
            // Widest-case executor arena: words_total bit rows × W words.
            + self.words_total * MAX_LANE_BLOCK * std::mem::size_of::<u64>()
            // Fused probe-hit buffers (true + false word per probe per
            // block word).
            + self.probes.len() * 2 * MAX_LANE_BLOCK * std::mem::size_of::<u64>()
    }

    /// Runs one reset-rooted stimulus segment on a fresh scalar
    /// executor, mirroring [`crate::run_segment`]'s reset protocol and
    /// trace shape exactly.
    pub fn run_segment(
        &self,
        module: &Module,
        vectors: &[InputVector],
        obs: &mut dyn BatchObserver,
    ) -> Trace {
        let mut span = gm_trace::span("sim", "sim.segment");
        if span.is_active() {
            span.arg("engine", "compiled_scalar");
            span.arg("cycles", vectors.len());
        }
        let mut sim = ScalarSim::new(self);
        sim.apply_reset(obs);
        let mut trace = Trace::for_module(module);
        for vec in vectors {
            sim.set_inputs(vec);
            sim.settle_observed(obs);
            let snap = sim.snapshot();
            obs.on_cycle_end(sim.cycle(), &LaneSet::new(&[1]), &snap);
            trace.push_row_raw(snap.row(0));
            sim.clock_edge(obs);
        }
        trace
    }

    /// Runs `segments` through a batch executor with a lane block of
    /// `block` words (`64·block` lanes per pass), `collect_traces`
    /// deciding whether per-lane traces are materialized (coverage-only
    /// callers skip the transpose). Segments are dealt onto lanes in
    /// chunks of `64·block`; each chunk starts from reset, so lane `k`
    /// replays segment `chunk·64·block + k` exactly as a scalar run
    /// would. `block` is normalized to the nearest supported width
    /// (1, 2, 4, 8).
    ///
    /// The cooperative `cancel` token is polled once per simulated cycle
    /// of every chunk; a raised token returns `None` — no partial traces
    /// or coverage for the pass are published (observer callbacks up to
    /// the cancel point have already fired, which is why cancelled
    /// passes must be discarded by the caller).
    pub(crate) fn run_segments_batched(
        &self,
        module: &Module,
        segments: &[Segment],
        obs: &mut dyn BatchObserver,
        collect_traces: bool,
        cancel: Option<&std::sync::atomic::AtomicBool>,
        block: usize,
    ) -> Option<Vec<Trace>> {
        let mut span = gm_trace::span("sim", "sim.batch");
        if span.is_active() {
            span.arg("segments", segments.len());
            span.arg("lane_block", Self::normalized_block(block));
            span.arg("lanes", 64 * Self::normalized_block(block));
            span.arg("probes", self.probes.len());
            span.arg("traces", collect_traces);
            span.arg(
                "cycles",
                segments.iter().map(|s| s.vectors.len()).sum::<usize>(),
            );
        }
        let out = self.run_segments_batched_untraced(
            module,
            segments,
            obs,
            collect_traces,
            cancel,
            block,
        );
        span.arg("cancelled", out.is_none());
        out
    }

    /// [`Self::run_segments_batched`] minus the span wrapper — the
    /// pre-trace machine code, kept callable so the recorder-overhead
    /// bench can measure the instrumented entry against a true
    /// baseline on identical inner code.
    pub(crate) fn run_segments_batched_untraced(
        &self,
        module: &Module,
        segments: &[Segment],
        obs: &mut dyn BatchObserver,
        collect_traces: bool,
        cancel: Option<&std::sync::atomic::AtomicBool>,
        block: usize,
    ) -> Option<Vec<Trace>> {
        match block {
            0 | 1 => self.run_segments_blocked::<1>(module, segments, obs, collect_traces, cancel),
            2 => self.run_segments_blocked::<2>(module, segments, obs, collect_traces, cancel),
            3 | 4 => self.run_segments_blocked::<4>(module, segments, obs, collect_traces, cancel),
            _ => self.run_segments_blocked::<8>(module, segments, obs, collect_traces, cancel),
        }
    }

    /// Maps a requested lane-block width onto the supported monomorphized
    /// widths (1, 2, 4, 8) exactly as the executor dispatch does.
    fn normalized_block(block: usize) -> usize {
        match block {
            0 | 1 => 1,
            2 => 2,
            3 | 4 => 4,
            _ => 8,
        }
    }

    fn run_segments_blocked<const W: usize>(
        &self,
        module: &Module,
        segments: &[Segment],
        obs: &mut dyn BatchObserver,
        collect_traces: bool,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> Option<Vec<Trace>> {
        let cancelled = || cancel.is_some_and(|c| c.load(std::sync::atomic::Ordering::Acquire));
        let mut traces: Vec<Trace> = if collect_traces {
            segments.iter().map(|_| Trace::for_module(module)).collect()
        } else {
            Vec::new()
        };
        let lanes = 64 * W;
        for (chunk_idx, chunk) in segments.chunks(lanes).enumerate() {
            let mut sim = BatchSim::<W>::new(self);
            let mut full = [0u64; W];
            for (j, word) in full.iter_mut().enumerate() {
                *word = ones_mask(chunk.len().saturating_sub(j * 64).min(64));
            }
            sim.apply_reset(&full, obs);
            let max_len = chunk.iter().map(|s| s.vectors.len()).max().unwrap_or(0);
            for t in 0..max_len {
                if cancelled() {
                    return None;
                }
                let mut active = [0u64; W];
                for (k, seg) in chunk.iter().enumerate() {
                    if t < seg.vectors.len() {
                        active[k / 64] |= 1u64 << (k % 64);
                        for (sig, v) in &seg.vectors[t] {
                            sim.set_input_lane(k as u32, *sig, *v);
                        }
                    }
                }
                sim.settle(&active, Some(obs));
                let snap = sim.snapshot();
                obs.on_cycle_end(sim.cycle(), &LaneSet::new(&active), &snap);
                if collect_traces {
                    for k in 0..chunk.len() {
                        if active[k / 64] >> (k % 64) & 1 == 1 {
                            traces[chunk_idx * lanes + k].push_row_raw(snap.row(k as u32));
                        }
                    }
                }
                sim.clock_edge(&active, Some(obs));
            }
            sim.drain_probes_to(obs);
        }
        Some(traces)
    }
}

/// The low `n` bits set (`n` ≤ 64).
#[inline]
fn ones_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Pre-order probe assignment context for one watched expression.
#[derive(Clone, Copy)]
struct ProbeCtx {
    stmt: StmtId,
    role: ExprRole,
    mask: Reg,
    next: u32,
}

/// Lowers statements and expressions into tape instructions.
struct Compiler<'m> {
    module: &'m Module,
    widths: Vec<u32>,
    consts: HashMap<(u64, u32), Reg>,
    const_inits: Vec<(Reg, u64)>,
    probes: Vec<(StmtId, ExprRole, u32)>,
    tape: Vec<Inst>,
    next_of: Vec<Option<Reg>>,
    in_seq: bool,
    options: CompileOptions,
}

impl<'m> Compiler<'m> {
    fn lower(module: &'m Module, elab: &Elab, options: CompileOptions) -> CompiledModule {
        let n = module.signals().len();
        let mut c = Compiler {
            module,
            widths: module.signals().iter().map(|s| s.width()).collect(),
            consts: HashMap::new(),
            const_inits: Vec::new(),
            probes: Vec::new(),
            tape: Vec::new(),
            next_of: vec![None; n],
            in_seq: false,
            options,
        };
        let mut state_pairs = Vec::new();
        for sig in elab.state_signals() {
            let shadow = c.reg(module.signal_width(sig));
            c.next_of[sig.index()] = Some(shadow);
            state_pairs.push((sig.index() as Reg, shadow));
        }
        let ones = c.const_reg(1, 1);
        for &pi in elab.comb_order() {
            for st in &module.processes()[pi].body {
                c.compile_stmt(st, ones);
            }
        }
        let comb = std::mem::take(&mut c.tape);
        c.in_seq = true;
        for &pi in elab.seq_processes() {
            for st in &module.processes()[pi].body {
                c.compile_stmt(st, ones);
            }
        }
        let seq = std::mem::take(&mut c.tape);

        let mut base = Vec::with_capacity(c.widths.len());
        let mut off = 0u32;
        for &w in &c.widths {
            base.push(off);
            off += w;
        }
        CompiledModule {
            comb,
            seq,
            base,
            words_total: off as usize,
            n_signals: n,
            sig_init: module.signals().iter().map(|s| s.init().bits()).collect(),
            state_pairs,
            const_inits: c.const_inits,
            probes: c.probes,
            options,
            reset: module.reset(),
            data_inputs: module.data_inputs(),
            widths: c.widths,
        }
    }

    fn reg(&mut self, width: u32) -> Reg {
        self.widths.push(width);
        (self.widths.len() - 1) as Reg
    }

    fn const_reg(&mut self, bits: u64, width: u32) -> Reg {
        let bits = Bv::new(bits, width).bits();
        if let Some(&r) = self.consts.get(&(bits, width)) {
            return r;
        }
        let r = self.reg(width);
        self.consts.insert((bits, width), r);
        self.const_inits.push((r, bits));
        r
    }

    fn width_of(&self, e: &Expr) -> u32 {
        e.width_in(&|s: SignalId| self.module.signal_width(s))
    }

    fn emit(&mut self, inst: Inst) {
        self.tape.push(inst);
    }

    /// 1-bit truthiness of a register (the register itself when already
    /// one bit wide).
    fn truthy(&mut self, r: Reg) -> Reg {
        if self.widths[r as usize] == 1 {
            r
        } else {
            let d = self.reg(1);
            self.emit(Inst::Truth { d, a: r });
            d
        }
    }

    fn and1(&mut self, a: Reg, b: Reg) -> Reg {
        let d = self.reg(1);
        self.emit(Inst::And { d, a, b });
        d
    }

    fn or1(&mut self, a: Reg, b: Reg) -> Reg {
        let d = self.reg(1);
        self.emit(Inst::Or { d, a, b });
        d
    }

    fn andnot1(&mut self, a: Reg, b: Reg) -> Reg {
        let d = self.reg(1);
        self.emit(Inst::AndNot { d, a, b });
        d
    }

    fn resize_to(&mut self, r: Reg, w: u32) -> Reg {
        if self.widths[r as usize] == w {
            r
        } else {
            let d = self.reg(w);
            self.emit(Inst::Resize { d, a: r });
            d
        }
    }

    fn compile_watched(&mut self, e: &Expr, stmt: StmtId, role: ExprRole, mask: Reg) -> Reg {
        let mut probe = if self.options.probes {
            Some(ProbeCtx {
                stmt,
                role,
                mask,
                next: 0,
            })
        } else {
            None
        };
        self.compile_expr(e, &mut probe)
    }

    /// Compiles an expression, emitting an `ObsBool` probe for every
    /// width-1 non-constant node. Probe indices are assigned pre-order
    /// (node before children, children in syntactic order) — exactly
    /// the enumeration the coverage collectors use.
    fn compile_expr(&mut self, e: &Expr, probe: &mut Option<ProbeCtx>) -> Reg {
        let w = self.width_of(e);
        let probe_idx = match probe {
            Some(p) if w == 1 && !matches!(e, Expr::Const(_)) => {
                let i = p.next;
                p.next += 1;
                Some(i)
            }
            _ => None,
        };
        let r = match e {
            Expr::Const(b) => self.const_reg(b.bits(), b.width()),
            Expr::Signal(s) => s.index() as Reg,
            Expr::Unary(op, a) => {
                let ra = self.compile_expr(a, probe);
                let d = self.reg(w);
                let inst = match op {
                    UnaryOp::Not => Inst::Not { d, a: ra },
                    UnaryOp::Neg => Inst::Neg { d, a: ra },
                    UnaryOp::RedAnd => Inst::RedAnd { d, a: ra },
                    UnaryOp::RedOr => Inst::RedOr { d, a: ra },
                    UnaryOp::RedXor => Inst::RedXor { d, a: ra },
                    UnaryOp::LogicNot => Inst::LogicNot { d, a: ra },
                };
                self.emit(inst);
                d
            }
            Expr::Binary(op, a, b) => {
                let ra = self.compile_expr(a, probe);
                let rb = self.compile_expr(b, probe);
                match op {
                    BinaryOp::Shl | BinaryOp::Shr => self.compile_shift(*op, ra, rb, b, w),
                    BinaryOp::LogicAnd | BinaryOp::LogicOr => {
                        let ta = self.truthy(ra);
                        let tb = self.truthy(rb);
                        let d = self.reg(1);
                        self.emit(if *op == BinaryOp::LogicAnd {
                            Inst::And { d, a: ta, b: tb }
                        } else {
                            Inst::Or { d, a: ta, b: tb }
                        });
                        d
                    }
                    _ => {
                        let d = self.reg(w);
                        let inst = match op {
                            BinaryOp::And => Inst::And { d, a: ra, b: rb },
                            BinaryOp::Or => Inst::Or { d, a: ra, b: rb },
                            BinaryOp::Xor => Inst::Xor { d, a: ra, b: rb },
                            BinaryOp::Add => Inst::Add { d, a: ra, b: rb },
                            BinaryOp::Sub => Inst::Sub { d, a: ra, b: rb },
                            BinaryOp::Mul => Inst::Mul { d, a: ra, b: rb },
                            BinaryOp::Eq => Inst::Eq { d, a: ra, b: rb },
                            BinaryOp::Ne => Inst::Ne { d, a: ra, b: rb },
                            BinaryOp::Lt => Inst::Lt { d, a: ra, b: rb },
                            BinaryOp::Le => Inst::Le { d, a: ra, b: rb },
                            // `a > b` is `b < a`, mirroring Bv::eval.
                            BinaryOp::Gt => Inst::Lt { d, a: rb, b: ra },
                            BinaryOp::Ge => Inst::Le { d, a: rb, b: ra },
                            _ => unreachable!("shift/logic ops handled above"),
                        };
                        self.emit(inst);
                        d
                    }
                }
            }
            Expr::Mux {
                cond,
                then_val,
                else_val,
            } => {
                let rc = self.compile_expr(cond, probe);
                let rt = self.compile_expr(then_val, probe);
                let re = self.compile_expr(else_val, probe);
                let tc = self.truthy(rc);
                let d = self.reg(w);
                self.emit(Inst::Mux {
                    d,
                    c: tc,
                    t: rt,
                    e: re,
                });
                d
            }
            Expr::Index { base, bit } => {
                let ra = self.compile_expr(base, probe);
                let d = self.reg(1);
                self.emit(Inst::Index {
                    d,
                    a: ra,
                    bit: *bit,
                });
                d
            }
            Expr::Slice { base, hi: _, lo } => {
                let ra = self.compile_expr(base, probe);
                let d = self.reg(w);
                self.emit(Inst::Slice { d, a: ra, lo: *lo });
                d
            }
            Expr::Concat(parts) => {
                let regs: Vec<Reg> = parts.iter().map(|p| self.compile_expr(p, probe)).collect();
                let mut acc = regs[0];
                for &lo in &regs[1..] {
                    let wd = self.widths[acc as usize] + self.widths[lo as usize];
                    let d = self.reg(wd);
                    self.emit(Inst::Concat { d, hi: acc, lo });
                    acc = d;
                }
                acc
            }
        };
        if let Some(i) = probe_idx {
            let p = probe.as_ref().expect("probe context present");
            let pid = self.probes.len() as u32;
            self.probes.push((p.stmt, p.role, i));
            self.emit(Inst::ObsBool {
                probe: pid,
                val: r,
                mask: p.mask,
            });
        }
        r
    }

    /// Shifts keep the left operand's width; constant amounts at or
    /// beyond the width fold to zero, in-range constants specialize to
    /// fixed word moves, and variable amounts go through the barrel
    /// instruction.
    fn compile_shift(&mut self, op: BinaryOp, ra: Reg, rb: Reg, b: &Expr, w: u32) -> Reg {
        if let Expr::Const(c) = b {
            if c.bits() >= u64::from(w) {
                return self.const_reg(0, w);
            }
            let amt = c.bits() as u32;
            if amt == 0 {
                return ra;
            }
            let d = self.reg(w);
            self.emit(if op == BinaryOp::Shl {
                Inst::ShlC { d, a: ra, amt }
            } else {
                Inst::ShrC { d, a: ra, amt }
            });
            return d;
        }
        let d = self.reg(w);
        self.emit(if op == BinaryOp::Shl {
            Inst::Shl { d, a: ra, amt: rb }
        } else {
            Inst::Shr { d, a: ra, amt: rb }
        });
        d
    }

    fn compile_stmt(&mut self, stmt: &Stmt, mask: Reg) {
        if self.options.probes {
            self.emit(Inst::ObsStmt {
                stmt: stmt.id,
                mask,
            });
        }
        match &stmt.kind {
            StmtKind::Assign { lhs, rhs } => {
                let r = self.compile_watched(rhs, stmt.id, ExprRole::AssignRhs, mask);
                let w = self.module.signal_width(*lhs);
                let src = self.resize_to(r, w);
                let d = if self.in_seq {
                    self.next_of[lhs.index()].expect("sequential writes target state signals")
                } else {
                    lhs.index() as Reg
                };
                self.emit(Inst::Store { d, src, mask });
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let rc = self.compile_watched(cond, stmt.id, ExprRole::Condition, mask);
                let taken = self.truthy(rc);
                let then_mask = self.and1(mask, taken);
                let else_mask = self.andnot1(mask, taken);
                if self.options.probes {
                    self.emit(Inst::ObsBranch {
                        stmt: stmt.id,
                        outcome: BranchOutcome::Then,
                        mask: then_mask,
                    });
                    self.emit(Inst::ObsBranch {
                        stmt: stmt.id,
                        outcome: BranchOutcome::Else,
                        mask: else_mask,
                    });
                }
                for s in then_body {
                    self.compile_stmt(s, then_mask);
                }
                for s in else_body {
                    self.compile_stmt(s, else_mask);
                }
            }
            StmtKind::Case {
                subject,
                arms,
                default,
            } => {
                let rs = self.compile_watched(subject, stmt.id, ExprRole::CaseSubject, mask);
                // First matching arm wins: arm i takes lanes where one
                // of its labels matches and no earlier arm matched.
                let mut matched: Option<Reg> = None;
                for (i, arm) in arms.iter().enumerate() {
                    let mut hit: Option<Reg> = None;
                    for label in &arm.labels {
                        let lc = self.const_reg(label.bits(), label.width());
                        let d = self.reg(1);
                        self.emit(Inst::Eq { d, a: rs, b: lc });
                        hit = Some(match hit {
                            None => d,
                            Some(h) => self.or1(h, d),
                        });
                    }
                    let hit = match hit {
                        Some(h) => h,
                        None => self.const_reg(0, 1),
                    };
                    let take = match matched {
                        None => self.and1(mask, hit),
                        Some(m) => {
                            let fresh = self.andnot1(hit, m);
                            self.and1(mask, fresh)
                        }
                    };
                    matched = Some(match matched {
                        None => hit,
                        Some(m) => self.or1(m, hit),
                    });
                    if self.options.probes {
                        self.emit(Inst::ObsBranch {
                            stmt: stmt.id,
                            outcome: BranchOutcome::Arm(i as u32),
                            mask: take,
                        });
                    }
                    for s in &arm.body {
                        self.compile_stmt(s, take);
                    }
                }
                let def_mask = match matched {
                    None => mask,
                    Some(m) => self.andnot1(mask, m),
                };
                if self.options.probes {
                    self.emit(Inst::ObsBranch {
                        stmt: stmt.id,
                        outcome: BranchOutcome::Default,
                        mask: def_mask,
                    });
                }
                if let Some(d) = default {
                    for s in d {
                        self.compile_stmt(s, def_mask);
                    }
                }
            }
        }
    }
}

#[inline]
fn vmask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// A settled pre-edge snapshot of every signal, readable per bit-lane
/// word or per lane value. Produced by both executors so observers are
/// mode-agnostic.
#[derive(Debug)]
pub struct LaneSnapshot<'a> {
    widths: &'a [u32],
    mode: SnapMode<'a>,
}

#[derive(Debug)]
enum SnapMode<'a> {
    /// One value word per signal; lane 0 is the only lane.
    Scalar { values: &'a [u64] },
    /// Bit-sliced arena: `words[(base[sig] + bit) * block + j]` is
    /// block word `j` of one signal bit.
    Batch {
        words: &'a [u64],
        base: &'a [u32],
        block: usize,
    },
}

impl LaneSnapshot<'_> {
    /// The number of signals in the snapshot.
    pub fn signal_count(&self) -> usize {
        self.widths.len()
    }

    /// Words per lane block: 1 for the scalar executor, the executor's
    /// `W` for batch snapshots.
    pub fn block(&self) -> usize {
        match &self.mode {
            SnapMode::Scalar { .. } => 1,
            SnapMode::Batch { block, .. } => *block,
        }
    }

    /// How many lanes this snapshot carries: 1 for the scalar executor,
    /// `64·block` for a batch executor (inactive lanes included — mask
    /// with the [`LaneSet`] delivered alongside the snapshot).
    pub fn lane_count(&self) -> u32 {
        match &self.mode {
            SnapMode::Scalar { .. } => 1,
            SnapMode::Batch { block, .. } => (64 * block) as u32,
        }
    }

    /// The width of a signal.
    pub fn width(&self, sig: SignalId) -> u32 {
        self.widths[sig.index()]
    }

    /// Block word `word` of one bit of `sig`: bit `k` of the result is
    /// lane `word*64 + k`'s value of `sig[bit]`. Scalar snapshots have
    /// one block word (lane 0 in bit 0).
    #[inline]
    pub fn bit_word(&self, sig: SignalId, bit: u32, word: usize) -> u64 {
        match &self.mode {
            SnapMode::Scalar { values } => {
                debug_assert_eq!(word, 0, "scalar snapshots have one block word");
                (values[sig.index()] >> bit) & 1
            }
            SnapMode::Batch { words, base, block } => {
                words[(base[sig.index()] + bit) as usize * block + word]
            }
        }
    }

    /// The value of `sig` in lane `lane`.
    pub fn value(&self, sig: SignalId, lane: u32) -> Bv {
        let w = self.widths[sig.index()];
        match &self.mode {
            SnapMode::Scalar { values } => {
                debug_assert_eq!(lane, 0, "scalar snapshots have one lane");
                Bv::new(values[sig.index()], w)
            }
            SnapMode::Batch { words, base, block } => {
                let b = base[sig.index()] as usize;
                let (word, bit) = ((lane / 64) as usize, lane % 64);
                let mut bits = 0u64;
                for i in 0..w as usize {
                    bits |= ((words[(b + i) * block + word] >> bit) & 1) << i;
                }
                Bv::new(bits, w)
            }
        }
    }

    /// Raw trace row (one `u64` of bits per signal) for `lane`.
    pub(crate) fn row(&self, lane: u32) -> Vec<u64> {
        match &self.mode {
            SnapMode::Scalar { values } => values.to_vec(),
            SnapMode::Batch { .. } => (0..self.widths.len())
                .map(|i| self.value(SignalId::from_raw(i as u32), lane).bits())
                .collect(),
        }
    }
}

/// Scalar executor for a [`CompiledModule`]: one stimulus vector per
/// pass, one `u64` value per register. The drop-in replacement for
/// [`crate::Simulator`] on single-segment paths (counterexample
/// replay), reporting through [`BatchObserver`] with a single lane.
#[derive(Debug)]
pub struct ScalarSim<'c> {
    c: &'c CompiledModule,
    regs: Vec<u64>,
    cycle: u64,
}

impl<'c> ScalarSim<'c> {
    /// Creates an executor at the reset state.
    pub fn new(c: &'c CompiledModule) -> Self {
        let mut regs = vec![0u64; c.widths.len()];
        for &(r, bits) in &c.const_inits {
            regs[r as usize] = bits;
        }
        regs[..c.n_signals].copy_from_slice(&c.sig_init);
        ScalarSim { c, regs, cycle: 0 }
    }

    /// The number of completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The current value of a signal.
    pub fn value(&self, sig: SignalId) -> Bv {
        Bv::new(self.regs[sig.index()], self.c.widths[sig.index()])
    }

    /// Drives an input (values are truncated/extended to the width).
    pub fn set_input(&mut self, sig: SignalId, value: Bv) {
        self.regs[sig.index()] = value.resize(self.c.widths[sig.index()]).bits();
    }

    /// Drives several inputs at once.
    pub fn set_inputs(&mut self, inputs: &[(SignalId, Bv)]) {
        for (s, v) in inputs {
            self.set_input(*s, *v);
        }
    }

    /// Returns registers to their declared init values, clears inputs
    /// and resets the cycle counter.
    pub fn reset_to_initial(&mut self) {
        self.regs[..self.c.n_signals].copy_from_slice(&self.c.sig_init);
        self.cycle = 0;
    }

    /// The settled snapshot view.
    pub fn snapshot(&self) -> LaneSnapshot<'_> {
        LaneSnapshot {
            widths: &self.c.widths[..self.c.n_signals],
            mode: SnapMode::Scalar {
                values: &self.regs[..self.c.n_signals],
            },
        }
    }

    /// Settles combinational logic without advancing the clock.
    pub fn settle(&mut self) {
        exec_scalar(self.c, &mut self.regs, &self.c.comb, &mut None);
    }

    /// Settles combinational logic, reporting events to `obs`.
    pub fn settle_observed(&mut self, obs: &mut dyn BatchObserver) {
        let mut o: Option<&mut dyn BatchObserver> = Some(obs);
        exec_scalar(self.c, &mut self.regs, &self.c.comb, &mut o);
    }

    /// Fires the sequential processes and commits next state.
    pub fn clock_edge(&mut self, obs: &mut dyn BatchObserver) {
        for &(cur, next) in &self.c.state_pairs {
            self.regs[next as usize] = self.regs[cur as usize];
        }
        let mut o: Option<&mut dyn BatchObserver> = Some(obs);
        exec_scalar(self.c, &mut self.regs, &self.c.seq, &mut o);
        for &(cur, next) in &self.c.state_pairs {
            self.regs[cur as usize] = self.regs[next as usize];
        }
        self.cycle += 1;
    }

    /// Runs one full clock cycle: settle, sample, clock edge.
    pub fn step(&mut self) {
        self.step_observed(&mut NopBatchObserver);
    }

    /// Runs one full clock cycle, reporting events to `obs`.
    pub fn step_observed(&mut self, obs: &mut dyn BatchObserver) {
        self.settle_observed(obs);
        obs.on_cycle_end(self.cycle, &LaneSet::new(&[1]), &self.snapshot());
        self.clock_edge(obs);
    }

    /// Drives the suite reset protocol: zero the data inputs, pulse the
    /// designated reset for one observed cycle, deassert it. A no-op
    /// for modules without a reset input.
    pub fn apply_reset(&mut self, obs: &mut dyn BatchObserver) {
        if let Some(rst) = self.c.reset {
            for &d in &self.c.data_inputs {
                self.regs[d.index()] = 0;
            }
            self.set_input(rst, Bv::one_bit());
            self.step_observed(obs);
            self.set_input(rst, Bv::zero_bit());
        }
    }
}

/// Bit-parallel executor for a [`CompiledModule`] over a lane block of
/// `W` words: bit `k` of block word `j` carries stimulus vector
/// `j*64 + k`, so one tape execution advances up to `64·W` independent
/// simulations by one cycle. `W` must be one of 1, 2, 4, 8 (the widths
/// [`SimBackend::lane_block`] normalizes to); [`BatchSim`] with the
/// default `W = 1` is the PR 5 64-lane executor.
///
/// Fused boolean-node probe hits accumulate inside the executor (one
/// true/false word pair per probe per block word) and are delivered
/// through [`BatchSim::drain_probes_to`] — automatically at the end of
/// every [`BatchSim::step_observed`].
#[derive(Debug)]
pub struct BatchSim<'c, const W: usize = 1> {
    c: &'c CompiledModule,
    words: Vec<u64>,
    probe_true: Vec<u64>,
    probe_false: Vec<u64>,
    cycle: u64,
}

impl<'c, const W: usize> BatchSim<'c, W> {
    /// Creates an executor with every lane at the reset state.
    pub fn new(c: &'c CompiledModule) -> Self {
        let mut words = vec![0u64; c.words_total * W];
        for &(r, bits) in &c.const_inits {
            broadcast::<W>(&mut words, c.base[r as usize], c.widths[r as usize], bits);
        }
        for i in 0..c.n_signals {
            broadcast::<W>(&mut words, c.base[i], c.widths[i], c.sig_init[i]);
        }
        BatchSim {
            c,
            words,
            probe_true: vec![0u64; c.probes.len() * W],
            probe_false: vec![0u64; c.probes.len() * W],
            cycle: 0,
        }
    }

    /// The number of completed cycles (shared by every lane).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Stimulus vectors per pass (`64·W`).
    pub fn lane_count(&self) -> u32 {
        (64 * W) as u32
    }

    /// Drives an input in one lane.
    pub fn set_input_lane(&mut self, lane: u32, sig: SignalId, value: Bv) {
        let w = self.c.widths[sig.index()];
        let bits = value.resize(w).bits();
        let b = self.c.base[sig.index()] as usize;
        let (word, bit) = ((lane / 64) as usize, lane % 64);
        for i in 0..w as usize {
            let slot = &mut self.words[(b + i) * W + word];
            *slot = (*slot & !(1u64 << bit)) | (((bits >> i) & 1) << bit);
        }
    }

    /// Drives an input identically in every lane.
    pub fn set_input_all(&mut self, sig: SignalId, value: Bv) {
        let w = self.c.widths[sig.index()];
        let bits = value.resize(w).bits();
        broadcast::<W>(&mut self.words, self.c.base[sig.index()], w, bits);
    }

    /// The value of `sig` in lane `lane`.
    pub fn lane_value(&self, sig: SignalId, lane: u32) -> Bv {
        self.snapshot().value(sig, lane)
    }

    /// The settled snapshot view.
    pub fn snapshot(&self) -> LaneSnapshot<'_> {
        LaneSnapshot {
            widths: &self.c.widths[..self.c.n_signals],
            mode: SnapMode::Batch {
                words: &self.words,
                base: &self.c.base[..self.c.n_signals],
                block: W,
            },
        }
    }

    /// Settles combinational logic in every lane; observations are
    /// restricted to `active` lanes.
    pub fn settle(&mut self, active: &[u64; W], obs: Option<&mut dyn BatchObserver>) {
        let mut o = obs;
        exec_wide::<W>(
            self.c,
            &mut self.words,
            &mut self.probe_true,
            &mut self.probe_false,
            &self.c.comb,
            active,
            &mut o,
        );
    }

    /// Fires the sequential processes and commits next state in every
    /// lane; observations are restricted to `active` lanes.
    pub fn clock_edge(&mut self, active: &[u64; W], obs: Option<&mut dyn BatchObserver>) {
        for &(cur, next) in &self.c.state_pairs {
            let (cb, nb) = (
                self.c.base[cur as usize] as usize,
                self.c.base[next as usize] as usize,
            );
            for i in 0..self.c.widths[cur as usize] as usize * W {
                self.words[nb * W + i] = self.words[cb * W + i];
            }
        }
        let mut o = obs;
        exec_wide::<W>(
            self.c,
            &mut self.words,
            &mut self.probe_true,
            &mut self.probe_false,
            &self.c.seq,
            active,
            &mut o,
        );
        for &(cur, next) in &self.c.state_pairs {
            let (cb, nb) = (
                self.c.base[cur as usize] as usize,
                self.c.base[next as usize] as usize,
            );
            for i in 0..self.c.widths[cur as usize] as usize * W {
                self.words[cb * W + i] = self.words[nb * W + i];
            }
        }
        self.cycle += 1;
    }

    /// Runs one full clock cycle, reporting events to `obs` (including
    /// a probe drain after the edge).
    pub fn step_observed(&mut self, active: &[u64; W], obs: &mut dyn BatchObserver) {
        self.settle(active, Some(obs));
        obs.on_cycle_end(self.cycle, &LaneSet::new(active), &self.snapshot());
        self.clock_edge(active, Some(obs));
        self.drain_probes_to(obs);
    }

    /// Delivers the accumulated fused probe hits to `obs`. Hits are
    /// cumulative since executor construction and monotone, so draining
    /// repeatedly (or once at the end of a multi-cycle run) yields the
    /// same collector state as a per-cycle drain.
    pub fn drain_probes_to(&self, obs: &mut dyn BatchObserver) {
        if self.c.probes.is_empty() {
            return;
        }
        obs.drain_probes(&ProbeHits {
            probes: &self.c.probes,
            any_true: &self.probe_true,
            any_false: &self.probe_false,
            block: W,
        });
    }

    /// Drives the suite reset protocol in every active lane (see
    /// [`ScalarSim::apply_reset`]).
    pub fn apply_reset(&mut self, active: &[u64; W], obs: &mut dyn BatchObserver) {
        let c = self.c;
        if let Some(rst) = c.reset {
            for &d in &c.data_inputs {
                broadcast::<W>(&mut self.words, c.base[d.index()], c.widths[d.index()], 0);
            }
            self.set_input_all(rst, Bv::one_bit());
            self.step_observed(active, obs);
            self.set_input_all(rst, Bv::zero_bit());
        }
    }
}

/// Writes `bits` into every lane of a bit-sliced register.
#[inline]
fn broadcast<const W: usize>(words: &mut [u64], base: u32, width: u32, bits: u64) {
    for i in 0..width as usize {
        let v = if (bits >> i) & 1 == 1 { u64::MAX } else { 0 };
        for j in 0..W {
            words[(base as usize + i) * W + j] = v;
        }
    }
}

/// Executes one tape in scalar mode.
fn exec_scalar(
    c: &CompiledModule,
    regs: &mut [u64],
    tape: &[Inst],
    obs: &mut Option<&mut dyn BatchObserver>,
) {
    let wd = |r: Reg| c.widths[r as usize];
    for inst in tape {
        match *inst {
            Inst::And { d, a, b } => regs[d as usize] = regs[a as usize] & regs[b as usize],
            Inst::Or { d, a, b } => regs[d as usize] = regs[a as usize] | regs[b as usize],
            Inst::Xor { d, a, b } => regs[d as usize] = regs[a as usize] ^ regs[b as usize],
            Inst::Not { d, a } => regs[d as usize] = !regs[a as usize] & vmask(wd(d)),
            Inst::Neg { d, a } => regs[d as usize] = regs[a as usize].wrapping_neg() & vmask(wd(d)),
            Inst::Add { d, a, b } => {
                regs[d as usize] = regs[a as usize].wrapping_add(regs[b as usize]) & vmask(wd(d));
            }
            Inst::Sub { d, a, b } => {
                regs[d as usize] = regs[a as usize].wrapping_sub(regs[b as usize]) & vmask(wd(d));
            }
            Inst::Mul { d, a, b } => {
                regs[d as usize] = regs[a as usize].wrapping_mul(regs[b as usize]) & vmask(wd(d));
            }
            Inst::Eq { d, a, b } => {
                regs[d as usize] = u64::from(regs[a as usize] == regs[b as usize]);
            }
            Inst::Ne { d, a, b } => {
                regs[d as usize] = u64::from(regs[a as usize] != regs[b as usize]);
            }
            Inst::Lt { d, a, b } => {
                regs[d as usize] = u64::from(regs[a as usize] < regs[b as usize]);
            }
            Inst::Le { d, a, b } => {
                regs[d as usize] = u64::from(regs[a as usize] <= regs[b as usize]);
            }
            Inst::Shl { d, a, amt } => {
                let w = wd(d);
                let sh = regs[amt as usize];
                regs[d as usize] = if sh >= u64::from(w) {
                    0
                } else {
                    (regs[a as usize] << sh) & vmask(w)
                };
            }
            Inst::Shr { d, a, amt } => {
                let sh = regs[amt as usize];
                regs[d as usize] = if sh >= u64::from(wd(d)) {
                    0
                } else {
                    regs[a as usize] >> sh
                };
            }
            Inst::ShlC { d, a, amt } => {
                regs[d as usize] = (regs[a as usize] << amt) & vmask(wd(d));
            }
            Inst::ShrC { d, a, amt } => regs[d as usize] = regs[a as usize] >> amt,
            Inst::RedAnd { d, a } => {
                regs[d as usize] = u64::from(regs[a as usize] == vmask(wd(a)));
            }
            Inst::RedOr { d, a } | Inst::Truth { d, a } => {
                regs[d as usize] = u64::from(regs[a as usize] != 0);
            }
            Inst::RedXor { d, a } => {
                regs[d as usize] = u64::from(regs[a as usize].count_ones() % 2 == 1);
            }
            Inst::LogicNot { d, a } => regs[d as usize] = u64::from(regs[a as usize] == 0),
            Inst::Mux { d, c: cnd, t, e } => {
                regs[d as usize] = if regs[cnd as usize] != 0 {
                    regs[t as usize]
                } else {
                    regs[e as usize]
                };
            }
            Inst::Index { d, a, bit } => regs[d as usize] = (regs[a as usize] >> bit) & 1,
            Inst::Slice { d, a, lo } => {
                regs[d as usize] = (regs[a as usize] >> lo) & vmask(wd(d));
            }
            Inst::Concat { d, hi, lo } => {
                regs[d as usize] = (regs[hi as usize] << wd(lo)) | regs[lo as usize];
            }
            Inst::Resize { d, a } => regs[d as usize] = regs[a as usize] & vmask(wd(d)),
            Inst::AndNot { d, a, b } => {
                regs[d as usize] = regs[a as usize] & !regs[b as usize] & 1;
            }
            Inst::Store { d, src, mask } => {
                if regs[mask as usize] != 0 {
                    regs[d as usize] = regs[src as usize];
                }
            }
            Inst::ObsStmt { stmt, mask } => {
                if let Some(o) = obs.as_deref_mut() {
                    if regs[mask as usize] & 1 != 0 {
                        o.on_stmt(stmt, &LaneSet::new(&[1]));
                    }
                }
            }
            Inst::ObsBranch {
                stmt,
                outcome,
                mask,
            } => {
                if let Some(o) = obs.as_deref_mut() {
                    if regs[mask as usize] & 1 != 0 {
                        o.on_branch(stmt, outcome, &LaneSet::new(&[1]));
                    }
                }
            }
            Inst::ObsBool { probe, val, mask } => {
                if let Some(o) = obs.as_deref_mut() {
                    let lanes = regs[mask as usize] & 1;
                    if lanes != 0 {
                        let (stmt, role, node) = c.probes[probe as usize];
                        o.on_bool_node(stmt, role, node, regs[val as usize] & 1, lanes);
                    }
                }
            }
        }
    }
}

/// Executes one tape in bit-parallel mode over a lane block of `W`
/// words. Every lane computes on every instruction; observation events
/// are masked to `active`. Boolean-node probes are *fused*: instead of
/// dispatching through the observer per instruction, their per-lane
/// true/false hits OR-accumulate into `pt`/`pf` (one word per probe
/// per block word) for a bulk drain after the run.
fn exec_wide<const W: usize>(
    c: &CompiledModule,
    words: &mut [u64],
    pt: &mut [u64],
    pf: &mut [u64],
    tape: &[Inst],
    active: &[u64; W],
    obs: &mut Option<&mut dyn BatchObserver>,
) {
    let base = &c.base;
    let widths = &c.widths;
    let observing = obs.is_some();
    // Reads zero-extend: bits beyond a register's width read as zero.
    macro_rules! gw {
        ($r:expr, $i:expr, $j:expr) => {{
            let r = $r as usize;
            if ($i as u32) < widths[r] {
                words[(base[r] as usize + $i as usize) * W + $j]
            } else {
                0u64
            }
        }};
    }
    macro_rules! di {
        ($d:expr, $i:expr, $j:expr) => {
            (base[$d as usize] as usize + $i as usize) * W + $j
        };
    }
    for inst in tape {
        match *inst {
            Inst::And { d, a, b } => {
                for i in 0..widths[d as usize] {
                    for j in 0..W {
                        words[di!(d, i, j)] = gw!(a, i, j) & gw!(b, i, j);
                    }
                }
            }
            Inst::Or { d, a, b } => {
                for i in 0..widths[d as usize] {
                    for j in 0..W {
                        words[di!(d, i, j)] = gw!(a, i, j) | gw!(b, i, j);
                    }
                }
            }
            Inst::Xor { d, a, b } => {
                for i in 0..widths[d as usize] {
                    for j in 0..W {
                        words[di!(d, i, j)] = gw!(a, i, j) ^ gw!(b, i, j);
                    }
                }
            }
            Inst::Not { d, a } => {
                for i in 0..widths[d as usize] {
                    for j in 0..W {
                        words[di!(d, i, j)] = !gw!(a, i, j);
                    }
                }
            }
            Inst::Neg { d, a } => {
                // ~a + 1 via a carry ripple seeded with all-ones.
                let mut carry = [u64::MAX; W];
                for i in 0..widths[d as usize] {
                    for j in 0..W {
                        let x = !gw!(a, i, j);
                        words[di!(d, i, j)] = x ^ carry[j];
                        carry[j] &= x;
                    }
                }
            }
            Inst::Add { d, a, b } => {
                let mut carry = [0u64; W];
                for i in 0..widths[d as usize] {
                    for j in 0..W {
                        let x = gw!(a, i, j);
                        let y = gw!(b, i, j);
                        words[di!(d, i, j)] = x ^ y ^ carry[j];
                        carry[j] = (x & y) | (carry[j] & (x ^ y));
                    }
                }
            }
            Inst::Sub { d, a, b } => {
                let mut borrow = [0u64; W];
                for i in 0..widths[d as usize] {
                    for j in 0..W {
                        let x = gw!(a, i, j);
                        let y = gw!(b, i, j);
                        words[di!(d, i, j)] = x ^ y ^ borrow[j];
                        borrow[j] = (!x & y) | (!(x ^ y) & borrow[j]);
                    }
                }
            }
            Inst::Mul { d, a, b } => {
                let w = widths[d as usize];
                let mut acc = [[0u64; W]; 64];
                for s in 0..w.min(widths[b as usize]) {
                    for j in 0..W {
                        let m = gw!(b, s, j);
                        if m == 0 {
                            continue;
                        }
                        let mut carry = 0u64;
                        for i in s..w {
                            let x = acc[i as usize][j];
                            let y = gw!(a, i - s, j) & m;
                            acc[i as usize][j] = x ^ y ^ carry;
                            carry = (x & y) | (carry & (x ^ y));
                        }
                    }
                }
                for i in 0..w {
                    for j in 0..W {
                        words[di!(d, i, j)] = acc[i as usize][j];
                    }
                }
            }
            Inst::Eq { d, a, b } => {
                let wm = widths[a as usize].max(widths[b as usize]);
                let mut eq = [u64::MAX; W];
                for i in 0..wm {
                    for j in 0..W {
                        eq[j] &= !(gw!(a, i, j) ^ gw!(b, i, j));
                    }
                }
                for j in 0..W {
                    words[di!(d, 0, j)] = eq[j];
                }
            }
            Inst::Ne { d, a, b } => {
                let wm = widths[a as usize].max(widths[b as usize]);
                let mut eq = [u64::MAX; W];
                for i in 0..wm {
                    for j in 0..W {
                        eq[j] &= !(gw!(a, i, j) ^ gw!(b, i, j));
                    }
                }
                for j in 0..W {
                    words[di!(d, 0, j)] = !eq[j];
                }
            }
            Inst::Lt { d, a, b } => {
                let wm = widths[a as usize].max(widths[b as usize]);
                let mut lt = [0u64; W];
                for i in 0..wm {
                    for j in 0..W {
                        let x = gw!(a, i, j);
                        let y = gw!(b, i, j);
                        lt[j] = (!x & y) | (!(x ^ y) & lt[j]);
                    }
                }
                for j in 0..W {
                    words[di!(d, 0, j)] = lt[j];
                }
            }
            Inst::Le { d, a, b } => {
                let wm = widths[a as usize].max(widths[b as usize]);
                let mut lt = [0u64; W];
                let mut eq = [u64::MAX; W];
                for i in 0..wm {
                    for j in 0..W {
                        let x = gw!(a, i, j);
                        let y = gw!(b, i, j);
                        lt[j] = (!x & y) | (!(x ^ y) & lt[j]);
                        eq[j] &= !(x ^ y);
                    }
                }
                for j in 0..W {
                    words[di!(d, 0, j)] = lt[j] | eq[j];
                }
            }
            Inst::Shl { d, a, amt } => {
                let w = widths[d as usize];
                let mut cur = [[0u64; W]; 64];
                for i in 0..w {
                    for j in 0..W {
                        cur[i as usize][j] = gw!(a, i, j);
                    }
                }
                barrel_wide::<W>(&mut cur, w, c, words, amt, true);
                for i in 0..w {
                    for j in 0..W {
                        words[di!(d, i, j)] = cur[i as usize][j];
                    }
                }
            }
            Inst::Shr { d, a, amt } => {
                let w = widths[d as usize];
                let mut cur = [[0u64; W]; 64];
                for i in 0..w {
                    for j in 0..W {
                        cur[i as usize][j] = gw!(a, i, j);
                    }
                }
                barrel_wide::<W>(&mut cur, w, c, words, amt, false);
                for i in 0..w {
                    for j in 0..W {
                        words[di!(d, i, j)] = cur[i as usize][j];
                    }
                }
            }
            Inst::ShlC { d, a, amt } => {
                let w = widths[d as usize];
                for i in (0..w).rev() {
                    for j in 0..W {
                        words[di!(d, i, j)] = if i >= amt { gw!(a, i - amt, j) } else { 0 };
                    }
                }
            }
            Inst::ShrC { d, a, amt } => {
                let w = widths[d as usize];
                for i in 0..w {
                    for j in 0..W {
                        words[di!(d, i, j)] = gw!(a, i + amt, j);
                    }
                }
            }
            Inst::RedAnd { d, a } => {
                let mut r = [u64::MAX; W];
                for i in 0..widths[a as usize] {
                    for j in 0..W {
                        r[j] &= gw!(a, i, j);
                    }
                }
                for j in 0..W {
                    words[di!(d, 0, j)] = r[j];
                }
            }
            Inst::RedOr { d, a } | Inst::Truth { d, a } => {
                let mut r = [0u64; W];
                for i in 0..widths[a as usize] {
                    for j in 0..W {
                        r[j] |= gw!(a, i, j);
                    }
                }
                for j in 0..W {
                    words[di!(d, 0, j)] = r[j];
                }
            }
            Inst::RedXor { d, a } => {
                let mut r = [0u64; W];
                for i in 0..widths[a as usize] {
                    for j in 0..W {
                        r[j] ^= gw!(a, i, j);
                    }
                }
                for j in 0..W {
                    words[di!(d, 0, j)] = r[j];
                }
            }
            Inst::LogicNot { d, a } => {
                let mut r = [0u64; W];
                for i in 0..widths[a as usize] {
                    for j in 0..W {
                        r[j] |= gw!(a, i, j);
                    }
                }
                for j in 0..W {
                    words[di!(d, 0, j)] = !r[j];
                }
            }
            Inst::Mux { d, c: cnd, t, e } => {
                for j in 0..W {
                    let m = gw!(cnd, 0, j);
                    for i in 0..widths[d as usize] {
                        words[di!(d, i, j)] = (m & gw!(t, i, j)) | (!m & gw!(e, i, j));
                    }
                }
            }
            Inst::Index { d, a, bit } => {
                for j in 0..W {
                    words[di!(d, 0, j)] = gw!(a, bit, j);
                }
            }
            Inst::Slice { d, a, lo } => {
                for i in 0..widths[d as usize] {
                    for j in 0..W {
                        words[di!(d, i, j)] = gw!(a, lo + i, j);
                    }
                }
            }
            Inst::Concat { d, hi, lo } => {
                let wl = widths[lo as usize];
                for i in 0..wl {
                    for j in 0..W {
                        words[di!(d, i, j)] = gw!(lo, i, j);
                    }
                }
                for i in 0..widths[hi as usize] {
                    for j in 0..W {
                        words[di!(d, wl + i, j)] = gw!(hi, i, j);
                    }
                }
            }
            Inst::Resize { d, a } => {
                for i in 0..widths[d as usize] {
                    for j in 0..W {
                        words[di!(d, i, j)] = gw!(a, i, j);
                    }
                }
            }
            Inst::AndNot { d, a, b } => {
                for j in 0..W {
                    words[di!(d, 0, j)] = gw!(a, 0, j) & !gw!(b, 0, j);
                }
            }
            Inst::Store { d, src, mask } => {
                for j in 0..W {
                    let m = gw!(mask, 0, j);
                    for i in 0..widths[d as usize] {
                        let idx = di!(d, i, j);
                        words[idx] = (m & gw!(src, i, j)) | (!m & words[idx]);
                    }
                }
            }
            Inst::ObsStmt { stmt, mask } => {
                if let Some(o) = obs.as_deref_mut() {
                    let mut l = [0u64; W];
                    let mut any = 0u64;
                    for (j, slot) in l.iter_mut().enumerate() {
                        *slot = gw!(mask, 0, j) & active[j];
                        any |= *slot;
                    }
                    if any != 0 {
                        o.on_stmt(stmt, &LaneSet::new(&l));
                    }
                }
            }
            Inst::ObsBranch {
                stmt,
                outcome,
                mask,
            } => {
                if let Some(o) = obs.as_deref_mut() {
                    let mut l = [0u64; W];
                    let mut any = 0u64;
                    for (j, slot) in l.iter_mut().enumerate() {
                        *slot = gw!(mask, 0, j) & active[j];
                        any |= *slot;
                    }
                    if any != 0 {
                        o.on_branch(stmt, outcome, &LaneSet::new(&l));
                    }
                }
            }
            Inst::ObsBool { probe, val, mask } => {
                if observing {
                    let pb = probe as usize * W;
                    for j in 0..W {
                        let m = gw!(mask, 0, j) & active[j];
                        let v = gw!(val, 0, j);
                        pt[pb + j] |= v & m;
                        pf[pb + j] |= !v & m;
                    }
                }
            }
        }
    }
}

/// Lane-parallel barrel shifter over a `W`-word block: conditionally
/// shifts `cur` (width `w`, `W` words per bit) by each power of two
/// under the per-lane words of the `amt` register. Amount bits whose
/// power reaches the width force the affected lanes to zero, so
/// amounts at or beyond the width produce zero — matching
/// [`Bv::shl`]/[`Bv::shr`].
fn barrel_wide<const W: usize>(
    cur: &mut [[u64; W]; 64],
    w: u32,
    c: &CompiledModule,
    words: &[u64],
    amt: Reg,
    left: bool,
) {
    let wa = c.widths[amt as usize];
    let ab = c.base[amt as usize] as usize;
    for s in 0..wa {
        for j in 0..W {
            let m = words[(ab + s as usize) * W + j];
            if m == 0 {
                continue;
            }
            if s >= 6 || (1u32 << s) >= w {
                for row in cur.iter_mut().take(w as usize) {
                    row[j] &= !m;
                }
            } else {
                let k = 1usize << s;
                if left {
                    for i in (0..w as usize).rev() {
                        let shifted = if i >= k { cur[i - k][j] } else { 0 };
                        cur[i][j] = (m & shifted) | (!m & cur[i][j]);
                    }
                } else {
                    for i in 0..w as usize {
                        let shifted = if i + k < w as usize { cur[i + k][j] } else { 0 };
                        cur[i][j] = (m & shifted) | (!m & cur[i][j]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::stim::{collect_vectors, RandomStimulus};
    use crate::NopObserver;
    use gm_rtl::parse_verilog;

    const ARBITER2: &str = "
    module arbiter2(input clk, input rst, input req0, input req1,
                    output reg gnt0, output reg gnt1);
      always @(posedge clk)
        if (rst) begin
          gnt0 <= 0; gnt1 <= 0;
        end else begin
          gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
          gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
        end
    endmodule";

    const ALU: &str = "
    module alu(input clk, input rst, input [2:0] op, input [7:0] a, input [7:0] b,
               output reg [7:0] y);
      always @(posedge clk)
        if (rst) y <= 0;
        else case (op)
          3'd0: y <= a + b;
          3'd1: y <= a - b;
          3'd2: y <= a * b;
          3'd3: y <= a << b[2:0];
          3'd4: y <= a >> b[2:0];
          3'd5: y <= {a[3:0], b[3:0]};
          default: y <= (a < b) ? a : ~b;
        endcase
    endmodule";

    fn interp_trace(src: &str, seed: u64, cycles: u64) -> Trace {
        let m = parse_verilog(src).unwrap();
        let vectors = collect_vectors(&mut RandomStimulus::new(&m, seed, cycles));
        crate::suite::run_segment(&m, &vectors, &mut NopObserver).unwrap()
    }

    fn compiled_trace(src: &str, seed: u64, cycles: u64) -> Trace {
        let m = parse_verilog(src).unwrap();
        let vectors = collect_vectors(&mut RandomStimulus::new(&m, seed, cycles));
        let c = CompiledModule::compile(&m).unwrap();
        c.run_segment(&m, &vectors, &mut NopBatchObserver)
    }

    #[test]
    fn scalar_matches_interpreter_on_arbiter() {
        for seed in 0..4 {
            assert_eq!(
                interp_trace(ARBITER2, seed, 40),
                compiled_trace(ARBITER2, seed, 40)
            );
        }
    }

    #[test]
    fn scalar_matches_interpreter_on_arithmetic() {
        for seed in 0..4 {
            assert_eq!(interp_trace(ALU, seed, 60), compiled_trace(ALU, seed, 60));
        }
    }

    #[test]
    fn batch_lanes_replay_independent_segments() {
        let m = parse_verilog(ALU).unwrap();
        let c = CompiledModule::compile(&m).unwrap();
        let segments: Vec<Segment> = (0..70)
            .map(|seed| Segment {
                label: format!("s{seed}"),
                vectors: collect_vectors(&mut RandomStimulus::new(
                    &m,
                    seed,
                    5 + (seed % 13), // ragged lengths across lane boundaries
                )),
            })
            .collect();
        for block in [1usize, 2, 4, 8] {
            let batched = c
                .run_segments_batched(&m, &segments, &mut NopBatchObserver, true, None, block)
                .expect("no cancel token");
            for (seg, got) in segments.iter().zip(&batched) {
                let want = crate::suite::run_segment(&m, &seg.vectors, &mut NopObserver).unwrap();
                assert_eq!(*got, want, "{} at block {block}", seg.label);
            }
        }
    }

    #[test]
    fn wide_lanes_straddle_block_words() {
        // 150 segments at block 2 = one full 128-lane chunk (with a
        // ragged tail in its second word) plus a 22-lane remainder.
        let m = parse_verilog(ARBITER2).unwrap();
        let c = CompiledModule::compile(&m).unwrap();
        let segments: Vec<Segment> = (0..150)
            .map(|seed| Segment {
                label: format!("s{seed}"),
                vectors: collect_vectors(&mut RandomStimulus::new(&m, seed, 1 + (seed % 9))),
            })
            .collect();
        let batched = c
            .run_segments_batched(&m, &segments, &mut NopBatchObserver, true, None, 2)
            .expect("no cancel token");
        for (seg, got) in segments.iter().zip(&batched) {
            let want = crate::suite::run_segment(&m, &seg.vectors, &mut NopObserver).unwrap();
            assert_eq!(*got, want, "{}", seg.label);
        }
    }

    #[test]
    fn scalar_step_matches_simulator_step() {
        let m = parse_verilog(ARBITER2).unwrap();
        let c = CompiledModule::compile(&m).unwrap();
        let mut interp = Simulator::new(&m).unwrap();
        let mut comp = ScalarSim::new(&c);
        let req0 = m.require("req0").unwrap();
        let req1 = m.require("req1").unwrap();
        for t in 0..16u64 {
            let (v0, v1) = (Bv::from_bool(t % 2 == 0), Bv::from_bool(t % 3 == 0));
            interp.set_inputs(&[(req0, v0), (req1, v1)]);
            comp.set_inputs(&[(req0, v0), (req1, v1)]);
            interp.step();
            comp.step();
            for sig in m.signal_ids() {
                assert_eq!(interp.value(sig), comp.value(sig), "cycle {t}");
            }
        }
    }

    #[test]
    fn compiled_module_reports_shape() {
        let m = parse_verilog(ARBITER2).unwrap();
        let c = CompiledModule::compile(&m).unwrap();
        assert!(c.tape_len() > 0);
        assert!(c.register_count() > m.signals().len());
        assert!(c.probe_count() > 0, "rhs boolean nodes are probed");
        assert!(c.has_probes());
    }

    #[test]
    fn probe_free_tape_drops_observation_instructions() {
        let m = parse_verilog(ALU).unwrap();
        let probed = CompiledModule::compile(&m).unwrap();
        let bare = CompiledModule::compile_with(&m, CompileOptions { probes: false }).unwrap();
        assert!(!bare.has_probes());
        assert_eq!(bare.probe_count(), 0);
        assert!(
            bare.tape_len() < probed.tape_len(),
            "observation instructions elided"
        );
        assert!(bare.approx_bytes() < probed.approx_bytes());
        // Traces are unaffected by the missing observation work.
        let vectors = collect_vectors(&mut RandomStimulus::new(&m, 7, 50));
        assert_eq!(
            probed.run_segment(&m, &vectors, &mut NopBatchObserver),
            bare.run_segment(&m, &vectors, &mut NopBatchObserver)
        );
    }

    #[test]
    fn lane_block_normalizes_widths() {
        assert_eq!(SimBackend::CompiledBatch.lane_block(), 1);
        assert_eq!(SimBackend::CompiledBatchWide(0).lane_block(), 1);
        assert_eq!(SimBackend::CompiledBatchWide(2).lane_block(), 2);
        assert_eq!(SimBackend::CompiledBatchWide(3).lane_block(), 4);
        assert_eq!(SimBackend::CompiledBatchWide(8).lane_block(), 8);
        assert_eq!(SimBackend::CompiledBatchWide(200).lane_block(), 8);
        assert_eq!(SimBackend::CompiledBatchWide(4).lanes(), 256);
        assert_eq!(SimBackend::Interpreter.lanes(), 1);
    }
}
