//! `sim/compiled_agree` — the differential contract of the compiled
//! bit-parallel backend: for every design and every stimulus, the
//! compiled tape (scalar, and batch at every lane-block width W ∈
//! {1, 2, 4, 8} — 64 to 512 lanes per pass) must be **trace-identical**
//! and **coverage-identical** (ratios *and* uncovered point sets) to
//! the tree-walking interpreter. The whole design catalog is swept,
//! lane-block boundaries are straddled with segment counts around every
//! 64-lane multiple, the probe-free tape (`CompileOptions { probes:
//! false }`) is checked against the interpreter's coverage run, and a
//! proptest drives randomly generated modules (case/default overlap,
//! non-blocking swaps, double writes, every operator) under random
//! vector suites at random widths.

use gm_coverage::{CoverageReport, CoverageSuite};
use gm_rtl::{BinaryOp, Bv, Expr, Module, ModuleBuilder, SignalId, StmtId, UnaryOp};
use gm_sim::{
    collect_vectors, BranchOutcome, CompileOptions, CompiledModule, NopBatchObserver,
    RandomStimulus, TestSuite, Trace,
};
use proptest::prelude::*;
use proptest::TestRng;

/// Every lane-block width the batch executor supports.
const BLOCKS: [usize; 4] = [1, 2, 4, 8];

/// Everything a backend run produces that must agree.
#[derive(Debug, PartialEq)]
struct RunResult {
    traces: Vec<Trace>,
    report: CoverageReport,
    line_uncovered: Vec<StmtId>,
    branch_uncovered: Vec<(StmtId, BranchOutcome)>,
}

fn result_of(cov: &CoverageSuite<'_>, traces: Vec<Trace>) -> RunResult {
    RunResult {
        traces,
        report: cov.report(),
        line_uncovered: cov.line().uncovered(),
        branch_uncovered: cov.branch().uncovered(),
    }
}

fn run_interpreter(module: &Module, suite: &TestSuite) -> RunResult {
    let mut cov = CoverageSuite::new(module);
    let traces = suite.run(module, &mut cov).expect("interpreter run");
    result_of(&cov, traces)
}

fn run_compiled_scalar(module: &Module, suite: &TestSuite) -> RunResult {
    let compiled = CompiledModule::compile(module).expect("compiles");
    let mut cov = CoverageSuite::new(module);
    let traces = suite
        .segments()
        .iter()
        .map(|seg| compiled.run_segment(module, &seg.vectors, &mut cov))
        .collect();
    result_of(&cov, traces)
}

fn run_compiled_batch(module: &Module, suite: &TestSuite, block: usize) -> RunResult {
    let compiled = CompiledModule::compile(module).expect("compiles");
    let mut cov = CoverageSuite::new(module);
    let traces = suite.run_compiled(module, &compiled, &mut cov, block);
    result_of(&cov, traces)
}

/// Asserts every backend — scalar and batch at every lane-block width —
/// agrees on `suite`, returning the interpreter result for further
/// checks.
fn assert_backends_agree(module: &Module, suite: &TestSuite, label: &str) -> RunResult {
    let interp = run_interpreter(module, suite);
    let scalar = run_compiled_scalar(module, suite);
    assert_eq!(interp, scalar, "{label}: compiled-scalar diverged");
    for block in BLOCKS {
        let batch = run_compiled_batch(module, suite, block);
        assert_eq!(interp, batch, "{label}: compiled batch W={block} diverged");
    }
    interp
}

fn random_suite(module: &Module, base_seed: u64, lengths: &[u64]) -> TestSuite {
    let mut suite = TestSuite::new();
    for (i, &len) in lengths.iter().enumerate() {
        suite.push(
            format!("seg{i}"),
            collect_vectors(&mut RandomStimulus::new(module, base_seed + i as u64, len)),
        );
    }
    suite
}

#[test]
fn whole_catalog_is_trace_and_coverage_identical() {
    for design in gm_designs::catalog() {
        let module = design.module();
        // Ragged lengths, including an empty segment (reset pulse only).
        let suite = random_suite(
            &module,
            0xC0FFEE ^ design.window as u64,
            &[48, 17, 5, 0, 31],
        );
        let got = assert_backends_agree(&module, &suite, design.name);
        assert_eq!(got.traces.len(), suite.len());
    }
}

#[test]
fn many_segments_cross_lane_boundaries() {
    let module = gm_designs::arbiter4();
    // 137 segments: three chunks, the last partially filled, lengths
    // ragged so lanes go inactive at different cycles.
    let lengths: Vec<u64> = (0..137).map(|i| (i * 7) % 23).collect();
    let suite = random_suite(&module, 7, &lengths);
    assert_backends_agree(&module, &suite, "arbiter4 x137");
}

#[test]
fn segment_counts_straddle_every_block_boundary() {
    // One under, exactly at, and one over every 64-lane multiple a
    // wide block can ragged-fill: the chunk's last block word goes from
    // partially filled to full to spilling a second chunk. Each count
    // runs at every W (an N-segment suite at W=8 exercises unused tail
    // words; at W=1 it exercises multi-chunk dealing).
    let module = gm_designs::arbiter4();
    for count in [63usize, 64, 65, 127, 128, 129, 255, 256, 257] {
        let lengths: Vec<u64> = (0..count as u64).map(|i| (i * 5) % 11).collect();
        let suite = random_suite(&module, 0x5EED ^ count as u64, &lengths);
        assert_backends_agree(&module, &suite, &format!("arbiter4 x{count}"));
    }
}

#[test]
fn probe_free_tape_agrees_with_interpreter_coverage_run() {
    // A probe-free tape executes no observation instructions: traces
    // must still be identical at every W, and an attached coverage
    // suite sees only the executor-level cycle events — toggle and FSM
    // ratios match the interpreter's run exactly while the tape-level
    // metrics (line/branch/condition/expression) record nothing.
    for design in gm_designs::catalog() {
        let module = design.module();
        let suite = random_suite(&module, 0xBA5E ^ design.window as u64, &[40, 13, 0, 65]);
        let interp = run_interpreter(&module, &suite);
        let bare = CompiledModule::compile_with(&module, CompileOptions { probes: false })
            .expect("compiles");
        assert_eq!(bare.probe_count(), 0);
        for block in BLOCKS {
            let mut cov = CoverageSuite::new(&module);
            let traces = suite.run_compiled(&module, &bare, &mut cov, block);
            assert_eq!(
                interp.traces, traces,
                "{}: probe-free W={block} trace diverged",
                design.name
            );
            let report = cov.report();
            assert_eq!(
                report.toggle, interp.report.toggle,
                "{}: probe-free W={block} toggle diverged",
                design.name
            );
            assert_eq!(
                report.fsm, interp.report.fsm,
                "{}: probe-free W={block} fsm diverged",
                design.name
            );
            assert_eq!(report.line.covered, 0, "{}", design.name);
            assert_eq!(report.branch.covered, 0, "{}", design.name);
            assert_eq!(report.condition.covered, 0, "{}", design.name);
            assert_eq!(report.expression.covered, 0, "{}", design.name);
        }
        // Bare trace-only replay (the cex/seed-trace shape) also agrees.
        for (seg, want) in suite.segments().iter().zip(&interp.traces) {
            let got = bare.run_segment(&module, &seg.vectors, &mut NopBatchObserver);
            assert_eq!(&got, want, "{}: bare scalar replay diverged", design.name);
        }
    }
}

#[test]
fn case_first_match_and_default_fallthrough_agree() {
    // Overlapping labels (the first arm must win in every lane),
    // multi-label arms, an implicit hold via default, and a partial
    // case without default (sequential hold semantics).
    let src = "
    module casey(input clk, input rst, input [2:0] s, input d,
                 output reg [1:0] y, output reg z);
      always @(posedge clk)
        if (rst) begin y <= 0; z <= 0; end
        else begin
          case (s)
            3'd0: y <= 1;
            3'd1, 3'd2: y <= 2;
            3'd1: y <= 3;
            default: y <= y + 2'd1;
          endcase
          case (s[1:0])
            2'd0: z <= d;
            2'd3: z <= ~d;
          endcase
        end
    endmodule";
    let module = gm_rtl::parse_verilog(src).unwrap();
    let suite = random_suite(&module, 11, &[70, 70, 3]);
    assert_backends_agree(&module, &suite, "casey");
}

#[test]
fn nonblocking_swap_and_double_write_agree() {
    // The classic register swap plus a double non-blocking write where
    // the last statement must win — both depend on exact edge
    // semantics.
    let src = "
    module nb(input clk, input rst, input c, output reg a, output reg b,
              output reg [3:0] r);
      always @(posedge clk)
        if (rst) begin a <= 1; b <= 0; r <= 0; end
        else begin
          a <= b; b <= a;
          r <= r + 4'd1;
          if (c) r <= 4'd9;
        end
    endmodule";
    let module = gm_rtl::parse_verilog(src).unwrap();
    let suite = random_suite(&module, 3, &[64, 9]);
    assert_backends_agree(&module, &suite, "nb");
}

#[test]
fn wide_arithmetic_shifts_and_concats_agree() {
    let src = "
    module wide(input clk, input rst, input [63:0] a, input [63:0] b,
                input [5:0] k, output reg [63:0] acc, output y);
      wire [63:0] m;
      assign m = (a * b) + (a << k) - (b >> k);
      assign y = (a < b) && !(a[63] ^ b[0]) || &k;
      always @(posedge clk)
        if (rst) acc <= 64'd0;
        else acc <= {m[31:0], acc[63:32]} ^ (-a);
    endmodule";
    let module = gm_rtl::parse_verilog(src).unwrap();
    let suite = random_suite(&module, 5, &[80, 33, 1]);
    assert_backends_agree(&module, &suite, "wide");
}

// ---------------------------------------------------------------------------
// Random-module differential proptest
// ---------------------------------------------------------------------------

/// Widths drawn for random signals: mixes the trivial, byte-ish,
/// non-power-of-two and full-word cases.
const WIDTHS: &[u32] = &[1, 2, 3, 4, 7, 8, 13, 16, 31, 32, 33, 64];

struct Gen<'r> {
    rng: &'r mut TestRng,
    /// Signals readable at this point, with widths.
    avail: Vec<(SignalId, u32)>,
}

impl Gen<'_> {
    fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n as u128) as u64
    }

    fn width_of(&self, e: &Expr) -> u32 {
        let avail = self.avail.clone();
        e.width_in(&move |s: SignalId| {
            avail
                .iter()
                .find(|(id, _)| *id == s)
                .map(|(_, w)| *w)
                .expect("generated exprs only read declared signals")
        })
    }

    /// A random expression tree of bounded depth over the available
    /// signals, exercising every operator.
    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 || self.below(6) == 0 {
            return if self.below(4) == 0 {
                let w = WIDTHS[self.below(WIDTHS.len() as u64) as usize];
                Expr::lit(self.rng.next_u64(), w)
            } else {
                let i = self.below(self.avail.len() as u64) as usize;
                Expr::Signal(self.avail[i].0)
            };
        }
        match self.below(12) {
            0 => {
                let ops = [
                    UnaryOp::Not,
                    UnaryOp::Neg,
                    UnaryOp::RedAnd,
                    UnaryOp::RedOr,
                    UnaryOp::RedXor,
                    UnaryOp::LogicNot,
                ];
                let op = ops[self.below(ops.len() as u64) as usize];
                Expr::unary(op, self.expr(depth - 1))
            }
            1..=6 => {
                let ops = [
                    BinaryOp::And,
                    BinaryOp::Or,
                    BinaryOp::Xor,
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Mul,
                    BinaryOp::Eq,
                    BinaryOp::Ne,
                    BinaryOp::Lt,
                    BinaryOp::Le,
                    BinaryOp::Gt,
                    BinaryOp::Ge,
                    BinaryOp::Shl,
                    BinaryOp::Shr,
                    BinaryOp::LogicAnd,
                    BinaryOp::LogicOr,
                ];
                let op = ops[self.below(ops.len() as u64) as usize];
                let a = self.expr(depth - 1);
                let b = if matches!(op, BinaryOp::Shl | BinaryOp::Shr) && self.below(2) == 0 {
                    // Constant shift amounts, in and out of range.
                    Expr::lit(self.below(80), 7)
                } else {
                    self.expr(depth - 1)
                };
                Expr::binary(op, a, b)
            }
            7 => Expr::Mux {
                cond: Box::new(self.expr(depth - 1)),
                then_val: Box::new(self.expr(depth - 1)),
                else_val: Box::new(self.expr(depth - 1)),
            },
            8 => {
                let base = self.expr(depth - 1);
                let w = self.width_of(&base);
                let bit = self.below(u64::from(w)) as u32;
                base.index(bit)
            }
            9 => {
                let base = self.expr(depth - 1);
                let w = self.width_of(&base);
                let lo = self.below(u64::from(w)) as u32;
                let hi = lo + self.below(u64::from(w - lo)) as u32;
                base.slice(hi, lo)
            }
            10 => {
                // Concatenation bounded to 64 bits total.
                let a = self.expr(depth - 1);
                let wa = self.width_of(&a);
                if wa >= 63 {
                    a
                } else {
                    let room = 64 - wa;
                    let wb = 1 + self.below(u64::from(room.min(16))) as u32;
                    Expr::Concat(vec![a, Expr::lit(self.rng.next_u64(), wb)])
                }
            }
            _ => {
                let i = self.below(self.avail.len() as u64) as usize;
                Expr::Signal(self.avail[i].0)
            }
        }
    }
}

/// Builds a random but always-legal module: layered continuous assigns
/// (no comb loops by construction), one sequential process mixing
/// `if`/`case` (overlapping labels, optional `default`), a non-blocking
/// swap pair and a double-write register.
fn random_module(seed: u64) -> Module {
    let mut rng = TestRng::new(seed);
    let mut b = ModuleBuilder::new("fuzz");
    let _clk = b.clock("clk");
    let rst = b.reset("rst");
    let n_inputs = 2 + (rng.below(3) as usize);
    let mut avail: Vec<(SignalId, u32)> = Vec::new();
    for i in 0..n_inputs {
        let w = WIDTHS[rng.below(WIDTHS.len() as u128) as usize];
        avail.push((b.input(&format!("in{i}"), w), w));
    }

    // Combinational layer: each wire reads only earlier signals.
    let n_wires = 2 + (rng.below(3) as usize);
    for i in 0..n_wires {
        let expr = {
            let mut g = Gen {
                rng: &mut rng,
                avail: avail.clone(),
            };
            g.expr(3)
        };
        let w = {
            let g = Gen {
                rng: &mut rng,
                avail: avail.clone(),
            };
            g.width_of(&expr)
        };
        let wire = b.wire(&format!("w{i}"), w);
        b.assign(wire, expr);
        avail.push((wire, w));
    }

    // State registers.
    let wa = WIDTHS[rng.below(WIDTHS.len() as u128) as usize];
    let ra = b.reg("ra", wa, Bv::new(rng.next_u64(), wa));
    let rb = b.reg("rb", wa, Bv::new(rng.next_u64(), wa));
    let wc = WIDTHS[rng.below(WIDTHS.len() as u128) as usize];
    let rc = b.reg("rc", wc, Bv::zeros(wc));
    let state_avail = {
        let mut v = avail.clone();
        v.extend([(ra, wa), (rb, wa), (rc, wc)]);
        v
    };

    let cond = {
        let mut g = Gen {
            rng: &mut rng,
            avail: state_avail.clone(),
        };
        g.expr(2)
    };
    let (subj, subj_w) = {
        let mut g = Gen {
            rng: &mut rng,
            avail: state_avail.clone(),
        };
        let e = g.expr(2);
        let w = g.width_of(&e);
        (e, w)
    };
    let n_arms = 1 + rng.below(3) as usize;
    let with_default = rng.below(2) == 0;
    let arm_labels: Vec<Vec<Bv>> = (0..n_arms)
        .map(|_| {
            (0..1 + rng.below(2))
                .map(|_| {
                    // Draw labels from a small pool so arms overlap and
                    // some labels repeat across arms (first match wins).
                    let v = rng.below(4) as u64;
                    Bv::new(v, subj_w.clamp(1, 3))
                })
                .collect()
        })
        .collect();
    let mut exprs = {
        let mut g = Gen {
            rng: &mut rng,
            avail: state_avail.clone(),
        };
        let mut out = Vec::new();
        for _ in 0..(2 * n_arms + 8) {
            out.push(g.expr(2));
        }
        out
    };
    let mut next_expr = move || exprs.pop().expect("pre-generated pool is large enough");

    b.always_seq(|p| {
        p.if_else(
            Expr::Signal(rst),
            |t| {
                t.assign(ra, Expr::lit(1, 1));
                t.assign(rb, Expr::zero());
                t.assign(rc, Expr::zero());
            },
            |e| {
                // Non-blocking swap.
                e.assign(ra, Expr::Signal(rb));
                e.assign(rb, Expr::Signal(ra));
                // Double write under a branch: the later one must win.
                e.assign(rc, next_expr());
                e.if_(cond, |t| t.assign(rc, next_expr()));
                e.case(subj, |cb| {
                    for labels in &arm_labels {
                        cb.arm(labels, |a| a.assign(rc, next_expr()));
                    }
                    if with_default {
                        cb.default(|d| d.assign(rc, next_expr()));
                    }
                });
            },
        );
    });

    // Output over everything (kept total so elaboration always passes).
    let y = b.output("y", 1);
    let reduce = state_avail
        .iter()
        .map(|&(s, _)| Expr::unary(UnaryOp::RedXor, Expr::Signal(s)))
        .reduce(|a, b| a.xor(b))
        .expect("at least one signal");
    b.assign(y, reduce);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random modules x random vector suites: the three backends agree
    /// on traces, coverage ratios and uncovered point sets.
    #[test]
    fn random_modules_and_vectors_agree(
        seed in any::<u64>(),
        nseg in 1usize..6,
        len in 1u64..18,
        block_idx in 0usize..BLOCKS.len(),
    ) {
        let block = BLOCKS[block_idx];
        let module = random_module(seed);
        // Elaboration must accept the generated module; if it does not,
        // the generator (not the backends) is broken.
        gm_rtl::elaborate(&module).expect("generated modules are legal");
        let lengths: Vec<u64> = (0..nseg as u64).map(|i| (len + 3 * i) % 19).collect();
        let suite = random_suite(&module, seed ^ 0x9E37, &lengths);
        let interp = run_interpreter(&module, &suite);
        let scalar = run_compiled_scalar(&module, &suite);
        prop_assert_eq!(&interp, &scalar, "scalar diverged (seed {})", seed);
        let batch = run_compiled_batch(&module, &suite, block);
        prop_assert_eq!(&interp, &batch, "batch W={} diverged (seed {})", block, seed);
        // The probe-free tape must still be trace-identical.
        let bare = CompiledModule::compile_with(&module, CompileOptions { probes: false })
            .expect("compiles");
        let bare_traces = suite.run_compiled(&module, &bare, &mut NopBatchObserver, block);
        prop_assert_eq!(
            &interp.traces, &bare_traces,
            "probe-free W={} diverged (seed {})", block, seed
        );
    }
}
