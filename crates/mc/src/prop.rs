//! Safety properties over bounded windows, and counterexample traces.
//!
//! A mined assertion is an implication over a bounded window of cycles:
//! a conjunction of (signal, bit, offset, value) atoms implies one
//! consequent atom. Model checking decides `G (antecedent -> consequent)`
//! over all reachable windows; a violation yields a reset-rooted input
//! trace that the engine replays through the simulator (the paper's
//! `Ctx_simulation()`).

use crate::blast::Blasted;
use gm_rtl::{Bv, Module, SignalId};
use gm_sim::InputVector;
use std::fmt;

/// One observation in a window property: signal bit `bit` of `signal`,
/// `offset` cycles after the window start, equals `value`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BitAtom {
    /// The observed signal.
    pub signal: SignalId,
    /// The observed bit (0 = LSB).
    pub bit: u32,
    /// Cycle offset within the window (0 = window start).
    pub offset: u32,
    /// The expected value.
    pub value: bool,
}

impl BitAtom {
    /// Creates an atom.
    pub fn new(signal: SignalId, bit: u32, offset: u32, value: bool) -> Self {
        BitAtom {
            signal,
            bit,
            offset,
            value,
        }
    }
}

/// A windowed safety property: `G (/\ antecedent -> consequent)`.
///
/// Hashable so batch checkers can dedupe and memoize property results
/// (distinct mining targets often produce the same implication).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WindowProperty {
    /// Antecedent atoms (conjoined). Empty means `true`.
    pub antecedent: Vec<BitAtom>,
    /// The consequent atom.
    pub consequent: BitAtom,
}

impl WindowProperty {
    /// The window depth: the largest offset used by any atom. The window
    /// spans `depth() + 1` cycles.
    pub fn depth(&self) -> u32 {
        self.antecedent
            .iter()
            .map(|a| a.offset)
            .chain(std::iter::once(self.consequent.offset))
            .max()
            .unwrap_or(0)
    }

    /// Formats the property with signal names for diagnostics.
    pub fn display<'a>(&'a self, module: &'a Module) -> DisplayProperty<'a> {
        DisplayProperty { prop: self, module }
    }
}

/// Helper returned by [`WindowProperty::display`].
#[derive(Debug)]
pub struct DisplayProperty<'a> {
    prop: &'a WindowProperty,
    module: &'a Module,
}

impl fmt::Display for DisplayProperty<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let atom = |f: &mut fmt::Formatter<'_>, a: &BitAtom| -> fmt::Result {
            let sig = self.module.signal(a.signal);
            if !a.value {
                write!(f, "!")?;
            }
            write!(f, "{}", sig.name())?;
            if sig.width() > 1 {
                write!(f, "[{}]", a.bit)?;
            }
            write!(f, "@{}", a.offset)
        };
        if self.prop.antecedent.is_empty() {
            write!(f, "true")?;
        } else {
            for (i, a) in self.prop.antecedent.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                atom(f, a)?;
            }
        }
        write!(f, " |-> ")?;
        atom(f, &self.prop.consequent)
    }
}

/// How a [`TemporalProperty`]'s consequent atoms combine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConsequentKind {
    /// Every consequent atom must hold (stability windows `a -> G<=k b`:
    /// one atom per cycle of the window).
    All,
    /// At least one consequent atom must hold (bounded eventuality
    /// `a -> F<=k b`: one atom per cycle the target may fire in).
    Any,
}

/// A windowed temporal safety property: `G (/\ antecedent -> C)` where
/// `C` is a conjunction ([`ConsequentKind::All`]) or disjunction
/// ([`ConsequentKind::Any`]) of consequent atoms at (possibly distinct)
/// offsets.
///
/// This generalizes [`WindowProperty`] — which is the
/// single-consequent special case — to the temporal templates the miner
/// produces: next-cycle implications (`a -> Xb`), bounded eventualities
/// (`a -> F<=k b`, `Any` over offsets `d..=d+k`), and stability windows
/// (`a -> G<=k b`, `All` over the same offsets). All three stay bounded
/// safety properties over finite windows, so the BMC/k-induction
/// engines decide them exactly like window properties.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TemporalProperty {
    /// Antecedent atoms (conjoined). Empty means `true`.
    pub antecedent: Vec<BitAtom>,
    /// Consequent atoms, combined per `kind`. Must be non-empty.
    pub consequents: Vec<BitAtom>,
    /// How the consequents combine.
    pub kind: ConsequentKind,
}

impl TemporalProperty {
    /// The window depth: the largest offset used by any atom. The window
    /// spans `depth() + 1` cycles.
    pub fn depth(&self) -> u32 {
        self.antecedent
            .iter()
            .chain(self.consequents.iter())
            .map(|a| a.offset)
            .max()
            .unwrap_or(0)
    }

    /// The single-consequent view, when one exists: a one-atom temporal
    /// property is exactly a [`WindowProperty`] (the `All`/`Any`
    /// distinction collapses), so checkers can reuse the full window
    /// dispatch — memoization, explicit engines, racing — for it.
    pub fn as_window(&self) -> Option<WindowProperty> {
        match self.consequents.as_slice() {
            [single] => Some(WindowProperty {
                antecedent: self.antecedent.clone(),
                consequent: *single,
            }),
            _ => None,
        }
    }

    /// Formats the property with signal names for diagnostics.
    pub fn display<'a>(&'a self, module: &'a Module) -> DisplayTemporal<'a> {
        DisplayTemporal { prop: self, module }
    }
}

/// Helper returned by [`TemporalProperty::display`].
#[derive(Debug)]
pub struct DisplayTemporal<'a> {
    prop: &'a TemporalProperty,
    module: &'a Module,
}

impl fmt::Display for DisplayTemporal<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let atom = |f: &mut fmt::Formatter<'_>, a: &BitAtom| -> fmt::Result {
            let sig = self.module.signal(a.signal);
            if !a.value {
                write!(f, "!")?;
            }
            write!(f, "{}", sig.name())?;
            if sig.width() > 1 {
                write!(f, "[{}]", a.bit)?;
            }
            write!(f, "@{}", a.offset)
        };
        if self.prop.antecedent.is_empty() {
            write!(f, "true")?;
        } else {
            for (i, a) in self.prop.antecedent.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                atom(f, a)?;
            }
        }
        write!(f, " |-> ")?;
        let sep = match self.prop.kind {
            ConsequentKind::All => " & ",
            ConsequentKind::Any => " | ",
        };
        if self.prop.consequents.len() > 1 {
            write!(f, "(")?;
        }
        for (i, a) in self.prop.consequents.iter().enumerate() {
            if i > 0 {
                write!(f, "{sep}")?;
            }
            atom(f, a)?;
        }
        if self.prop.consequents.len() > 1 {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A counterexample: a reset-rooted sequence of data-input vectors that
/// drives the design through a window violating the property.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CexTrace {
    /// One input vector per cycle, starting at the reset state.
    pub inputs: Vec<InputVector>,
}

impl CexTrace {
    /// The number of cycles in the trace.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Groups per-bit AIG input values into per-signal input vectors.
///
/// `bit_of` maps a dense AIG input index to its boolean value.
pub(crate) fn assemble_input_vector(
    module: &Module,
    blasted: &Blasted,
    bit_of: impl Fn(usize) -> bool,
) -> InputVector {
    let mut vec: Vec<(SignalId, Bv)> = module
        .data_inputs()
        .into_iter()
        .map(|s| (s, Bv::zeros(module.signal_width(s))))
        .collect();
    for (i, &(sig, bit)) in blasted.input_bits.iter().enumerate() {
        if let Some(entry) = vec.iter_mut().find(|(s, _)| *s == sig) {
            entry.1 = entry.1.with_bit(bit, bit_of(i));
        }
    }
    vec
}

/// The result of a model-checking query.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckResult {
    /// The property holds on all reachable behaviors.
    Proved,
    /// The property is violated; the trace drives the design from reset
    /// into a violating window.
    Violated(CexTrace),
    /// The bounded engines could not decide within their budgets.
    Unknown {
        /// The bound reached before giving up.
        bound: u32,
    },
}

impl CheckResult {
    /// Whether the result is [`CheckResult::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, CheckResult::Proved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::parse_verilog;

    #[test]
    fn depth_is_max_offset() {
        let m = parse_verilog("module m(input a, output y); assign y = a; endmodule").unwrap();
        let a = m.require("a").unwrap();
        let y = m.require("y").unwrap();
        let p = WindowProperty {
            antecedent: vec![BitAtom::new(a, 0, 0, true), BitAtom::new(a, 0, 1, false)],
            consequent: BitAtom::new(y, 0, 2, true),
        };
        assert_eq!(p.depth(), 2);
        let display = format!("{}", p.display(&m));
        assert_eq!(display, "a@0 & !a@1 |-> y@2");
    }

    #[test]
    fn temporal_depth_display_and_window_view() {
        let m = parse_verilog("module m(input a, output y); assign y = a; endmodule").unwrap();
        let a = m.require("a").unwrap();
        let y = m.require("y").unwrap();
        let p = TemporalProperty {
            antecedent: vec![BitAtom::new(a, 0, 0, true)],
            consequents: vec![BitAtom::new(y, 0, 1, true), BitAtom::new(y, 0, 2, true)],
            kind: ConsequentKind::Any,
        };
        assert_eq!(p.depth(), 2);
        assert!(p.as_window().is_none());
        assert_eq!(format!("{}", p.display(&m)), "a@0 |-> (y@1 | y@2)");

        let single = TemporalProperty {
            antecedent: vec![BitAtom::new(a, 0, 0, true)],
            consequents: vec![BitAtom::new(y, 0, 1, false)],
            kind: ConsequentKind::All,
        };
        let w = single.as_window().expect("single consequent");
        assert_eq!(w.consequent, BitAtom::new(y, 0, 1, false));
        assert_eq!(format!("{}", single.display(&m)), "a@0 |-> !y@1");
    }

    #[test]
    fn empty_antecedent_displays_true() {
        let m = parse_verilog("module m(input a, output y); assign y = a; endmodule").unwrap();
        let y = m.require("y").unwrap();
        let p = WindowProperty {
            antecedent: vec![],
            consequent: BitAtom::new(y, 0, 0, false),
        };
        assert_eq!(p.depth(), 0);
        assert_eq!(format!("{}", p.display(&m)), "true |-> !y@0");
    }
}
