//! Explicit-state reachability model checking.
//!
//! For the paper's benchmark-scale designs (a handful of state bits,
//! narrow input vectors) explicit enumeration is *exact*: it computes the
//! reachable state set from reset and checks every property window from
//! every reachable state, so — unlike k-induction — it never answers
//! `Unknown` and never reports violations from unreachable states.
//! The reachable set is computed once per design and shared across all
//! assertion checks of a refinement run.

use crate::aig::Aig;
use crate::blast::Blasted;
use crate::error::McError;
use crate::prop::{assemble_input_vector, CexTrace, CheckResult, WindowProperty};
use gm_rtl::Module;
use std::collections::HashMap;

/// Budgets for explicit exploration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExplicitLimits {
    /// Maximum number of state bits (states are packed into a `u64`).
    pub max_state_bits: u32,
    /// Maximum number of free input bits (each state fans out into
    /// `2^input_bits` successors).
    pub max_input_bits: u32,
    /// Maximum number of reachable states to enumerate.
    pub max_states: usize,
    /// Maximum `(depth + 1) * input_bits` for window enumeration.
    pub max_window_bits: u32,
}

impl Default for ExplicitLimits {
    fn default() -> Self {
        ExplicitLimits {
            max_state_bits: 24,
            max_input_bits: 12,
            max_states: 1 << 20,
            max_window_bits: 24,
        }
    }
}

/// The reachable state space of a blasted design, with BFS predecessors
/// for counterexample reconstruction.
#[derive(Clone, Debug)]
pub struct ReachableStates {
    /// Packed latch states, in BFS discovery order (index 0 = reset).
    pub states: Vec<u64>,
    /// For each state (by discovery index): the predecessor state index
    /// and the input word that reached it. `None` for the reset state.
    pub parent: Vec<Option<(usize, u64)>>,
    input_bits: u32,
    state_bits: u32,
}

fn unpack(word: u64, bits: u32) -> Vec<bool> {
    (0..bits).map(|i| (word >> i) & 1 == 1).collect()
}

fn pack(bools: &[bool]) -> u64 {
    bools
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

impl ReachableStates {
    /// Enumerates the reachable states of `blasted` from its reset state.
    ///
    /// # Errors
    ///
    /// Fails when the design exceeds the limits (too many state or input
    /// bits, or more reachable states than budgeted).
    pub fn explore(blasted: &Blasted, limits: &ExplicitLimits) -> Result<Self, McError> {
        let aig = &blasted.aig;
        let state_bits = aig.latch_count() as u32;
        let input_bits = aig.input_count() as u32;
        if state_bits > limits.max_state_bits.min(64) {
            return Err(McError::StateTooLarge {
                bits: state_bits,
                limit: limits.max_state_bits.min(64),
            });
        }
        if input_bits > limits.max_input_bits.min(63) {
            return Err(McError::InputTooWide {
                bits: input_bits,
                limit: limits.max_input_bits.min(63),
            });
        }
        let init = pack(&aig.initial_state());
        let mut states = vec![init];
        let mut parent = vec![None];
        let mut index = HashMap::new();
        index.insert(init, 0usize);
        let mut head = 0usize;
        let combos = 1u64 << input_bits;
        while head < states.len() {
            let s = states[head];
            let latches = unpack(s, state_bits);
            for u in 0..combos {
                let inputs = unpack(u, input_bits);
                let vals = aig.eval(&inputs, &latches);
                let next = pack(&aig.next_state(&vals));
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(next) {
                    if states.len() >= limits.max_states {
                        return Err(McError::StateSpaceExceeded {
                            limit: limits.max_states,
                        });
                    }
                    e.insert(states.len());
                    states.push(next);
                    parent.push(Some((head, u)));
                }
            }
            head += 1;
        }
        Ok(ReachableStates {
            states,
            parent,
            input_bits,
            state_bits,
        })
    }

    /// The number of reachable states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no states were enumerated (impossible after `explore`).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Reconstructs the input sequence leading from reset to the state at
    /// `state_index`.
    fn path_to(&self, state_index: usize) -> Vec<u64> {
        let mut rev = Vec::new();
        let mut cur = state_index;
        while let Some((prev, word)) = self.parent[cur] {
            rev.push(word);
            cur = prev;
        }
        rev.reverse();
        rev
    }
}

/// Checks `prop` against every reachable window of the design.
///
/// # Errors
///
/// Fails when `(depth + 1) * input_bits` exceeds the window budget.
pub fn explicit_check(
    module: &Module,
    blasted: &Blasted,
    reach: &ReachableStates,
    prop: &WindowProperty,
    limits: &ExplicitLimits,
) -> Result<CheckResult, McError> {
    let aig = &blasted.aig;
    let depth = prop.depth();
    let window_bits = (depth + 1) * reach.input_bits;
    if window_bits > limits.max_window_bits.min(63) {
        return Err(McError::WindowTooWide {
            bits: window_bits,
            limit: limits.max_window_bits.min(63),
        });
    }
    // Group atoms by offset for incremental checking during the window walk.
    let mut ant_by_offset: Vec<Vec<&crate::prop::BitAtom>> = vec![Vec::new(); depth as usize + 1];
    for a in &prop.antecedent {
        ant_by_offset[a.offset as usize].push(a);
    }
    let combos = 1u64 << reach.input_bits;

    for (si, &packed) in reach.states.iter().enumerate() {
        let start_latches = unpack(packed, reach.state_bits);
        // Depth-first walk over input sequences with antecedent pruning.
        // (next_offset, latches_at_offset, inputs_so_far, consequent_value)
        type WindowFrame = (u32, Vec<bool>, Vec<u64>, Option<bool>);
        let mut stack: Vec<WindowFrame> = Vec::new();
        stack.push((0, start_latches.clone(), Vec::new(), None));
        while let Some((offset, latches, words, cons_seen)) = stack.pop() {
            if offset > depth {
                // All antecedent atoms held; check the consequent.
                let cons_val = cons_seen.expect("consequent evaluated in-window");
                if cons_val != prop.consequent.value {
                    let mut inputs = Vec::new();
                    for w in reach.path_to(si) {
                        let bits = unpack(w, reach.input_bits);
                        inputs.push(assemble_input_vector(module, blasted, |i| bits[i]));
                    }
                    for w in &words {
                        let bits = unpack(*w, reach.input_bits);
                        inputs.push(assemble_input_vector(module, blasted, |i| bits[i]));
                    }
                    return Ok(CheckResult::Violated(CexTrace { inputs }));
                }
                continue;
            }
            for u in 0..combos {
                let inputs = unpack(u, reach.input_bits);
                let vals = aig.eval(&inputs, &latches);
                // Antecedent atoms at this offset must hold.
                let ant_ok = ant_by_offset[offset as usize]
                    .iter()
                    .all(|a| aig.lit_value(&vals, blasted.signal_bit(a.signal, a.bit)) == a.value);
                if !ant_ok {
                    continue;
                }
                let mut cons = cons_seen;
                if prop.consequent.offset == offset {
                    cons = Some(aig.lit_value(
                        &vals,
                        blasted.signal_bit(prop.consequent.signal, prop.consequent.bit),
                    ));
                }
                let mut w = words.clone();
                w.push(u);
                stack.push((offset + 1, next_latches(aig, &vals), w, cons));
            }
        }
    }
    Ok(CheckResult::Proved)
}

fn next_latches(aig: &Aig, vals: &[bool]) -> Vec<bool> {
    aig.next_state(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::blast;
    use crate::prop::BitAtom;
    use gm_rtl::{elaborate, parse_verilog};

    const ARBITER2: &str = "
    module arbiter2(input clk, input rst, input req0, input req1,
                    output reg gnt0, output reg gnt1);
      always @(posedge clk)
        if (rst) begin
          gnt0 <= 0; gnt1 <= 0;
        end else begin
          gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
          gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
        end
    endmodule";

    fn setup(src: &str) -> (gm_rtl::Module, Blasted, ReachableStates) {
        let m = parse_verilog(src).unwrap();
        let e = elaborate(&m).unwrap();
        let b = blast(&m, &e).unwrap();
        let r = ReachableStates::explore(&b, &ExplicitLimits::default()).unwrap();
        (m, b, r)
    }

    #[test]
    fn arbiter_reachable_states_exclude_double_grant() {
        let (_m, _b, r) = setup(ARBITER2);
        // gnt0 and gnt1 can never be high simultaneously: 3 states, not 4.
        assert_eq!(r.len(), 3);
        assert!(!r.states.contains(&0b11));
    }

    #[test]
    fn mutual_exclusion_is_proved() {
        let (m, b, r) = setup(ARBITER2);
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        // gnt0@0 |-> !gnt1@0 — holds on reachable states only.
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
            consequent: BitAtom::new(gnt1, 0, 0, false),
        };
        let res = explicit_check(&m, &b, &r, &prop, &ExplicitLimits::default()).unwrap();
        assert_eq!(res, CheckResult::Proved);
    }

    #[test]
    fn paper_assertion_a0_is_violated_with_trace() {
        let (m, b, r) = setup(ARBITER2);
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        // The paper's A0: !req0@0 |-> gnt0@1 — spurious.
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(req0, 0, 0, false)],
            consequent: BitAtom::new(gnt0, 0, 1, true),
        };
        match explicit_check(&m, &b, &r, &prop, &ExplicitLimits::default()).unwrap() {
            CheckResult::Violated(cex) => {
                // Replaying the trace must end with the violation: verify
                // by simulation.
                let mut sim = gm_sim::Simulator::new(&m).unwrap();
                let rst = m.require("rst").unwrap();
                sim.set_input(rst, gm_rtl::Bv::one_bit());
                sim.step();
                sim.set_input(rst, gm_rtl::Bv::zero_bit());
                let trace = sim.run_vectors(&cex.inputs, &mut gm_sim::NopObserver);
                let last = trace.len() - 1;
                assert!(
                    !trace.bit(last - 1, req0, 0),
                    "antecedent holds at window start"
                );
                assert!(!trace.bit(last, gnt0, 0), "consequent fails at window end");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn paper_assertion_a2_is_proved() {
        let (m, b, r) = setup(ARBITER2);
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        // A2: !req0@0 & !req0@1 |-> !gnt0@2 (paper: ~req0 & X~req0 => XX~gnt0).
        let prop = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, false),
                BitAtom::new(req0, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, false),
        };
        let res = explicit_check(&m, &b, &r, &prop, &ExplicitLimits::default()).unwrap();
        assert_eq!(res, CheckResult::Proved);
    }

    #[test]
    fn limits_are_enforced() {
        let m = parse_verilog(
            "module m(input clk, input [7:0] d, output reg [7:0] q);
               always @(posedge clk) q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let b = blast(&m, &e).unwrap();
        let tight = ExplicitLimits {
            max_input_bits: 4,
            ..ExplicitLimits::default()
        };
        assert!(matches!(
            ReachableStates::explore(&b, &tight),
            Err(McError::InputTooWide { .. })
        ));
    }
}
