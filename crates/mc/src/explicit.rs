//! Explicit-state reachability model checking.
//!
//! For the paper's benchmark-scale designs (a handful of state bits,
//! narrow input vectors) explicit enumeration is *exact*: it computes the
//! reachable state set from reset and checks every property window from
//! every reachable state, so — unlike k-induction — it never answers
//! `Unknown` and never reports violations from unreachable states.
//! The reachable set is computed once per design and shared across all
//! assertion checks of a refinement run.
//!
//! ## The successor/observation cache
//!
//! A refinement run checks hundreds of properties against the same
//! reachable set, and the window walk of every check used to re-evaluate
//! the whole AIG for each `(state, input)` pair it visited — the
//! dominant cost on input-heavy designs like `fetch_stage`. The
//! [`ReachableStates`] therefore memoizes, per design:
//!
//! * a **successor table** `(state index, input word) → next state
//!   index` (every successor of a reachable state is reachable, so the
//!   walk never leaves the index space), built lazily on the first
//!   check; and
//! * one **observation bitset** per property literal (`AigLit`), giving
//!   the literal's value at every `(state, input)` pair. Literals repeat
//!   heavily across properties (mining features are fixed per design),
//!   so most checks find every bitset already filled.
//!
//! With both in hand a check is pure table lookups — no AIG evaluation
//! at all. The cache is budget-gated (designs whose `(state, input)`
//! space is too large fall back to direct evaluation) and shared across
//! threads behind the same `Arc` the checker already uses. Cached and
//! uncached walks visit windows in the identical order, so verdicts
//! *and* counterexample traces are bit-identical either way.

use crate::aig::{Aig, AigLit};
use crate::blast::Blasted;
use crate::error::McError;
use crate::prop::{assemble_input_vector, CexTrace, CheckResult, WindowProperty};
use gm_rtl::Module;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Budgets for explicit exploration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExplicitLimits {
    /// Maximum number of state bits (states are packed into a `u64`).
    pub max_state_bits: u32,
    /// Maximum number of free input bits (each state fans out into
    /// `2^input_bits` successors).
    pub max_input_bits: u32,
    /// Maximum number of reachable states to enumerate.
    pub max_states: usize,
    /// Maximum `(depth + 1) * input_bits` for window enumeration.
    pub max_window_bits: u32,
}

impl Default for ExplicitLimits {
    fn default() -> Self {
        ExplicitLimits {
            max_state_bits: 24,
            max_input_bits: 12,
            max_states: 1 << 20,
            max_window_bits: 24,
        }
    }
}

/// The reachable state space of a blasted design, with BFS predecessors
/// for counterexample reconstruction and a lazily built
/// successor/observation cache (see the module docs).
#[derive(Debug)]
pub struct ReachableStates {
    /// Packed latch states, in BFS discovery order (index 0 = reset).
    pub states: Vec<u64>,
    /// For each state (by discovery index): the predecessor state index
    /// and the input word that reached it. `None` for the reset state.
    pub parent: Vec<Option<(usize, u64)>>,
    /// Packed state word → discovery index (kept from exploration so
    /// the successor table can be built without re-hashing from
    /// scratch). Emptied when the design is over the cache budget —
    /// the table can never be built there, and the map would otherwise
    /// be tens of MB of dead weight on near-limit designs.
    index: HashMap<u64, usize>,
    input_bits: u32,
    state_bits: u32,
    cache: SuccCache,
}

impl Clone for ReachableStates {
    /// Clones the state set; the successor/observation cache starts
    /// empty in the clone (it is rebuilt on demand and never affects
    /// results).
    fn clone(&self) -> Self {
        ReachableStates {
            states: self.states.clone(),
            parent: self.parent.clone(),
            index: self.index.clone(),
            input_bits: self.input_bits,
            state_bits: self.state_bits,
            cache: SuccCache::default(),
        }
    }
}

/// Counters describing the explicit engine's per-design cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExplicitCacheStats {
    /// Whether the design fits the cache budget at all.
    pub enabled: bool,
    /// `(state, input)` pairs covered by the successor table (0 until
    /// the first cached check builds it).
    pub entries: usize,
    /// Distinct property literals with a filled observation bitset.
    pub obs_literals: usize,
    /// Full-design evaluation passes performed (one to build the
    /// successor table, plus one per batch of new literals) — the work
    /// the cache *did* pay.
    pub eval_passes: u64,
    /// `(state, input)` pair visits served from the tables — each one an
    /// AIG evaluation the cache avoided.
    pub cached_visits: u64,
}

/// Largest `(state, input)` pair count the cache will materialize
/// (successor table = 4 bytes per pair, observation bitsets 1 bit per
/// pair per literal — 16 MiB + 512 KiB/literal at the cap).
const MAX_CACHE_PAIRS: u64 = 1 << 22;

/// The lazily built per-design memo: `(state, input) → next state` plus
/// per-literal observation bitsets. Interior-mutable and `Sync` so the
/// shard workers and racing threads that share a `ReachableStates`
/// behind an `Arc` all benefit from (and contribute to) one cache.
#[derive(Debug, Default)]
struct SuccCache {
    /// Flat `state_index * combos + input_word → next state index`.
    successors: OnceLock<Vec<u32>>,
    /// Observation bitsets over the same flat index, one per literal.
    obs: Mutex<HashMap<AigLit, Arc<Vec<u64>>>>,
    eval_passes: AtomicU64,
    cached_visits: AtomicU64,
}

#[inline]
fn bitset_get(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] >> (i & 63) & 1 == 1
}

fn unpack(word: u64, bits: u32) -> Vec<bool> {
    (0..bits).map(|i| (word >> i) & 1 == 1).collect()
}

fn pack(bools: &[bool]) -> u64 {
    bools
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

impl ReachableStates {
    /// Enumerates the reachable states of `blasted` from its reset state.
    ///
    /// # Errors
    ///
    /// Fails when the design exceeds the limits (too many state or input
    /// bits, or more reachable states than budgeted).
    pub fn explore(blasted: &Blasted, limits: &ExplicitLimits) -> Result<Self, McError> {
        let aig = &blasted.aig;
        let state_bits = aig.latch_count() as u32;
        let input_bits = aig.input_count() as u32;
        if state_bits > limits.max_state_bits.min(64) {
            return Err(McError::StateTooLarge {
                bits: state_bits,
                limit: limits.max_state_bits.min(64),
            });
        }
        if input_bits > limits.max_input_bits.min(63) {
            return Err(McError::InputTooWide {
                bits: input_bits,
                limit: limits.max_input_bits.min(63),
            });
        }
        let init = pack(&aig.initial_state());
        let mut states = vec![init];
        let mut parent = vec![None];
        let mut index = HashMap::new();
        index.insert(init, 0usize);
        let mut head = 0usize;
        let combos = 1u64 << input_bits;
        while head < states.len() {
            let s = states[head];
            let latches = unpack(s, state_bits);
            for u in 0..combos {
                let inputs = unpack(u, input_bits);
                let vals = aig.eval(&inputs, &latches);
                let next = pack(&aig.next_state(&vals));
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(next) {
                    if states.len() >= limits.max_states {
                        return Err(McError::StateSpaceExceeded {
                            limit: limits.max_states,
                        });
                    }
                    e.insert(states.len());
                    states.push(next);
                    parent.push(Some((head, u)));
                }
            }
            head += 1;
        }
        let mut reach = ReachableStates {
            states,
            parent,
            index,
            input_bits,
            state_bits,
            cache: SuccCache::default(),
        };
        if !reach.cache_enabled() {
            // The successor table can never be built: drop the index
            // map rather than carrying it for the checker's lifetime.
            reach.index = HashMap::new();
        }
        Ok(reach)
    }

    /// Whether the design fits the successor/observation cache budget.
    fn cache_enabled(&self) -> bool {
        (self.states.len() as u64).saturating_mul(1u64 << self.input_bits) <= MAX_CACHE_PAIRS
    }

    /// Cache counters (see [`ExplicitCacheStats`]).
    pub fn cache_stats(&self) -> ExplicitCacheStats {
        ExplicitCacheStats {
            enabled: self.cache_enabled(),
            entries: self.cache.successors.get().map_or(0, Vec::len),
            obs_literals: self.cache.obs.lock().expect("obs cache poisoned").len(),
            eval_passes: self.cache.eval_passes.load(Ordering::Relaxed),
            cached_visits: self.cache.cached_visits.load(Ordering::Relaxed),
        }
    }

    /// The lazily built successor table: one full-design evaluation pass
    /// on first use, lookups forever after.
    fn successors(&self, aig: &Aig) -> &[u32] {
        self.cache.successors.get_or_init(|| {
            self.cache.eval_passes.fetch_add(1, Ordering::Relaxed);
            let combos = 1u64 << self.input_bits;
            let mut table = Vec::with_capacity(self.states.len() * combos as usize);
            for &packed in &self.states {
                let latches = unpack(packed, self.state_bits);
                for u in 0..combos {
                    let inputs = unpack(u, self.input_bits);
                    let vals = aig.eval(&inputs, &latches);
                    let next = pack(&aig.next_state(&vals));
                    let ni = self.index[&next];
                    table.push(ni as u32);
                }
            }
            table
        })
    }

    /// Observation bitsets for `lits`, in order. Literals not yet cached
    /// are filled by one shared evaluation pass over every
    /// `(state, input)` pair — across a refinement run most calls find
    /// everything already present and do no evaluation at all.
    ///
    /// The mutex is *not* held across the evaluation pass: concurrent
    /// checks whose literals are already cached proceed unblocked, at
    /// the price of bounded duplicate work when two threads race to
    /// fill the same cold literal (last insert wins; the bitsets are
    /// identical either way).
    fn observations(&self, aig: &Aig, lits: &[AigLit]) -> Vec<Arc<Vec<u64>>> {
        let mut missing: Vec<AigLit> = Vec::new();
        {
            let map = self.cache.obs.lock().expect("obs cache poisoned");
            for &l in lits {
                if !map.contains_key(&l) && !missing.contains(&l) {
                    missing.push(l);
                }
            }
        }
        if !missing.is_empty() {
            self.cache.eval_passes.fetch_add(1, Ordering::Relaxed);
            let combos = 1u64 << self.input_bits;
            let pairs = self.states.len() * combos as usize;
            let words = pairs.div_ceil(64);
            let mut fresh: Vec<Vec<u64>> = vec![vec![0u64; words]; missing.len()];
            let mut flat = 0usize;
            for &packed in &self.states {
                let latches = unpack(packed, self.state_bits);
                for u in 0..combos {
                    let inputs = unpack(u, self.input_bits);
                    let vals = aig.eval(&inputs, &latches);
                    for (bi, &lit) in missing.iter().enumerate() {
                        if aig.lit_value(&vals, lit) {
                            fresh[bi][flat >> 6] |= 1u64 << (flat & 63);
                        }
                    }
                    flat += 1;
                }
            }
            let mut map = self.cache.obs.lock().expect("obs cache poisoned");
            for (lit, bits) in missing.into_iter().zip(fresh) {
                map.insert(lit, Arc::new(bits));
            }
        }
        let map = self.cache.obs.lock().expect("obs cache poisoned");
        lits.iter().map(|l| map[l].clone()).collect()
    }

    /// The number of reachable states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no states were enumerated (impossible after `explore`).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Reconstructs the input sequence leading from reset to the state at
    /// `state_index`.
    fn path_to(&self, state_index: usize) -> Vec<u64> {
        let mut rev = Vec::new();
        let mut cur = state_index;
        while let Some((prev, word)) = self.parent[cur] {
            rev.push(word);
            cur = prev;
        }
        rev.reverse();
        rev
    }
}

/// Checks `prop` against every reachable window of the design.
///
/// Runs on the design's successor/observation cache when the
/// `(state, input)` space fits the budget (see the module docs) and by
/// direct AIG evaluation otherwise; both walks visit windows in the
/// identical order, so the verdict and any counterexample trace are the
/// same either way.
///
/// # Errors
///
/// Fails when `(depth + 1) * input_bits` exceeds the window budget.
pub fn explicit_check(
    module: &Module,
    blasted: &Blasted,
    reach: &ReachableStates,
    prop: &WindowProperty,
    limits: &ExplicitLimits,
) -> Result<CheckResult, McError> {
    let depth = prop.depth();
    let window_bits = (depth + 1) * reach.input_bits;
    if window_bits > limits.max_window_bits.min(63) {
        return Err(McError::WindowTooWide {
            bits: window_bits,
            limit: limits.max_window_bits.min(63),
        });
    }
    if reach.cache_enabled() {
        explicit_check_cached(module, blasted, reach, prop)
    } else {
        explicit_check_direct(module, blasted, reach, prop)
    }
}

/// The cached walk: states are discovery indices, every transition is a
/// successor-table lookup, every atom a bitset probe.
fn explicit_check_cached(
    module: &Module,
    blasted: &Blasted,
    reach: &ReachableStates,
    prop: &WindowProperty,
) -> Result<CheckResult, McError> {
    let aig = &blasted.aig;
    let depth = prop.depth();
    let combos = 1u64 << reach.input_bits;
    let succ = reach.successors(aig);
    // Resolve every atom to its observation bitset, consequent last.
    let mut lits: Vec<AigLit> = prop
        .antecedent
        .iter()
        .map(|a| blasted.signal_bit(a.signal, a.bit))
        .collect();
    lits.push(blasted.signal_bit(prop.consequent.signal, prop.consequent.bit));
    let obs = reach.observations(aig, &lits);
    let (cons_obs, ant_obs) = obs.split_last().expect("consequent bitset present");
    // Group antecedent atoms by offset for the window walk.
    type ObsAtom<'a> = (&'a Arc<Vec<u64>>, bool);
    let mut ant_by_offset: Vec<Vec<ObsAtom>> = vec![Vec::new(); depth as usize + 1];
    for (a, bits) in prop.antecedent.iter().zip(ant_obs) {
        ant_by_offset[a.offset as usize].push((bits, a.value));
    }
    let mut visits = 0u64;

    for si in 0..reach.states.len() {
        // Depth-first walk over input sequences with antecedent pruning —
        // the same traversal order as the direct walk below.
        // (next_offset, state_index, inputs_so_far, consequent_value)
        type WindowFrame = (u32, usize, Vec<u64>, Option<bool>);
        let mut stack: Vec<WindowFrame> = Vec::new();
        stack.push((0, si, Vec::new(), None));
        while let Some((offset, state, words, cons_seen)) = stack.pop() {
            if offset > depth {
                // All antecedent atoms held; check the consequent.
                let cons_val = cons_seen.expect("consequent evaluated in-window");
                if cons_val != prop.consequent.value {
                    reach
                        .cache
                        .cached_visits
                        .fetch_add(visits, Ordering::Relaxed);
                    let mut inputs = Vec::new();
                    for w in reach.path_to(si) {
                        let bits = unpack(w, reach.input_bits);
                        inputs.push(assemble_input_vector(module, blasted, |i| bits[i]));
                    }
                    for w in &words {
                        let bits = unpack(*w, reach.input_bits);
                        inputs.push(assemble_input_vector(module, blasted, |i| bits[i]));
                    }
                    return Ok(CheckResult::Violated(CexTrace { inputs }));
                }
                continue;
            }
            let base = state * combos as usize;
            for u in 0..combos {
                let flat = base + u as usize;
                visits += 1;
                // Antecedent atoms at this offset must hold.
                let ant_ok = ant_by_offset[offset as usize]
                    .iter()
                    .all(|(bits, value)| bitset_get(bits, flat) == *value);
                if !ant_ok {
                    continue;
                }
                let mut cons = cons_seen;
                if prop.consequent.offset == offset {
                    cons = Some(bitset_get(cons_obs, flat));
                }
                let mut w = words.clone();
                w.push(u);
                stack.push((offset + 1, succ[flat] as usize, w, cons));
            }
        }
    }
    reach
        .cache
        .cached_visits
        .fetch_add(visits, Ordering::Relaxed);
    Ok(CheckResult::Proved)
}

/// The direct walk for designs over the cache budget: every visited
/// `(state, input)` pair evaluates the AIG.
fn explicit_check_direct(
    module: &Module,
    blasted: &Blasted,
    reach: &ReachableStates,
    prop: &WindowProperty,
) -> Result<CheckResult, McError> {
    let aig = &blasted.aig;
    let depth = prop.depth();
    // Group atoms by offset for incremental checking during the window walk.
    let mut ant_by_offset: Vec<Vec<&crate::prop::BitAtom>> = vec![Vec::new(); depth as usize + 1];
    for a in &prop.antecedent {
        ant_by_offset[a.offset as usize].push(a);
    }
    let combos = 1u64 << reach.input_bits;

    for (si, &packed) in reach.states.iter().enumerate() {
        let start_latches = unpack(packed, reach.state_bits);
        // Depth-first walk over input sequences with antecedent pruning.
        // (next_offset, latches_at_offset, inputs_so_far, consequent_value)
        type WindowFrame = (u32, Vec<bool>, Vec<u64>, Option<bool>);
        let mut stack: Vec<WindowFrame> = Vec::new();
        stack.push((0, start_latches.clone(), Vec::new(), None));
        while let Some((offset, latches, words, cons_seen)) = stack.pop() {
            if offset > depth {
                // All antecedent atoms held; check the consequent.
                let cons_val = cons_seen.expect("consequent evaluated in-window");
                if cons_val != prop.consequent.value {
                    let mut inputs = Vec::new();
                    for w in reach.path_to(si) {
                        let bits = unpack(w, reach.input_bits);
                        inputs.push(assemble_input_vector(module, blasted, |i| bits[i]));
                    }
                    for w in &words {
                        let bits = unpack(*w, reach.input_bits);
                        inputs.push(assemble_input_vector(module, blasted, |i| bits[i]));
                    }
                    return Ok(CheckResult::Violated(CexTrace { inputs }));
                }
                continue;
            }
            for u in 0..combos {
                let inputs = unpack(u, reach.input_bits);
                let vals = aig.eval(&inputs, &latches);
                // Antecedent atoms at this offset must hold.
                let ant_ok = ant_by_offset[offset as usize]
                    .iter()
                    .all(|a| aig.lit_value(&vals, blasted.signal_bit(a.signal, a.bit)) == a.value);
                if !ant_ok {
                    continue;
                }
                let mut cons = cons_seen;
                if prop.consequent.offset == offset {
                    cons = Some(aig.lit_value(
                        &vals,
                        blasted.signal_bit(prop.consequent.signal, prop.consequent.bit),
                    ));
                }
                let mut w = words.clone();
                w.push(u);
                stack.push((offset + 1, next_latches(aig, &vals), w, cons));
            }
        }
    }
    Ok(CheckResult::Proved)
}

fn next_latches(aig: &Aig, vals: &[bool]) -> Vec<bool> {
    aig.next_state(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::blast;
    use crate::prop::BitAtom;
    use gm_rtl::{elaborate, parse_verilog};

    const ARBITER2: &str = "
    module arbiter2(input clk, input rst, input req0, input req1,
                    output reg gnt0, output reg gnt1);
      always @(posedge clk)
        if (rst) begin
          gnt0 <= 0; gnt1 <= 0;
        end else begin
          gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
          gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
        end
    endmodule";

    fn setup(src: &str) -> (gm_rtl::Module, Blasted, ReachableStates) {
        let m = parse_verilog(src).unwrap();
        let e = elaborate(&m).unwrap();
        let b = blast(&m, &e).unwrap();
        let r = ReachableStates::explore(&b, &ExplicitLimits::default()).unwrap();
        (m, b, r)
    }

    #[test]
    fn arbiter_reachable_states_exclude_double_grant() {
        let (_m, _b, r) = setup(ARBITER2);
        // gnt0 and gnt1 can never be high simultaneously: 3 states, not 4.
        assert_eq!(r.len(), 3);
        assert!(!r.states.contains(&0b11));
    }

    #[test]
    fn mutual_exclusion_is_proved() {
        let (m, b, r) = setup(ARBITER2);
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        // gnt0@0 |-> !gnt1@0 — holds on reachable states only.
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
            consequent: BitAtom::new(gnt1, 0, 0, false),
        };
        let res = explicit_check(&m, &b, &r, &prop, &ExplicitLimits::default()).unwrap();
        assert_eq!(res, CheckResult::Proved);
    }

    #[test]
    fn paper_assertion_a0_is_violated_with_trace() {
        let (m, b, r) = setup(ARBITER2);
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        // The paper's A0: !req0@0 |-> gnt0@1 — spurious.
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(req0, 0, 0, false)],
            consequent: BitAtom::new(gnt0, 0, 1, true),
        };
        match explicit_check(&m, &b, &r, &prop, &ExplicitLimits::default()).unwrap() {
            CheckResult::Violated(cex) => {
                // Replaying the trace must end with the violation: verify
                // by simulation.
                let mut sim = gm_sim::Simulator::new(&m).unwrap();
                let rst = m.require("rst").unwrap();
                sim.set_input(rst, gm_rtl::Bv::one_bit());
                sim.step();
                sim.set_input(rst, gm_rtl::Bv::zero_bit());
                let trace = sim.run_vectors(&cex.inputs, &mut gm_sim::NopObserver);
                let last = trace.len() - 1;
                assert!(
                    !trace.bit(last - 1, req0, 0),
                    "antecedent holds at window start"
                );
                assert!(!trace.bit(last, gnt0, 0), "consequent fails at window end");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn paper_assertion_a2_is_proved() {
        let (m, b, r) = setup(ARBITER2);
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        // A2: !req0@0 & !req0@1 |-> !gnt0@2 (paper: ~req0 & X~req0 => XX~gnt0).
        let prop = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, false),
                BitAtom::new(req0, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, false),
        };
        let res = explicit_check(&m, &b, &r, &prop, &ExplicitLimits::default()).unwrap();
        assert_eq!(res, CheckResult::Proved);
    }

    #[test]
    fn cached_walk_matches_direct_walk_exactly() {
        // Cross-validate the successor/observation cache against direct
        // AIG evaluation on proved and violated properties alike —
        // verdicts and traces must be bit-identical.
        let (m, b, r) = setup(ARBITER2);
        assert!(r.cache_enabled());
        let req0 = m.require("req0").unwrap();
        let req1 = m.require("req1").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let props = vec![
            WindowProperty {
                antecedent: vec![BitAtom::new(req0, 0, 0, false)],
                consequent: BitAtom::new(gnt0, 0, 1, true),
            },
            WindowProperty {
                antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
                consequent: BitAtom::new(gnt1, 0, 0, false),
            },
            WindowProperty {
                antecedent: vec![
                    BitAtom::new(req0, 0, 0, true),
                    BitAtom::new(req1, 0, 1, false),
                ],
                consequent: BitAtom::new(gnt0, 0, 2, true),
            },
        ];
        for p in &props {
            let cached = explicit_check_cached(&m, &b, &r, p).unwrap();
            let direct = explicit_check_direct(&m, &b, &r, p).unwrap();
            assert_eq!(cached, direct, "cache diverged on {}", p.display(&m));
        }
        let stats = r.cache_stats();
        assert!(stats.entries > 0, "successor table built");
        assert!(stats.obs_literals >= 4, "one bitset per distinct literal");
        assert!(stats.cached_visits > 0, "walk ran on the tables: {stats:?}");
        // Re-checking does no new evaluation passes: everything is warm.
        let passes = r.cache_stats().eval_passes;
        for p in &props {
            let _ = explicit_check_cached(&m, &b, &r, p).unwrap();
        }
        assert_eq!(r.cache_stats().eval_passes, passes);
    }

    #[test]
    fn clone_resets_the_cache_but_keeps_the_states() {
        let (m, b, r) = setup(ARBITER2);
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
            consequent: BitAtom::new(gnt1, 0, 0, false),
        };
        explicit_check(&m, &b, &r, &prop, &ExplicitLimits::default()).unwrap();
        assert!(r.cache_stats().entries > 0);
        let fresh = r.clone();
        assert_eq!(fresh.states, r.states);
        assert_eq!(fresh.cache_stats().entries, 0, "clone starts cold");
        assert_eq!(
            explicit_check(&m, &b, &fresh, &prop, &ExplicitLimits::default()).unwrap(),
            CheckResult::Proved
        );
    }

    #[test]
    fn limits_are_enforced() {
        let m = parse_verilog(
            "module m(input clk, input [7:0] d, output reg [7:0] q);
               always @(posedge clk) q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let b = blast(&m, &e).unwrap();
        let tight = ExplicitLimits {
            max_input_bits: 4,
            ..ExplicitLimits::default()
        };
        assert!(matches!(
            ReachableStates::explore(&b, &tight),
            Err(McError::InputTooWide { .. })
        ));
    }
}
