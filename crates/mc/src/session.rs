//! Persistent, batched verification sessions.
//!
//! The refinement loop checks hundreds of candidate assertions against
//! the *same* blasted design every iteration. A [`CheckSession`] owns
//! the two unrollings those checks need — one reset-rooted (BMC and
//! induction base cases) and one free-init (induction steps) — and
//! poses every property as an activation-literal query against them, so
//! the per-iteration cost drops from O(candidates × unroll) to one
//! shared unrolling per session. The solver's learnt clauses carry over
//! between queries, and [`SessionStats`] exposes where the time went.
//!
//! ## Shard lifecycle
//!
//! Sessions are plain owned data over an `Arc<Blasted>`, so they are
//! `Send`: the sharded dispatch layer
//! ([`crate::Checker::check_batch_sharded`]) keeps a pool of them — one
//! per shard — moves each into a scoped worker thread for the duration
//! of a batch, and takes them back (with their unrollings, learnt
//! clauses and stats) when the workers join. A shard session therefore
//! persists across engine iterations exactly like the single session
//! does, and blasting still happens once: every session shares the same
//! `Arc<Blasted>`.
//!
//! ## Determinism contract
//!
//! A session's *verdicts* (`Proved` / `Violated` / `Unknown`) depend
//! only on the design, the property and the query bounds — SAT / UNSAT
//! answers are independent of learnt-clause history. A session's
//! *models* (counterexample traces) are not: they vary with the queries
//! the session decided earlier. The [`crate::Checker`] therefore never
//! publishes a session model; violated SAT verdicts are re-extracted on
//! a fresh canonical unrolling (counted in
//! [`SessionStats::cex_canonicalized`]), which makes every result — and
//! every downstream closure-outcome artifact — identical regardless of
//! shard count or batch order.

use crate::blast::Blasted;
use crate::bmc::{UnrollProperty, Unroller};
use crate::error::McError;
use crate::prop::CheckResult;
use gm_rtl::Module;
use gm_sat::{SolveResult, SolverStats};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// True when a cooperative cancel token has been raised.
pub(crate) fn cancel_requested(cancel: Option<&AtomicBool>) -> bool {
    cancel.is_some_and(|c| c.load(Ordering::Acquire))
}

/// Evaluates the `sat.stall` / `sat.flaky` fault points at a cancel
/// poll site (between SAT queries). Disarmed cost is one relaxed
/// atomic load per poll — the same budget as the cancel check itself.
///
/// Both points are gated on a cancel token being *present*: the
/// non-cancellable wrappers ([`CheckSession::bmc`] /
/// [`CheckSession::k_induction`]) promise infallibility without a
/// token, and the conditions these faults emulate (a wedged or flaky
/// SAT service) are only recoverable on the served, cancellable path.
pub(crate) fn injected_fault(cancel: Option<&AtomicBool>) -> Option<McError> {
    if !gm_fault::enabled() {
        return None;
    }
    let c = cancel?;
    if gm_fault::fire("sat.stall") {
        // A wedged SAT query: the only way out is the cooperative
        // cancel token (deadline enforcement or a caller cancel), which
        // is exactly what deadline tests need to prove.
        while !c.load(Ordering::Acquire) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        return Some(McError::Cancelled);
    }
    if gm_fault::fire("sat.flaky") {
        return Some(McError::TransientFault { point: "sat.flaky" });
    }
    None
}

/// Counters describing the work a verification session has done.
///
/// Cumulative; subtract snapshots (the [`std::ops::Sub`] impl
/// saturates) to attribute work to one batch or one engine iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Individual SAT solver calls (one per BMC window start / induction
    /// step); a single property decision may cost several.
    pub sat_queries: u64,
    /// Property checks decided by the SAT engines (BMC / k-induction).
    pub sat_decided: u64,
    /// Property checks decided by explicit-state reachability.
    pub explicit_queries: u64,
    /// Property results served from the checker's memo without any
    /// engine work.
    pub memo_hits: u64,
    /// Aggregated solver work across all SAT queries.
    pub solver: SolverStats,
    /// Time frames newly encoded into an unrolling.
    pub frames_encoded: u64,
    /// Frames a query needed that were already encoded — the re-blasting
    /// the session avoided.
    pub frames_reused: u64,
    /// Unrollers constructed (at most one reset-rooted plus one
    /// free-init per session). Scratch unrollers used for canonical
    /// counterexample extraction are counted in
    /// [`SessionStats::cex_canonicalized`] instead.
    pub unrollers_built: u64,
    /// Violated SAT verdicts whose counterexample was re-extracted on a
    /// fresh canonical unrolling (the determinism contract: traces must
    /// not depend on session history or shard partition).
    pub cex_canonicalized: u64,
}

impl std::ops::Sub for SessionStats {
    type Output = SessionStats;

    fn sub(self, rhs: SessionStats) -> SessionStats {
        SessionStats {
            sat_queries: self.sat_queries.saturating_sub(rhs.sat_queries),
            sat_decided: self.sat_decided.saturating_sub(rhs.sat_decided),
            explicit_queries: self.explicit_queries.saturating_sub(rhs.explicit_queries),
            memo_hits: self.memo_hits.saturating_sub(rhs.memo_hits),
            solver: self.solver - rhs.solver,
            frames_encoded: self.frames_encoded.saturating_sub(rhs.frames_encoded),
            frames_reused: self.frames_reused.saturating_sub(rhs.frames_reused),
            unrollers_built: self.unrollers_built.saturating_sub(rhs.unrollers_built),
            cex_canonicalized: self.cex_canonicalized.saturating_sub(rhs.cex_canonicalized),
        }
    }
}

impl std::ops::Add for SessionStats {
    type Output = SessionStats;

    fn add(self, rhs: SessionStats) -> SessionStats {
        SessionStats {
            sat_queries: self.sat_queries + rhs.sat_queries,
            sat_decided: self.sat_decided + rhs.sat_decided,
            explicit_queries: self.explicit_queries + rhs.explicit_queries,
            memo_hits: self.memo_hits + rhs.memo_hits,
            solver: self.solver + rhs.solver,
            frames_encoded: self.frames_encoded + rhs.frames_encoded,
            frames_reused: self.frames_reused + rhs.frames_reused,
            unrollers_built: self.unrollers_built + rhs.unrollers_built,
            cex_canonicalized: self.cex_canonicalized + rhs.cex_canonicalized,
        }
    }
}

impl std::ops::AddAssign for SessionStats {
    fn add_assign(&mut self, rhs: SessionStats) {
        *self = *self + rhs;
    }
}

impl SessionStats {
    /// Total property decisions made by an engine (memo hits excluded),
    /// in comparable units: one per property, whether it was decided by
    /// explicit-state reachability or by the SAT engines.
    pub fn engine_queries(&self) -> u64 {
        self.sat_decided + self.explicit_queries
    }
}

/// A persistent SAT-engine session over one blasted design.
///
/// Owns at most one reset-rooted [`Unroller`] (shared by BMC and every
/// k-induction base case) and one free-init unroller (shared by every
/// induction step), both built lazily on first use and reused for the
/// session's lifetime. All queries go through
/// [`gm_sat::Solver::solve_with_assumptions`], so the clause database
/// only ever grows with gate definitions and learnt clauses — no query
/// can contaminate a later one.
#[derive(Debug)]
pub struct CheckSession {
    blasted: Arc<Blasted>,
    base: Option<Unroller>,
    step: Option<Unroller>,
    stats: SessionStats,
}

impl CheckSession {
    /// Creates an empty session over a shared blasted design.
    pub fn new(blasted: Arc<Blasted>) -> Self {
        CheckSession {
            blasted,
            base: None,
            step: None,
            stats: SessionStats::default(),
        }
    }

    /// The design this session unrolls.
    pub fn blasted(&self) -> &Blasted {
        &self.blasted
    }

    /// Cumulative statistics for the session.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Approximate resident size of the session's unrollings (see
    /// [`Unroller::approx_bytes`]) — the number a long-lived service
    /// weighs when deciding which warm design state to evict.
    pub fn approx_bytes(&self) -> usize {
        self.base.as_ref().map_or(0, Unroller::approx_bytes)
            + self.step.as_ref().map_or(0, Unroller::approx_bytes)
    }

    pub(crate) fn note_memo_hit(&mut self) {
        self.stats.memo_hits += 1;
    }

    pub(crate) fn note_explicit_query(&mut self) {
        self.stats.explicit_queries += 1;
    }

    pub(crate) fn note_sat_decision(&mut self) {
        self.stats.sat_decided += 1;
    }

    pub(crate) fn note_cex_canonicalized(&mut self) {
        self.stats.cex_canonicalized += 1;
    }

    /// Lazily builds one of the two unrollers, counting construction.
    fn unroller<'s>(
        slot: &'s mut Option<Unroller>,
        blasted: &Arc<Blasted>,
        free_init: bool,
        stats: &mut SessionStats,
    ) -> &'s mut Unroller {
        if slot.is_none() {
            *slot = Some(Unroller::new(blasted.clone(), free_init));
            stats.unrollers_built += 1;
        }
        slot.as_mut().expect("unroller just ensured")
    }

    /// Extends `unroller` to cover frames `0..=last`, attributing newly
    /// encoded frames vs reused ones to the session stats.
    fn extend_frames(unroller: &mut Unroller, last: usize, stats: &mut SessionStats) {
        let have = unroller.frame_count();
        let need = last + 1;
        unroller.ensure_frame(last);
        stats.frames_reused += need.min(have) as u64;
        stats.frames_encoded += need.saturating_sub(have) as u64;
    }

    /// One assumption-based query, folding the solver's per-call cost
    /// into the session stats.
    fn solve(
        unroller: &mut Unroller,
        assumptions: &[gm_sat::Lit],
        stats: &mut SessionStats,
    ) -> SolveResult {
        let mut span = gm_trace::span("mc", "mc.sat_query");
        stats.sat_queries += 1;
        let res = unroller.solver().solve_with_assumptions(assumptions);
        let delta = unroller.solver().last_call_stats();
        stats.solver += delta;
        if span.is_active() {
            span.arg("assumptions", assumptions.len());
            span.arg("sat", res == SolveResult::Sat);
            span.arg("conflicts", delta.conflicts);
            span.arg("decisions", delta.decisions);
            span.arg("propagations", delta.propagations);
            span.arg("learnt", delta.learnt);
        }
        res
    }

    /// Asks the reset-rooted unrolling whether the window starting at
    /// `start` can violate `prop`; returns the trace if so.
    fn base_violation<P: UnrollProperty>(
        &mut self,
        module: &Module,
        prop: &P,
        start: usize,
    ) -> Option<crate::prop::CexTrace> {
        let depth = prop.window_depth() as usize;
        let base = Self::unroller(&mut self.base, &self.blasted, false, &mut self.stats);
        Self::extend_frames(base, start + depth, &mut self.stats);
        let v = prop.encode_violation(base, start);
        if Self::solve(base, &[v], &mut self.stats) == SolveResult::Sat {
            Some(base.extract_cex(module, start + depth))
        } else {
            None
        }
    }

    /// Bounded model checking against the shared reset-rooted unrolling:
    /// window starts range over `0..=max_start`.
    ///
    /// Same verdict as the one-shot [`crate::bmc`], but frames, gate
    /// encodings and learnt clauses persist for the next property.
    /// Latch-free designs are start-invariant, so their scan collapses
    /// to the single window at reset (the reported `Unknown` bound stays
    /// the requested one).
    pub fn bmc<P: UnrollProperty>(
        &mut self,
        module: &Module,
        prop: &P,
        max_start: u32,
    ) -> CheckResult {
        self.bmc_cancellable(module, prop, max_start, None)
            .expect("bmc without a cancel token is infallible")
    }

    /// [`CheckSession::bmc`] with a cooperative cancel token polled
    /// between SAT queries (once per window start of the unrolling
    /// scan). Returns [`McError::Cancelled`] as soon as the token is
    /// raised; no partial verdict is published.
    pub fn bmc_cancellable<P: UnrollProperty>(
        &mut self,
        module: &Module,
        prop: &P,
        max_start: u32,
        cancel: Option<&AtomicBool>,
    ) -> Result<CheckResult, McError> {
        let last_start = crate::bmc::last_scan_start(&self.blasted, max_start);
        for start in 0..=last_start {
            if cancel_requested(cancel) {
                return Err(McError::Cancelled);
            }
            if let Some(fault) = injected_fault(cancel) {
                return Err(fault);
            }
            let mut span = gm_trace::span("mc", "mc.bmc_window");
            span.arg("start", start as u64);
            if let Some(cex) = self.base_violation(module, prop, start) {
                span.arg("violated", true);
                return Ok(CheckResult::Violated(cex));
            }
        }
        Ok(CheckResult::Unknown { bound: max_start })
    }

    /// k-induction against the shared unrollings: base cases on the
    /// reset-rooted one, step cases on the free-init one.
    ///
    /// Same verdict as the one-shot [`crate::k_induction`].
    pub fn k_induction<P: UnrollProperty>(
        &mut self,
        module: &Module,
        prop: &P,
        max_k: u32,
    ) -> CheckResult {
        self.k_induction_cancellable(module, prop, max_k, None)
            .expect("k-induction without a cancel token is infallible")
    }

    /// [`CheckSession::k_induction`] with a cooperative cancel token
    /// polled between SAT queries (once per induction depth `k`).
    /// Returns [`McError::Cancelled`] as soon as the token is raised;
    /// no partial verdict is published.
    pub fn k_induction_cancellable<P: UnrollProperty>(
        &mut self,
        module: &Module,
        prop: &P,
        max_k: u32,
        cancel: Option<&AtomicBool>,
    ) -> Result<CheckResult, McError> {
        let depth = prop.window_depth() as usize;
        for k in 0..=max_k as usize {
            if cancel_requested(cancel) {
                return Err(McError::Cancelled);
            }
            if let Some(fault) = injected_fault(cancel) {
                return Err(fault);
            }
            let mut span = gm_trace::span("mc", "mc.kind_depth");
            span.arg("k", k);
            // Base: violation in the window starting at k from reset?
            if let Some(cex) = self.base_violation(module, prop, k) {
                span.arg("violated", true);
                return Ok(CheckResult::Violated(cex));
            }
            // Step: from a free state, k windows hold but window k fails?
            let step = Self::unroller(&mut self.step, &self.blasted, true, &mut self.stats);
            Self::extend_frames(step, k + depth, &mut self.stats);
            let mut assumptions = Vec::with_capacity(k + 1);
            for j in 0..k {
                assumptions.push(prop.encode_holds(step, j));
            }
            assumptions.push(prop.encode_violation(step, k));
            if Self::solve(step, &assumptions, &mut self.stats) == SolveResult::Unsat {
                return Ok(CheckResult::Proved);
            }
        }
        Ok(CheckResult::Unknown { bound: max_k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::blast;
    use crate::bmc::{bmc, k_induction};
    use crate::prop::{BitAtom, WindowProperty};
    use gm_rtl::{elaborate, parse_verilog};

    const DFF: &str = "
    module dff(input clk, input rst, input d, output reg q);
      always @(posedge clk)
        if (rst) q <= 0;
        else q <= d;
    endmodule";

    fn setup(src: &str) -> (gm_rtl::Module, Arc<Blasted>) {
        let m = parse_verilog(src).unwrap();
        let e = elaborate(&m).unwrap();
        let b = blast(&m, &e).unwrap();
        (m, Arc::new(b))
    }

    #[test]
    fn session_agrees_with_one_shot_engines_and_reuses_frames() {
        let (m, b) = setup(DFF);
        let d = m.require("d").unwrap();
        let q = m.require("q").unwrap();
        let proved = WindowProperty {
            antecedent: vec![BitAtom::new(d, 0, 0, true)],
            consequent: BitAtom::new(q, 0, 1, true),
        };
        let violated = WindowProperty {
            antecedent: vec![BitAtom::new(d, 0, 0, true)],
            consequent: BitAtom::new(q, 0, 1, false),
        };
        let mut session = CheckSession::new(b.clone());
        for prop in [&proved, &violated] {
            assert_eq!(
                session.k_induction(&m, prop, 4),
                k_induction(&m, &b, prop, 4)
            );
            assert_eq!(session.bmc(&m, prop, 4), bmc(&m, &b, prop, 4));
        }
        let stats = session.stats();
        assert!(stats.sat_queries > 0);
        assert_eq!(stats.unrollers_built, 2, "one base + one step unroller");
        assert!(
            stats.frames_reused > stats.frames_encoded,
            "the second property should ride the first one's unrolling: {stats:?}"
        );
    }

    #[test]
    fn repeated_query_encodes_no_new_frames() {
        let (m, b) = setup(DFF);
        let d = m.require("d").unwrap();
        let q = m.require("q").unwrap();
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(d, 0, 0, true)],
            consequent: BitAtom::new(q, 0, 1, true),
        };
        let mut session = CheckSession::new(b);
        let first = session.k_induction(&m, &prop, 4);
        let after_first = session.stats();
        let second = session.k_induction(&m, &prop, 4);
        let delta = session.stats() - after_first;
        assert_eq!(first, second);
        assert_eq!(delta.frames_encoded, 0, "everything already unrolled");
        assert_eq!(delta.unrollers_built, 0);
        assert!(delta.frames_reused > 0);
    }
}
