//! And-inverter graphs with structural hashing.
//!
//! The bit-level netlist form of a design: two-input AND nodes with
//! complemented edges, primary inputs, and latches (one bit of state
//! each). All richer operators (XOR, MUX, adders, comparators) are built
//! from ANDs by [`crate::blast`]. Node construction is hash-consed, so
//! structurally identical subcircuits share nodes.

use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

/// A literal into an [`Aig`]: a node index with an optional complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant-false literal (node 0, uncomplemented).
    pub const FALSE: AigLit = AigLit(0);
    /// The constant-true literal (node 0, complemented).
    pub const TRUE: AigLit = AigLit(1);

    fn new(node: u32, complement: bool) -> Self {
        AigLit(node << 1 | u32::from(complement))
    }

    /// Reconstructs a literal from its AIGER code (`2 * node +
    /// complement`), the inverse of the encoding used by
    /// [`crate::aiger::to_aiger`].
    pub fn from_code(code: u32) -> Self {
        AigLit(code)
    }

    /// The AIGER code of this literal (`2 * node + complement`).
    pub fn code(self) -> u32 {
        self.0
    }

    /// The index of the underlying node.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// A constant literal.
    pub fn constant(value: bool) -> Self {
        if value {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }
}

impl Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Debug for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// A node of the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-false node (always node 0).
    ConstFalse,
    /// Primary input `index` (dense, in creation order).
    Input {
        /// The dense input index.
        index: u32,
    },
    /// Latch `index` (dense, in creation order); the current-state value.
    Latch {
        /// The dense latch index.
        index: u32,
    },
    /// Two-input AND of two literals.
    And(AigLit, AigLit),
}

/// A latch definition: initial value and next-state function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latch {
    /// The node representing the latch's current value.
    pub node: u32,
    /// Power-on value.
    pub init: bool,
    /// Next-state literal (set via [`Aig::set_latch_next`]).
    pub next: AigLit,
}

/// An and-inverter graph.
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    inputs: Vec<u32>,
    latches: Vec<Latch>,
    strash: HashMap<(AigLit, AigLit), u32>,
}

impl Aig {
    /// Creates an empty graph (just the constant node).
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::ConstFalse],
            inputs: Vec::new(),
            latches: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// The number of nodes (including the constant).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph contains only the constant node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The number of AND nodes.
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(_, _)))
            .count()
    }

    /// The number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// The number of latches.
    pub fn latch_count(&self) -> usize {
        self.latches.len()
    }

    /// The node table.
    pub fn nodes(&self) -> &[AigNode] {
        &self.nodes
    }

    /// The latch table (indexed by dense latch index).
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// The node index of primary input `index`.
    pub fn input_node(&self, index: usize) -> usize {
        self.inputs[index] as usize
    }

    /// Adds a primary input, returning its literal.
    pub fn add_input(&mut self) -> AigLit {
        let node = self.nodes.len() as u32;
        let index = self.inputs.len() as u32;
        self.nodes.push(AigNode::Input { index });
        self.inputs.push(node);
        AigLit::new(node, false)
    }

    /// Adds a latch with the given initial value, returning its
    /// current-state literal. The next-state function starts at constant
    /// false; set it with [`Aig::set_latch_next`] once built.
    pub fn add_latch(&mut self, init: bool) -> AigLit {
        let node = self.nodes.len() as u32;
        let index = self.latches.len() as u32;
        self.nodes.push(AigNode::Latch { index });
        self.latches.push(Latch {
            node,
            init,
            next: AigLit::FALSE,
        });
        AigLit::new(node, false)
    }

    /// Sets the next-state function of latch `index`.
    pub fn set_latch_next(&mut self, index: usize, next: AigLit) {
        self.latches[index].next = next;
    }

    /// The AND of two literals, hash-consed with constant/trivial folding.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant and trivial cases.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        // Canonical operand order for hashing.
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&(x, y)) {
            return AigLit::new(node, false);
        }
        let node = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(x, y));
        self.strash.insert((x, y), node);
        AigLit::new(node, false)
    }

    /// The OR of two literals.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// The XOR of two literals.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n = self.and(a, !b);
        let m = self.and(!a, b);
        self.or(n, m)
    }

    /// `c ? t : e`.
    pub fn mux(&mut self, c: AigLit, t: AigLit, e: AigLit) -> AigLit {
        if t == e {
            return t;
        }
        let ct = self.and(c, t);
        let ce = self.and(!c, e);
        self.or(ct, ce)
    }

    /// `a <-> b`.
    pub fn iff(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// Conjunction over many literals.
    pub fn and_many(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::TRUE;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Disjunction over many literals.
    pub fn or_many(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::FALSE;
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Evaluates every node given input values (by dense input index) and
    /// latch values (by dense latch index). Returns per-node values.
    ///
    /// Nodes are topologically ordered by construction, so one pass
    /// suffices.
    pub fn eval(&self, inputs: &[bool], latches: &[bool]) -> Vec<bool> {
        debug_assert_eq!(inputs.len(), self.inputs.len());
        debug_assert_eq!(latches.len(), self.latches.len());
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                AigNode::ConstFalse => false,
                AigNode::Input { index } => inputs[*index as usize],
                AigNode::Latch { index } => latches[*index as usize],
                AigNode::And(a, b) => {
                    let va = values[a.node()] ^ a.is_complemented();
                    let vb = values[b.node()] ^ b.is_complemented();
                    va && vb
                }
            };
        }
        values
    }

    /// Reads a literal's value from an [`Aig::eval`] result.
    pub fn lit_value(&self, values: &[bool], lit: AigLit) -> bool {
        values[lit.node()] ^ lit.is_complemented()
    }

    /// Computes the next latch state from an [`Aig::eval`] result.
    pub fn next_state(&self, values: &[bool]) -> Vec<bool> {
        self.latches
            .iter()
            .map(|l| self.lit_value(values, l.next))
            .collect()
    }

    /// The initial latch state.
    pub fn initial_state(&self) -> Vec<bool> {
        self.latches.iter().map(|l| l.init).collect()
    }

    /// Rebuilds a graph from explicit tables (used by the AIGER
    /// importer). The strash is reconstructed from the AND nodes so the
    /// graph keeps hash-consing new construction.
    pub(crate) fn from_parts(nodes: Vec<AigNode>, inputs: Vec<u32>, latches: Vec<Latch>) -> Self {
        let mut strash = HashMap::new();
        for (idx, node) in nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                strash.insert((*a, *b), idx as u32);
            }
        }
        Aig {
            nodes,
            inputs,
            latches,
            strash,
        }
    }

    /// Structural equality: identical node tables, input order, and
    /// latch definitions. Stricter than semantic equivalence — two
    /// graphs computing the same functions with different node layouts
    /// compare unequal — which is exactly what a lossless round trip
    /// must preserve.
    pub fn structurally_equal(&self, other: &Aig) -> bool {
        self.nodes == other.nodes && self.inputs == other.inputs && self.latches == other.latches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.add_input();
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(a, AigLit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.or(a, AigLit::TRUE), AigLit::TRUE);
        assert_eq!(g.xor(a, AigLit::FALSE), a);
        assert_eq!(g.xor(a, a), AigLit::FALSE);
        assert_eq!(g.and_count(), 0, "no AND nodes for folded ops");
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y, "commuted AND hash-conses to the same node");
        assert_eq!(g.and_count(), 1);
    }

    #[test]
    fn eval_combinational() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let x = g.xor(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let vals = g.eval(&[va, vb], &[]);
            assert_eq!(g.lit_value(&vals, x), va ^ vb);
        }
    }

    #[test]
    fn mux_select() {
        let mut g = Aig::new();
        let c = g.add_input();
        let t = g.add_input();
        let e = g.add_input();
        let m = g.mux(c, t, e);
        for vc in [false, true] {
            for vt in [false, true] {
                for ve in [false, true] {
                    let vals = g.eval(&[vc, vt, ve], &[]);
                    assert_eq!(g.lit_value(&vals, m), if vc { vt } else { ve });
                }
            }
        }
    }

    #[test]
    fn latch_state_stepping() {
        // A toggle flip-flop: next = !state.
        let mut g = Aig::new();
        let q = g.add_latch(false);
        g.set_latch_next(0, !q);
        let mut state = g.initial_state();
        assert_eq!(state, vec![false]);
        for i in 0..4 {
            let vals = g.eval(&[], &state);
            state = g.next_state(&vals);
            assert_eq!(state[0], i % 2 == 0, "toggles each cycle");
        }
    }

    #[test]
    fn complemented_edges_in_eval() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let nand = !g.and(a, b);
        let vals = g.eval(&[true, true], &[]);
        assert!(!g.lit_value(&vals, nand));
        let vals = g.eval(&[true, false], &[]);
        assert!(g.lit_value(&vals, nand));
    }
}
