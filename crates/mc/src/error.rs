//! Model-checking errors.

use gm_rtl::RtlError;
use std::error::Error as StdError;
use std::fmt;

/// Errors from the model-checking engines.
#[derive(Clone, Debug, PartialEq)]
pub enum McError {
    /// Elaboration or blasting failed.
    Rtl(RtlError),
    /// More state bits than the explicit engine can pack.
    StateTooLarge {
        /// State bits in the design.
        bits: u32,
        /// The configured limit.
        limit: u32,
    },
    /// More input bits than the explicit engine can enumerate.
    InputTooWide {
        /// Free input bits in the design.
        bits: u32,
        /// The configured limit.
        limit: u32,
    },
    /// The reachable set exceeded its budget.
    StateSpaceExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// The property window is too wide for explicit enumeration.
    WindowTooWide {
        /// `(depth + 1) * input_bits` of the query.
        bits: u32,
        /// The configured limit.
        limit: u32,
    },
    /// A cooperative cancel token stopped the check before a verdict.
    /// Cancelled decisions are never memoized — re-checking the
    /// property after the cancel decides it normally.
    Cancelled,
    /// An injected transient fault (`gm_fault`) aborted the check. Only
    /// produced while a fault plan is armed; carries the fault-point
    /// name. Retryable: a fresh run of the same check is expected to
    /// succeed once the fault stops firing.
    TransientFault {
        /// The `gm_fault` point that fired (e.g. `sat.flaky`).
        point: &'static str,
    },
}

impl McError {
    /// Whether a fresh identical run could plausibly succeed. Resource
    /// limits and elaboration errors are deterministic — retrying them
    /// burns work for the same verdict — while injected transient
    /// faults are retryable by construction.
    pub fn retryable(&self) -> bool {
        matches!(self, McError::TransientFault { .. })
    }
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Rtl(e) => write!(f, "rtl error: {e}"),
            McError::StateTooLarge { bits, limit } => {
                write!(f, "{bits} state bits exceed the explicit limit of {limit}")
            }
            McError::InputTooWide { bits, limit } => {
                write!(f, "{bits} input bits exceed the explicit limit of {limit}")
            }
            McError::StateSpaceExceeded { limit } => {
                write!(f, "reachable state count exceeds {limit}")
            }
            McError::WindowTooWide { bits, limit } => {
                write!(f, "window enumeration of {bits} bits exceeds {limit}")
            }
            McError::Cancelled => write!(f, "check cancelled"),
            McError::TransientFault { point } => {
                write!(f, "transient injected fault at {point}")
            }
        }
    }
}

impl StdError for McError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            McError::Rtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RtlError> for McError {
    fn from(e: RtlError) -> Self {
        McError::Rtl(e)
    }
}
