//! # gm-mc — bit-level model checking
//!
//! The formal half of GoldMine: decides mined candidate assertions and
//! produces the counterexample traces that drive the paper's refinement
//! loop. Replaces the SMV / commercial checkers the paper used.
//!
//! Pipeline: [`blast`] compiles an elaborated `gm-rtl` module into an
//! and-inverter graph ([`Aig`]) with hash-consing; properties are
//! [`WindowProperty`]s (bounded-window implications, the shape of every
//! decision-tree assertion); three engines decide them:
//!
//! * **explicit-state reachability** ([`ReachableStates`],
//!   [`explicit_check`]) — exact for benchmark-scale designs, never
//!   `Unknown`, never confused by unreachable states;
//! * **BMC** ([`bmc`]) — SAT-based refutation with reset-rooted traces;
//! * **k-induction** ([`k_induction`]) — SAT-based proof, may answer
//!   `Unknown`.
//!
//! [`Checker`] bit-blasts once and dispatches queries, caching the
//! reachable set across the hundreds of assertion checks a refinement
//! run makes. Model-checking semantics: reset pinned deasserted, initial
//! state = declared register init values (see DESIGN.md).

#![warn(missing_docs)]

mod aig;
mod aiger;
mod blast;
mod bmc;
mod check;
mod error;
mod explicit;
mod prop;

pub use aig::{Aig, AigLit, AigNode, Latch};
pub use aiger::{blasted_to_aiger, parse_aiger, to_aiger, ParsedAiger};
pub use blast::{blast, Blasted};
pub use bmc::{bmc, k_induction, Unroller};
pub use check::{Backend, Checker};
pub use error::McError;
pub use explicit::{explicit_check, ExplicitLimits, ReachableStates};
pub use prop::{BitAtom, CexTrace, CheckResult, WindowProperty};
