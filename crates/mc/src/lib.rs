//! # gm-mc — bit-level model checking
//!
//! The formal half of GoldMine: decides mined candidate assertions and
//! produces the counterexample traces that drive the paper's refinement
//! loop. Replaces the SMV / commercial checkers the paper used.
//!
//! Pipeline: [`blast`] compiles an elaborated `gm-rtl` module into an
//! and-inverter graph ([`Aig`]) with hash-consing; properties are
//! [`WindowProperty`]s (bounded-window implications, the shape of every
//! decision-tree assertion); three engines decide them:
//!
//! * **explicit-state reachability** ([`ReachableStates`],
//!   [`explicit_check`]) — exact for benchmark-scale designs, never
//!   `Unknown`, never confused by unreachable states;
//! * **BMC** ([`bmc`]) — SAT-based refutation with reset-rooted traces;
//! * **k-induction** ([`k_induction`]) — SAT-based proof, may answer
//!   `Unknown`.
//!
//! ## Sessions and batching
//!
//! The refinement loop is query-heavy: hundreds of candidate assertions
//! per iteration against one fixed design. The crate is organized
//! around that shape:
//!
//! * [`Unroller`] lays time frames into one incremental SAT solver and
//!   hands out *activation literals* for property windows, so a query
//!   is an assumption, never a permanent assertion;
//! * [`CheckSession`] owns at most two unrollings (reset-rooted for BMC
//!   and induction bases, free-init for induction steps) and reuses
//!   them — frames, gate encodings and learnt clauses — across every
//!   property it decides, reporting the work in [`SessionStats`];
//! * [`Checker`] bit-blasts once, lazily computes the reachable state
//!   set once, routes queries to the configured backend through its
//!   persistent session, memoizes every decided property, and accepts
//!   whole worklists via [`Checker::check_batch`] — repeated candidates
//!   across refinement iterations cost a hash lookup;
//! * [`Checker::check_batch_sharded`] splits a worklist across a pool
//!   of persistent `Send` shard sessions (one scoped worker thread
//!   each, all over one `Arc`-shared blasted design) with a
//!   deterministic merge: results — counterexample traces included —
//!   are bit-identical to the single-session batch for every shard
//!   count, because violated verdicts carry *canonical* traces
//!   re-extracted independently of session history. A racing mode
//!   ([`Checker::with_racing`]) runs the explicit and SAT engines of a
//!   property concurrently and takes the first conclusive answer.
//!
//! The free [`bmc`] / [`k_induction`] functions remain as one-shot
//! conveniences (each builds a private unrolling).
//!
//! Model-checking semantics: reset pinned deasserted, initial state =
//! declared register init values (see DESIGN.md).

#![warn(missing_docs)]

mod aig;
mod aiger;
mod blast;
mod bmc;
mod check;
mod error;
mod explicit;
mod prop;
mod session;

pub use aig::{Aig, AigLit, AigNode, Latch};
pub use aiger::{blasted_to_aiger, parse_aiger, to_aiger, ParsedAiger};
pub use blast::{blast, Blasted};
pub use bmc::{bmc, k_induction, UnrollProperty, Unroller};
pub use check::{Backend, Checker, MemoStats};
pub use error::McError;
pub use explicit::{explicit_check, ExplicitCacheStats, ExplicitLimits, ReachableStates};
pub use prop::{BitAtom, CexTrace, CheckResult, ConsequentKind, TemporalProperty, WindowProperty};
pub use session::{CheckSession, SessionStats};
