//! SAT-based engines: bounded model checking and k-induction.
//!
//! The unroller lays the bit-blasted transition relation out over time
//! frames inside one incremental SAT solver. BMC searches for a
//! reset-rooted violation of a [`WindowProperty`]; k-induction attempts
//! an unbounded proof (base case by BMC, inductive step from a free
//! state). k-induction can answer `Unknown` when the property depends on
//! reachability invariants the induction does not carry — the checker
//! then falls back per configuration.

use crate::aig::{AigLit, AigNode};
use crate::blast::Blasted;
use crate::prop::{
    assemble_input_vector, BitAtom, CexTrace, CheckResult, ConsequentKind, TemporalProperty,
    WindowProperty,
};
use gm_rtl::Module;
use gm_sat::{Lit, SolveResult, Solver};
use std::collections::HashMap;
use std::sync::Arc;

/// A bounded-window property the SAT engines can unroll: anything that
/// can encode "the window starting at `base` is violated" as one
/// activation literal. Implemented by [`WindowProperty`] (single
/// consequent) and [`TemporalProperty`] (conjunctive / disjunctive
/// consequents), which lets [`bmc`], [`k_induction`], and the
/// incremental [`crate::CheckSession`] engines decide both through the
/// same code path.
pub trait UnrollProperty {
    /// The largest cycle offset any atom uses (the window spans
    /// `window_depth() + 1` cycles).
    fn window_depth(&self) -> u32;

    /// Encodes the violation of the window starting at `base` as an
    /// activation literal.
    fn encode_violation(&self, unroller: &mut Unroller, base: usize) -> Lit;

    /// Encodes "the window starting at `base` satisfies the property".
    fn encode_holds(&self, unroller: &mut Unroller, base: usize) -> Lit {
        !self.encode_violation(unroller, base)
    }
}

impl UnrollProperty for WindowProperty {
    fn window_depth(&self) -> u32 {
        self.depth()
    }

    fn encode_violation(&self, unroller: &mut Unroller, base: usize) -> Lit {
        unroller.violation_lit(base, self)
    }
}

impl UnrollProperty for TemporalProperty {
    fn window_depth(&self) -> u32 {
        self.depth()
    }

    fn encode_violation(&self, unroller: &mut Unroller, base: usize) -> Lit {
        unroller.temporal_violation_lit(base, self)
    }
}

/// Lays AIG time frames into a SAT solver.
///
/// The unroller is the persistent half of an incremental verification
/// session: frames, gate clauses and the solver's learnt clauses all
/// survive across property queries. Each query is posed as an
/// *activation literal* (see [`Unroller::violation_lit`]) passed to
/// [`Solver::solve_with_assumptions`], so nothing is ever asserted
/// permanently and the same unrolling serves every property of a batch.
/// A structural AND cache keeps re-encoding the same property (or
/// overlapping properties) nearly free: the cached activation literal is
/// returned instead of fresh clauses.
#[derive(Debug)]
pub struct Unroller {
    blasted: Arc<Blasted>,
    solver: Solver,
    true_lit: Lit,
    /// frames[f][node] = SAT literal of that AIG node at frame f.
    frames: Vec<Vec<Lit>>,
    free_init: bool,
    /// Structural hash-cons of encoded AND gates: (a, b) -> out.
    and_cache: HashMap<(Lit, Lit), Lit>,
}

impl Unroller {
    /// Creates an unroller. `free_init` leaves frame-0 latches
    /// unconstrained (for induction steps) instead of pinning them to the
    /// reset state.
    pub fn new(blasted: Arc<Blasted>, free_init: bool) -> Self {
        let mut solver = Solver::new();
        let t = solver.new_var().positive();
        solver.add_clause(&[t]);
        Unroller {
            blasted,
            solver,
            true_lit: t,
            frames: Vec::new(),
            free_init,
            and_cache: HashMap::new(),
        }
    }

    /// Creates an unroller over a borrowed design, paying one O(design)
    /// clone into the shared handle. Convenience for the one-shot
    /// [`bmc`] / [`k_induction`] entry points — session users should
    /// share one `Arc` via [`Unroller::new`] instead.
    pub fn from_ref(blasted: &Blasted, free_init: bool) -> Self {
        Unroller::new(Arc::new(blasted.clone()), free_init)
    }

    /// The underlying solver.
    pub fn solver(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// The number of time frames encoded so far.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Approximate resident size of the unrolling: solver variables and
    /// clauses, frame literal tables, and the structural AND cache.
    /// Used by long-lived services for cache accounting — an estimate,
    /// not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        let frame_lits: usize = self.frames.iter().map(Vec::len).sum();
        self.solver.num_vars() * 16
            + self.solver.num_clauses() * 24
            + frame_lits * std::mem::size_of::<Lit>()
            + self.and_cache.len() * 3 * std::mem::size_of::<Lit>()
    }

    fn encode_and(&mut self, a: Lit, b: Lit) -> Lit {
        let t = self.true_lit;
        if a == !t || b == !t || a == !b {
            return !t;
        }
        if a == t {
            return b;
        }
        if b == t || a == b {
            return a;
        }
        let key = if a.index() <= b.index() {
            (a, b)
        } else {
            (b, a)
        };
        if let Some(&out) = self.and_cache.get(&key) {
            return out;
        }
        let out = self.solver.new_var().positive();
        self.solver.add_clause(&[!out, a]);
        self.solver.add_clause(&[!out, b]);
        self.solver.add_clause(&[out, !a, !b]);
        self.and_cache.insert(key, out);
        out
    }

    /// Ensures frames `0..=frame` exist.
    pub fn ensure_frame(&mut self, frame: usize) {
        while self.frames.len() <= frame {
            let f = self.frames.len();
            let blasted = self.blasted.clone();
            let nodes = blasted.aig.nodes();
            let mut lits: Vec<Lit> = Vec::with_capacity(nodes.len());
            for node in nodes {
                let lit = match node {
                    AigNode::ConstFalse => !self.true_lit,
                    AigNode::Input { .. } => self.solver.new_var().positive(),
                    AigNode::Latch { index } => {
                        if f == 0 {
                            if self.free_init {
                                self.solver.new_var().positive()
                            } else {
                                let init = self.blasted.aig.latches()[*index as usize].init;
                                if init {
                                    self.true_lit
                                } else {
                                    !self.true_lit
                                }
                            }
                        } else {
                            let next = self.blasted.aig.latches()[*index as usize].next;
                            self.lit_in(f - 1, next)
                        }
                    }
                    AigNode::And(a, b) => {
                        let la = lits[a.node()];
                        let la = if a.is_complemented() { !la } else { la };
                        let lb = lits[b.node()];
                        let lb = if b.is_complemented() { !lb } else { lb };
                        self.encode_and(la, lb)
                    }
                };
                lits.push(lit);
            }
            self.frames.push(lits);
        }
    }

    /// The SAT literal of an AIG literal at a frame (which must exist).
    pub fn lit_in(&self, frame: usize, lit: AigLit) -> Lit {
        let l = self.frames[frame][lit.node()];
        if lit.is_complemented() {
            !l
        } else {
            l
        }
    }

    /// The SAT literal of a property atom for a window starting at `base`.
    pub fn atom_lit(&mut self, base: usize, atom: &BitAtom) -> Lit {
        let frame = base + atom.offset as usize;
        self.ensure_frame(frame);
        let l = self.lit_in(frame, self.blasted.signal_bit(atom.signal, atom.bit));
        if atom.value {
            l
        } else {
            !l
        }
    }

    /// A literal equivalent to "the property's window starting at `base`
    /// is violated" (antecedent true, consequent false).
    pub fn violation_lit(&mut self, base: usize, prop: &WindowProperty) -> Lit {
        let mut acc = self.true_lit;
        for atom in prop.antecedent.clone() {
            let al = self.atom_lit(base, &atom);
            acc = self.encode_and(acc, al);
        }
        let cons = self.atom_lit(base, &prop.consequent);
        self.encode_and(acc, !cons)
    }

    /// A literal equivalent to "the window starting at `base` satisfies
    /// the property".
    pub fn holds_lit(&mut self, base: usize, prop: &WindowProperty) -> Lit {
        !self.violation_lit(base, prop)
    }

    /// A literal equivalent to "the temporal property's window starting
    /// at `base` is violated": the antecedent holds and the consequent
    /// combination fails (`All`: some atom false; `Any`: every atom
    /// false). An empty consequent set degenerates to `All` = true
    /// (never violated) / `Any` = false (violated whenever the
    /// antecedent holds) — the miner never emits one.
    pub fn temporal_violation_lit(&mut self, base: usize, prop: &TemporalProperty) -> Lit {
        let mut acc = self.true_lit;
        for atom in prop.antecedent.clone() {
            let al = self.atom_lit(base, &atom);
            acc = self.encode_and(acc, al);
        }
        match prop.kind {
            ConsequentKind::All => {
                let mut all = self.true_lit;
                for atom in prop.consequents.clone() {
                    let cl = self.atom_lit(base, &atom);
                    all = self.encode_and(all, cl);
                }
                self.encode_and(acc, !all)
            }
            ConsequentKind::Any => {
                for atom in prop.consequents.clone() {
                    let cl = self.atom_lit(base, &atom);
                    acc = self.encode_and(acc, !cl);
                }
                acc
            }
        }
    }

    /// Extracts the model's input assignments for frames `0..=last` as a
    /// counterexample trace.
    pub fn extract_cex(&self, module: &Module, last: usize) -> CexTrace {
        let mut inputs = Vec::with_capacity(last + 1);
        for f in 0..=last {
            let frame = &self.frames[f];
            let vec = assemble_input_vector(module, &self.blasted, |i| {
                let node = self.blasted.aig.input_node(i);
                self.solver.model_value(frame[node])
            });
            inputs.push(vec);
        }
        CexTrace { inputs }
    }
}

/// Bounded model checking: searches for a reset-rooted violation with the
/// window start ranging over `0..=max_start`.
///
/// Returns `Violated` with a trace covering the full window, or
/// `Unknown { bound }` if no violation exists within the bound (BMC alone
/// cannot prove properties).
///
/// One-shot convenience: builds a fresh unrolling per call. Batch
/// workloads should use [`crate::CheckSession`] (or
/// [`crate::Checker::check_batch`]), which keeps the unrolling and the
/// solver's learnt clauses alive across properties.
pub fn bmc<P: UnrollProperty>(
    module: &Module,
    blasted: &Blasted,
    prop: &P,
    max_start: u32,
) -> CheckResult {
    bmc_shared(module, Arc::new(blasted.clone()), prop, max_start)
}

/// The BMC scan on a shared design handle: the common core of the
/// one-shot [`bmc`] entry point, canonical counterexample extraction,
/// and the racing dispatch's SAT side.
pub(crate) fn bmc_shared<P: UnrollProperty>(
    module: &Module,
    blasted: Arc<Blasted>,
    prop: &P,
    max_start: u32,
) -> CheckResult {
    let depth = prop.window_depth() as usize;
    let last_start = last_scan_start(&blasted, max_start);
    let mut unroller = Unroller::new(blasted, false);
    for start in 0..=last_start {
        unroller.ensure_frame(start + depth);
        let v = prop.encode_violation(&mut unroller, start);
        if unroller.solver().solve_with_assumptions(&[v]) == SolveResult::Sat {
            let cex = unroller.extract_cex(module, start + depth);
            return CheckResult::Violated(cex);
        }
    }
    CheckResult::Unknown { bound: max_start }
}

/// The last window start a BMC scan must try. A latch-free design is
/// start-invariant — the window at start `s` is an isomorphic formula
/// for every `s` — so one query at reset decides the whole scan. Shared
/// by the one-shot scan and [`crate::CheckSession::bmc`], so the
/// session verdict and the canonical re-extraction can never disagree
/// about where a violation lives. (Callers still report the *requested*
/// bound in `Unknown` results.)
pub(crate) fn last_scan_start(blasted: &Blasted, max_start: u32) -> usize {
    if blasted.aig.latch_count() == 0 {
        0
    } else {
        max_start as usize
    }
}

/// Re-derives the *canonical* counterexample of a property known to be
/// violated within `limit` window starts.
///
/// The trace is extracted from a fresh, private unrolling whose solver
/// state depends only on `(blasted, prop)` — never on which other
/// properties a shared session decided before this one. This is the
/// determinism keystone of the sharded dispatch layer: a session's model
/// for a violated query varies with its learnt-clause history (and hence
/// with the shard partition), so [`crate::Checker`] discards the
/// session's model and re-extracts canonically. The scan stops at the
/// first violating start, so the work (and the trace) is independent of
/// `limit` as long as `limit` covers the violation; it matches the trace
/// the one-shot [`bmc`] / [`k_induction`] engines produce.
///
/// Returns `None` when no violation exists within `limit` (the caller
/// then falls back to whatever deterministic trace it already holds,
/// e.g. an explicit-state one).
pub(crate) fn canonical_cex<P: UnrollProperty>(
    module: &Module,
    blasted: &Arc<Blasted>,
    prop: &P,
    limit: u32,
) -> Option<CexTrace> {
    match bmc_shared(module, blasted.clone(), prop, limit) {
        CheckResult::Violated(cex) => Some(cex),
        _ => None,
    }
}

/// k-induction: tries to prove the property outright.
///
/// For each `k` up to `max_k`: the base case checks windows starting at
/// `0..k` from reset (any violation is returned with its trace); the
/// step case assumes the property on `k` consecutive windows from an
/// arbitrary state and asks whether the next window can fail. If the
/// step is UNSAT the property is proved.
pub fn k_induction<P: UnrollProperty>(
    module: &Module,
    blasted: &Blasted,
    prop: &P,
    max_k: u32,
) -> CheckResult {
    // Clone the design into one shared handle for every unroller below.
    k_induction_shared(module, Arc::new(blasted.clone()), prop, max_k)
}

/// [`k_induction`] on an already-shared design handle — used by the
/// racing dispatch, which fires one-shot SAT engines from worker
/// threads and must not clone the design per query.
pub(crate) fn k_induction_shared<P: UnrollProperty>(
    module: &Module,
    shared: Arc<Blasted>,
    prop: &P,
    max_k: u32,
) -> CheckResult {
    let depth = prop.window_depth() as usize;
    // Base cases, shared incrementally.
    let mut base = Unroller::new(shared.clone(), false);
    for k in 0..=max_k as usize {
        // Base: violation in window starting at k from reset?
        base.ensure_frame(k + depth);
        let v = prop.encode_violation(&mut base, k);
        if base.solver().solve_with_assumptions(&[v]) == SolveResult::Sat {
            let cex = base.extract_cex(module, k + depth);
            return CheckResult::Violated(cex);
        }
        // Step: from a free state, k windows hold but window k fails?
        let mut step = Unroller::new(shared.clone(), true);
        step.ensure_frame(k + depth);
        let mut assumptions = Vec::new();
        for j in 0..k {
            let h = prop.encode_holds(&mut step, j);
            assumptions.push(h);
        }
        let v = prop.encode_violation(&mut step, k);
        assumptions.push(v);
        if step.solver().solve_with_assumptions(&assumptions) == SolveResult::Unsat {
            return CheckResult::Proved;
        }
    }
    CheckResult::Unknown { bound: max_k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::blast;
    use gm_rtl::{elaborate, parse_verilog};

    fn setup(src: &str) -> (gm_rtl::Module, Blasted) {
        let m = parse_verilog(src).unwrap();
        let e = elaborate(&m).unwrap();
        let b = blast(&m, &e).unwrap();
        (m, b)
    }

    const DFF: &str = "
    module dff(input clk, input rst, input d, output reg q);
      always @(posedge clk)
        if (rst) q <= 0;
        else q <= d;
    endmodule";

    #[test]
    fn bmc_finds_combinational_violation() {
        let (m, b) = setup("module m(input a, output y); assign y = ~a; endmodule");
        let a = m.require("a").unwrap();
        let y = m.require("y").unwrap();
        // Claim: a -> y. Violated by a=1.
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(a, 0, 0, true)],
            consequent: BitAtom::new(y, 0, 0, true),
        };
        match bmc(&m, &b, &prop, 0) {
            CheckResult::Violated(cex) => {
                assert_eq!(cex.len(), 1);
                let (sig, v) = cex.inputs[0][0];
                assert_eq!(sig, a);
                assert!(v.is_nonzero());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn bmc_cannot_violate_true_property() {
        let (m, b) = setup("module m(input a, output y); assign y = ~a; endmodule");
        let a = m.require("a").unwrap();
        let y = m.require("y").unwrap();
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(a, 0, 0, true)],
            consequent: BitAtom::new(y, 0, 0, false),
        };
        assert_eq!(bmc(&m, &b, &prop, 5), CheckResult::Unknown { bound: 5 });
    }

    #[test]
    fn k_induction_proves_dff_follows_input() {
        let (m, b) = setup(DFF);
        let d = m.require("d").unwrap();
        let q = m.require("q").unwrap();
        // d@0 |-> q@1 — inductive with k=1.
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(d, 0, 0, true)],
            consequent: BitAtom::new(q, 0, 1, true),
        };
        assert_eq!(k_induction(&m, &b, &prop, 4), CheckResult::Proved);
    }

    #[test]
    fn k_induction_finds_sequential_violation() {
        let (m, b) = setup(DFF);
        let d = m.require("d").unwrap();
        let q = m.require("q").unwrap();
        // Claim: d@0 |-> !q@1, false: needs one step from reset.
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(d, 0, 0, true)],
            consequent: BitAtom::new(q, 0, 1, false),
        };
        match k_induction(&m, &b, &prop, 4) {
            CheckResult::Violated(cex) => {
                assert!(!cex.is_empty());
                // The violating input must set d at the window start.
                let (sig, v) = cex.inputs[cex.len() - 2][0];
                assert_eq!(sig, d);
                assert!(v.is_nonzero());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn temporal_eventuality_and_stability_on_dff() {
        let (m, b) = setup(DFF);
        let d = m.require("d").unwrap();
        let q = m.require("q").unwrap();
        // d@0 |-> F<=1 q@1: q@1 alone already follows d@0, so the
        // disjunctive window (q@1 | q@2) is provable.
        let eventually = TemporalProperty {
            antecedent: vec![BitAtom::new(d, 0, 0, true)],
            consequents: vec![BitAtom::new(q, 0, 1, true), BitAtom::new(q, 0, 2, true)],
            kind: ConsequentKind::Any,
        };
        assert_eq!(k_induction(&m, &b, &eventually, 4), CheckResult::Proved);
        // d@0 |-> G<=1 q@1: q@2 tracks the free input d@1, so the
        // conjunctive window is violated.
        let stable = TemporalProperty {
            antecedent: vec![BitAtom::new(d, 0, 0, true)],
            consequents: vec![BitAtom::new(q, 0, 1, true), BitAtom::new(q, 0, 2, true)],
            kind: ConsequentKind::All,
        };
        match k_induction(&m, &b, &stable, 4) {
            CheckResult::Violated(cex) => {
                // The violating run must deassert d somewhere after the
                // window start; BMC must agree on the verdict.
                assert!(!cex.is_empty());
                assert!(matches!(bmc(&m, &b, &stable, 4), CheckResult::Violated(_)));
            }
            other => panic!("expected violation, got {other:?}"),
        }
        // The stability claim that holds: d@0 & d@1 |-> q@1 & q@2.
        let stable_ok = TemporalProperty {
            antecedent: vec![BitAtom::new(d, 0, 0, true), BitAtom::new(d, 0, 1, true)],
            consequents: vec![BitAtom::new(q, 0, 1, true), BitAtom::new(q, 0, 2, true)],
            kind: ConsequentKind::All,
        };
        assert_eq!(k_induction(&m, &b, &stable_ok, 4), CheckResult::Proved);
    }

    #[test]
    fn counter_saturation_proved_by_induction() {
        // A saturating 2-bit counter never wraps: q==3 stays 3.
        let (m, b) = setup(
            "module m(input clk, input rst, input en, output reg [1:0] q);
               always @(posedge clk)
                 if (rst) q <= 0;
                 else if (en & (q != 2'd3)) q <= q + 2'd1;
                 else q <= q;
             endmodule",
        );
        let q = m.require("q").unwrap();
        // q[0]@0 & q[1]@0 |-> q[0]@1 (saturated stays saturated).
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(q, 0, 0, true), BitAtom::new(q, 1, 0, true)],
            consequent: BitAtom::new(q, 0, 1, true),
        };
        assert_eq!(k_induction(&m, &b, &prop, 4), CheckResult::Proved);
    }
}
