//! Bit-blasting: behavioral modules to and-inverter graphs.
//!
//! Symbolically executes the elaborated processes of a [`Module`] into an
//! [`Aig`]: every data-input bit becomes an AIG input, every state bit a
//! latch, and every settled signal value a literal over them. The clock
//! and reset inputs are pinned to constant 0 — model checking starts from
//! the declared register init values (the design's reset state), which is
//! how GoldMine constrains the verification environment.

use crate::aig::{Aig, AigLit};
use gm_rtl::{
    BinaryOp, Bv, Elab, Expr, Module, Result, RtlError, SignalId, Stmt, StmtKind, UnaryOp,
};

/// A bit-blasted module.
#[derive(Clone, Debug)]
pub struct Blasted {
    /// The netlist.
    pub aig: Aig,
    /// Per signal (by index): the literals of its settled pre-edge value,
    /// LSB first.
    pub signal_lits: Vec<Vec<AigLit>>,
    /// For AIG input `i`, the (signal, bit) it represents.
    pub input_bits: Vec<(SignalId, u32)>,
    /// For AIG latch `i`, the (signal, bit) it represents.
    pub latch_bits: Vec<(SignalId, u32)>,
}

impl Blasted {
    /// The literal for one bit of a signal's settled value.
    pub fn signal_bit(&self, sig: SignalId, bit: u32) -> AigLit {
        self.signal_lits[sig.index()][bit as usize]
    }

    /// Total number of primary-input bits.
    pub fn input_bit_count(&self) -> usize {
        self.input_bits.len()
    }

    /// Total number of state bits.
    pub fn state_bit_count(&self) -> usize {
        self.latch_bits.len()
    }
}

/// Bit-blasts `module` (elaborated as `elab`) into an AIG.
///
/// # Errors
///
/// Returns an error if a signal is read while undefined, which elaboration
/// should have ruled out; seeing it here indicates an internal
/// inconsistency between the interpreter and the blaster.
pub fn blast(module: &Module, elab: &Elab) -> Result<Blasted> {
    let mut aig = Aig::new();
    let n = module.signals().len();
    let mut env: Vec<Option<Vec<AigLit>>> = vec![None; n];
    let mut input_bits = Vec::new();
    let mut latch_bits = Vec::new();

    // Allocate inputs and latches.
    for sig in module.signal_ids() {
        let s = module.signal(sig);
        let w = s.width();
        if s.is_input() {
            if Some(sig) == module.clock() || Some(sig) == module.reset() {
                // Pinned low: the model runs with reset deasserted.
                env[sig.index()] = Some(vec![AigLit::FALSE; w as usize]);
            } else {
                let lits: Vec<AigLit> = (0..w)
                    .map(|b| {
                        input_bits.push((sig, b));
                        aig.add_input()
                    })
                    .collect();
                env[sig.index()] = Some(lits);
            }
        } else if elab.is_state(sig) {
            let init = s.init();
            let lits: Vec<AigLit> = (0..w)
                .map(|b| {
                    latch_bits.push((sig, b));
                    aig.add_latch(init.bit(b))
                })
                .collect();
            env[sig.index()] = Some(lits);
        } else if elab.driver(sig).is_none() {
            // Undriven internal net: constant init (zeros).
            let init = s.init();
            env[sig.index()] = Some((0..w).map(|b| AigLit::constant(init.bit(b))).collect());
        }
        // Combinationally driven signals are filled in below.
    }

    // Combinational processes in topological order (blocking semantics).
    for &pi in elab.comb_order() {
        let body: &[Stmt] = &module.processes()[pi].body;
        for st in body {
            exec_stmt(module, &mut aig, st, &mut env)?;
        }
    }

    let signal_lits: Vec<Vec<AigLit>> = env
        .iter()
        .enumerate()
        .map(|(i, e)| {
            e.clone().unwrap_or_else(|| {
                let w = module.signals()[i].width() as usize;
                vec![AigLit::FALSE; w]
            })
        })
        .collect();

    // Sequential processes: non-blocking; reads see the settled env,
    // writes accumulate into a separate next-state environment
    // initialized to "hold".
    let mut next: Vec<Option<Vec<AigLit>>> = signal_lits.iter().cloned().map(Some).collect();
    for &pi in elab.seq_processes() {
        let body: &[Stmt] = &module.processes()[pi].body;
        for st in body {
            exec_seq_stmt(module, &mut aig, st, &signal_lits, &mut next)?;
        }
    }

    // Wire latch next-state functions.
    for (li, &(sig, bit)) in latch_bits.iter().enumerate() {
        let lit = next[sig.index()]
            .as_ref()
            .expect("state signal has next-state lits")[bit as usize];
        aig.set_latch_next(li, lit);
    }

    Ok(Blasted {
        aig,
        signal_lits,
        input_bits,
        latch_bits,
    })
}

fn undefined_read(module: &Module, sig: SignalId) -> RtlError {
    RtlError::ReadBeforeAssign {
        signal: module.signal(sig).name().to_string(),
    }
}

/// Compiles an expression to literals (LSB first) of its natural width.
fn compile_expr(
    module: &Module,
    aig: &mut Aig,
    expr: &Expr,
    env: &[Option<Vec<AigLit>>],
) -> Result<Vec<AigLit>> {
    let width_of = |e: &Expr| e.width_in(&|s: SignalId| module.signal_width(s));
    match expr {
        Expr::Const(b) => Ok((0..b.width()).map(|i| AigLit::constant(b.bit(i))).collect()),
        Expr::Signal(s) => env[s.index()]
            .clone()
            .ok_or_else(|| undefined_read(module, *s)),
        Expr::Unary(op, a) => {
            let av = compile_expr(module, aig, a, env)?;
            Ok(match op {
                UnaryOp::Not => av.iter().map(|&l| !l).collect(),
                UnaryOp::Neg => {
                    // -x = ~x + 1.
                    let inv: Vec<AigLit> = av.iter().map(|&l| !l).collect();
                    let one = one_const(av.len());
                    add_vec(aig, &inv, &one)
                }
                UnaryOp::RedAnd => vec![aig.and_many(&av)],
                UnaryOp::RedOr => vec![aig.or_many(&av)],
                UnaryOp::RedXor => {
                    let mut acc = AigLit::FALSE;
                    for &l in &av {
                        acc = aig.xor(acc, l);
                    }
                    vec![acc]
                }
                UnaryOp::LogicNot => {
                    let any = aig.or_many(&av);
                    vec![!any]
                }
            })
        }
        Expr::Binary(op, a, b) => {
            let mut av = compile_expr(module, aig, a, env)?;
            let mut bv = compile_expr(module, aig, b, env)?;
            match op {
                BinaryOp::Shl | BinaryOp::Shr => {
                    // Result keeps the left operand's width.
                }
                _ => {
                    let w = av.len().max(bv.len());
                    zext(&mut av, w);
                    zext(&mut bv, w);
                }
            }
            Ok(match op {
                BinaryOp::And => zip_map(aig, &av, &bv, Aig::and),
                BinaryOp::Or => zip_map(aig, &av, &bv, Aig::or),
                BinaryOp::Xor => zip_map(aig, &av, &bv, Aig::xor),
                BinaryOp::Add => add_vec(aig, &av, &bv),
                BinaryOp::Sub => {
                    let inv: Vec<AigLit> = bv.iter().map(|&l| !l).collect();
                    add_with_carry(aig, &av, &inv, AigLit::TRUE)
                }
                BinaryOp::Mul => mul_vec(aig, &av, &bv),
                BinaryOp::Eq => vec![eq_vec(aig, &av, &bv)],
                BinaryOp::Ne => vec![!eq_vec(aig, &av, &bv)],
                BinaryOp::Lt => vec![lt_vec(aig, &av, &bv)],
                BinaryOp::Le => vec![!lt_vec(aig, &bv, &av)],
                BinaryOp::Gt => vec![lt_vec(aig, &bv, &av)],
                BinaryOp::Ge => vec![!lt_vec(aig, &av, &bv)],
                BinaryOp::Shl => shift_vec(aig, &av, &bv, true),
                BinaryOp::Shr => shift_vec(aig, &av, &bv, false),
                BinaryOp::LogicAnd => {
                    let la = aig.or_many(&av);
                    let lb = aig.or_many(&bv);
                    vec![aig.and(la, lb)]
                }
                BinaryOp::LogicOr => {
                    let la = aig.or_many(&av);
                    let lb = aig.or_many(&bv);
                    vec![aig.or(la, lb)]
                }
            })
        }
        Expr::Mux {
            cond,
            then_val,
            else_val,
        } => {
            let cv = compile_expr(module, aig, cond, env)?;
            let c = aig.or_many(&cv);
            let mut tv = compile_expr(module, aig, then_val, env)?;
            let mut ev = compile_expr(module, aig, else_val, env)?;
            let w = width_of(expr) as usize;
            zext(&mut tv, w);
            zext(&mut ev, w);
            Ok((0..w).map(|i| aig.mux(c, tv[i], ev[i])).collect())
        }
        Expr::Index { base, bit } => {
            let bv = compile_expr(module, aig, base, env)?;
            Ok(vec![bv[*bit as usize]])
        }
        Expr::Slice { base, hi, lo } => {
            let bv = compile_expr(module, aig, base, env)?;
            Ok(bv[*lo as usize..=*hi as usize].to_vec())
        }
        Expr::Concat(parts) => {
            // MSB-first in source; LSB-first in our vectors.
            let mut out = Vec::new();
            for p in parts.iter().rev() {
                out.extend(compile_expr(module, aig, p, env)?);
            }
            Ok(out)
        }
    }
}

fn one_const(w: usize) -> Vec<AigLit> {
    let mut v = vec![AigLit::FALSE; w];
    if !v.is_empty() {
        v[0] = AigLit::TRUE;
    }
    v
}

fn zext(v: &mut Vec<AigLit>, w: usize) {
    v.resize(w.max(v.len()), AigLit::FALSE);
    v.truncate(w);
}

fn zip_map(
    aig: &mut Aig,
    a: &[AigLit],
    b: &[AigLit],
    f: fn(&mut Aig, AigLit, AigLit) -> AigLit,
) -> Vec<AigLit> {
    a.iter().zip(b).map(|(&x, &y)| f(aig, x, y)).collect()
}

fn add_vec(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    add_with_carry(aig, a, b, AigLit::FALSE)
}

/// Ripple-carry adder at the width of `a` (which equals `b`).
fn add_with_carry(aig: &mut Aig, a: &[AigLit], b: &[AigLit], carry_in: AigLit) -> Vec<AigLit> {
    debug_assert_eq!(a.len(), b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut carry = carry_in;
    for (&x, &y) in a.iter().zip(b) {
        let xy = aig.xor(x, y);
        out.push(aig.xor(xy, carry));
        let c1 = aig.and(x, y);
        let c2 = aig.and(xy, carry);
        carry = aig.or(c1, c2);
    }
    out
}

/// Shift-and-add multiplier truncated to the operand width.
fn mul_vec(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    let w = a.len();
    let mut acc = vec![AigLit::FALSE; w];
    for i in 0..w {
        // partial = (a << i) & b[i]
        let mut partial = vec![AigLit::FALSE; w];
        for j in 0..w - i {
            partial[i + j] = aig.and(a[j], b[i]);
        }
        acc = add_vec(aig, &acc, &partial);
    }
    acc
}

fn eq_vec(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let mut acc = AigLit::TRUE;
    for (&x, &y) in a.iter().zip(b) {
        let e = aig.iff(x, y);
        acc = aig.and(acc, e);
    }
    acc
}

/// Unsigned `a < b`: decided by the most significant differing bit.
fn lt_vec(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let mut lt = AigLit::FALSE;
    for (&x, &y) in a.iter().zip(b) {
        let diff = aig.xor(x, y);
        lt = aig.mux(diff, y, lt);
    }
    lt
}

/// Barrel shifter; `left` selects direction. Amounts at or beyond the
/// width produce zero, matching [`Bv::shl`]/[`Bv::shr`].
fn shift_vec(aig: &mut Aig, a: &[AigLit], amount: &[AigLit], left: bool) -> Vec<AigLit> {
    let w = a.len();
    let mut cur = a.to_vec();
    let stages = 64 - (w as u64).leading_zeros() as usize; // ceil(log2(w)) + 1
    for (k, &abit) in amount.iter().enumerate().take(stages) {
        let sh = 1usize << k;
        let mut shifted = vec![AigLit::FALSE; w];
        for (i, slot) in shifted.iter_mut().enumerate() {
            let src = if left {
                i.checked_sub(sh)
            } else {
                let j = i + sh;
                (j < w).then_some(j)
            };
            if let Some(j) = src {
                *slot = cur[j];
            }
        }
        cur = (0..w).map(|i| aig.mux(abit, shifted[i], cur[i])).collect();
    }
    // Any set amount bit beyond the staged range zeroes the result.
    if amount.len() > stages {
        let high = aig.or_many(&amount[stages..]);
        cur = cur.iter().map(|&l| aig.and(l, !high)).collect();
    }
    // Amounts in range but >= width also zero the result. The width
    // constant needs enough bits to represent `w` itself; if the amount
    // is too narrow to ever reach `w`, the comparison is constant false.
    let needed = (64 - (w as u64).leading_zeros()) as usize;
    let cmp_w = amount.len().max(needed).max(1);
    let mut wcv = const_lits(Bv::new(w as u64, cmp_w as u32));
    let mut amt = amount.to_vec();
    zext(&mut amt, cmp_w);
    zext(&mut wcv, cmp_w);
    let ge_w = !lt_vec(aig, &amt, &wcv);
    cur.iter().map(|&l| aig.and(l, !ge_w)).collect()
}

fn const_lits(b: Bv) -> Vec<AigLit> {
    (0..b.width()).map(|i| AigLit::constant(b.bit(i))).collect()
}

/// Blocking-assignment symbolic execution (combinational processes).
fn exec_stmt(
    module: &Module,
    aig: &mut Aig,
    stmt: &Stmt,
    env: &mut Vec<Option<Vec<AigLit>>>,
) -> Result<()> {
    match &stmt.kind {
        StmtKind::Assign { lhs, rhs } => {
            let mut v = compile_expr(module, aig, rhs, env)?;
            zext(&mut v, module.signal_width(*lhs) as usize);
            env[lhs.index()] = Some(v);
            Ok(())
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            let cv = compile_expr(module, aig, cond, env)?;
            let c = aig.or_many(&cv);
            let mut then_env = env.clone();
            for st in then_body {
                exec_stmt(module, aig, st, &mut then_env)?;
            }
            let mut else_env = env.clone();
            for st in else_body {
                exec_stmt(module, aig, st, &mut else_env)?;
            }
            merge_env(aig, c, &then_env, &else_env, env);
            Ok(())
        }
        StmtKind::Case {
            subject,
            arms,
            default,
        } => {
            let sv = compile_expr(module, aig, subject, env)?;
            // Default environment: explicit default arm or fall-through.
            let mut result_env = match default {
                Some(d) => {
                    let mut e = env.clone();
                    for st in d {
                        exec_stmt(module, aig, st, &mut e)?;
                    }
                    e
                }
                None => env.clone(),
            };
            // Build the priority chain from the last arm to the first.
            for arm in arms.iter().rev() {
                let mut match_lits = Vec::new();
                for label in &arm.labels {
                    let lv = const_lits(label.resize(sv.len().max(1) as u32));
                    match_lits.push(eq_vec(aig, &sv, &lv));
                }
                let m = aig.or_many(&match_lits);
                let mut arm_env = env.clone();
                for st in &arm.body {
                    exec_stmt(module, aig, st, &mut arm_env)?;
                }
                let prev = result_env.clone();
                merge_env(aig, m, &arm_env, &prev, &mut result_env);
            }
            *env = result_env;
            Ok(())
        }
    }
}

/// Non-blocking symbolic execution (sequential processes): reads come
/// from the settled `cur` environment, writes accumulate into `next`.
fn exec_seq_stmt(
    module: &Module,
    aig: &mut Aig,
    stmt: &Stmt,
    cur: &[Vec<AigLit>],
    next: &mut Vec<Option<Vec<AigLit>>>,
) -> Result<()> {
    let cur_env: Vec<Option<Vec<AigLit>>> = cur.iter().cloned().map(Some).collect();
    exec_seq_inner(module, aig, stmt, &cur_env, next)
}

fn exec_seq_inner(
    module: &Module,
    aig: &mut Aig,
    stmt: &Stmt,
    cur: &[Option<Vec<AigLit>>],
    next: &mut Vec<Option<Vec<AigLit>>>,
) -> Result<()> {
    match &stmt.kind {
        StmtKind::Assign { lhs, rhs } => {
            let mut v = compile_expr(module, aig, rhs, cur)?;
            zext(&mut v, module.signal_width(*lhs) as usize);
            next[lhs.index()] = Some(v);
            Ok(())
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            let cv = compile_expr(module, aig, cond, cur)?;
            let c = aig.or_many(&cv);
            let mut then_next = next.clone();
            for st in then_body {
                exec_seq_inner(module, aig, st, cur, &mut then_next)?;
            }
            let mut else_next = next.clone();
            for st in else_body {
                exec_seq_inner(module, aig, st, cur, &mut else_next)?;
            }
            merge_env(aig, c, &then_next, &else_next, next);
            Ok(())
        }
        StmtKind::Case {
            subject,
            arms,
            default,
        } => {
            let sv = compile_expr(module, aig, subject, cur)?;
            let mut result = match default {
                Some(d) => {
                    let mut e = next.clone();
                    for st in d {
                        exec_seq_inner(module, aig, st, cur, &mut e)?;
                    }
                    e
                }
                None => next.clone(),
            };
            for arm in arms.iter().rev() {
                let mut match_lits = Vec::new();
                for label in &arm.labels {
                    let lv = const_lits(label.resize(sv.len().max(1) as u32));
                    match_lits.push(eq_vec(aig, &sv, &lv));
                }
                let m = aig.or_many(&match_lits);
                let mut arm_next = next.clone();
                for st in &arm.body {
                    exec_seq_inner(module, aig, st, cur, &mut arm_next)?;
                }
                let prev = result.clone();
                merge_env(aig, m, &arm_next, &prev, &mut result);
            }
            *next = result;
            Ok(())
        }
    }
}

/// Merges two environments under a select literal: `out = c ? a : b`.
/// A signal defined on only one side takes that side's value (elaboration
/// guarantees such a signal is rewritten before any later read).
fn merge_env(
    aig: &mut Aig,
    c: AigLit,
    a: &[Option<Vec<AigLit>>],
    b: &[Option<Vec<AigLit>>],
    out: &mut [Option<Vec<AigLit>>],
) {
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = match (&a[i], &b[i]) {
            (Some(av), Some(bv)) => {
                Some(av.iter().zip(bv).map(|(&x, &y)| aig.mux(c, x, y)).collect())
            }
            (Some(av), None) => Some(av.clone()),
            (None, Some(bv)) => Some(bv.clone()),
            (None, None) => None,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::{elaborate, parse_verilog};

    fn blast_src(src: &str) -> (gm_rtl::Module, Blasted) {
        let m = parse_verilog(src).unwrap();
        let e = elaborate(&m).unwrap();
        let b = blast(&m, &e).unwrap();
        (m, b)
    }

    #[test]
    fn combinational_truth_table_matches() {
        let (m, b) = blast_src(
            "module m(input a, input c, output z);
               assign z = a & ~c | ~a & c;
             endmodule",
        );
        let z = m.require("z").unwrap();
        for (va, vc) in [(false, false), (false, true), (true, false), (true, true)] {
            let vals = b.aig.eval(&[va, vc], &[]);
            let got = b.aig.lit_value(&vals, b.signal_bit(z, 0));
            assert_eq!(got, va ^ vc, "inputs {va} {vc}");
        }
    }

    #[test]
    fn adder_bits_match_semantics() {
        let (m, b) = blast_src(
            "module m(input [3:0] a, input [3:0] c, output [3:0] s);
               assign s = a + c;
             endmodule",
        );
        let s = m.require("s").unwrap();
        for x in 0u64..16 {
            for y in 0u64..16 {
                let mut inputs = Vec::new();
                for bit in 0..4 {
                    inputs.push((x >> bit) & 1 == 1);
                }
                for bit in 0..4 {
                    inputs.push((y >> bit) & 1 == 1);
                }
                let vals = b.aig.eval(&inputs, &[]);
                let mut got = 0u64;
                for bit in 0..4 {
                    if b.aig.lit_value(&vals, b.signal_bit(s, bit)) {
                        got |= 1 << bit;
                    }
                }
                assert_eq!(got, (x + y) & 0xf, "{x}+{y}");
            }
        }
    }

    #[test]
    fn latch_init_and_next() {
        let (m, b) = blast_src(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 1;
                 else q <= d;
             endmodule",
        );
        let q = m.require("q").unwrap();
        assert_eq!(b.aig.latch_count(), 1);
        assert_eq!(b.latch_bits, vec![(q, 0)]);
        // Init value extracted from the reset branch.
        assert_eq!(b.aig.initial_state(), vec![true]);
        // rst is pinned low, so next-state follows d.
        let state = vec![false];
        let vals = b.aig.eval(&[true], &state);
        assert_eq!(b.aig.next_state(&vals), vec![true]);
        let vals = b.aig.eval(&[false], &state);
        assert_eq!(b.aig.next_state(&vals), vec![false]);
    }

    #[test]
    fn case_priority_matches_first_label() {
        let (m, b) = blast_src(
            "module m(input [1:0] s, output reg [1:0] y);
               always @(*)
                 case (s)
                   2'b00: y = 2'd3;
                   2'b01: y = 2'd2;
                   default: y = 2'd0;
                 endcase
             endmodule",
        );
        let y = m.require("y").unwrap();
        let expect = [3u64, 2, 0, 0];
        for sv in 0u64..4 {
            let inputs = vec![sv & 1 == 1, sv & 2 == 2];
            let vals = b.aig.eval(&inputs, &[]);
            let mut got = 0;
            for bit in 0..2 {
                if b.aig.lit_value(&vals, b.signal_bit(y, bit)) {
                    got |= 1 << bit;
                }
            }
            assert_eq!(got, expect[sv as usize], "s={sv}");
        }
    }

    #[test]
    fn clock_and_reset_are_not_aig_inputs() {
        let (_m, b) = blast_src(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 0; else q <= d;
             endmodule",
        );
        assert_eq!(b.input_bit_count(), 1, "only d is a free input");
    }
}
