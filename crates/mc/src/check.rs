//! The top-level checker: one blasted design, many property queries.
//!
//! The GoldMine refinement loop checks hundreds of candidate assertions
//! against the same design, so the [`Checker`] bit-blasts once, lazily
//! computes the reachable state set once, keeps a persistent
//! [`CheckSession`] (shared unrollings, retained learnt clauses) for
//! the SAT engines, and memoizes every decided property so repeated
//! candidates across refinement iterations are free. Whole batches go
//! through [`Checker::check_batch`]; multi-core hosts can split a batch
//! across a pool of persistent shard sessions with
//! [`Checker::check_batch_sharded`], optionally racing the explicit and
//! SAT backends per property ([`Checker::with_racing`]).
//!
//! ## Determinism contract
//!
//! Every code path — single checks, batches, sharded batches with any
//! shard count — returns the same [`CheckResult`] for the same property
//! under the same configuration, *including* the counterexample trace:
//! verdicts are solver-state-independent, and violated SAT verdicts are
//! re-extracted on a fresh canonical unrolling whose model depends only
//! on the design and the property (never on session history or shard
//! partition). Racing keeps the same verdicts and traces; only its
//! work-attribution stats depend on which engine answered first.

use crate::blast::{blast, Blasted};
use crate::bmc::{bmc_shared, canonical_cex, k_induction_shared, UnrollProperty};
use crate::error::McError;
use crate::explicit::{explicit_check, ExplicitLimits, ReachableStates};
use crate::prop::{CheckResult, TemporalProperty, WindowProperty};
use crate::session::{cancel_requested, CheckSession, SessionStats};
use gm_cache::BoundedLru;
use gm_rtl::{elaborate, Elab, Module};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// Which engine decides a property.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Backend {
    /// Explicit-state when the design fits the limits, otherwise BMC
    /// followed by k-induction. The default.
    #[default]
    Auto,
    /// Explicit-state reachability only (errors if over limits).
    Explicit,
    /// Bounded model checking only — can only refute, never prove.
    Bmc {
        /// Maximum window start frame.
        bound: u32,
    },
    /// k-induction (with its built-in BMC base case).
    KInduction {
        /// Maximum induction depth.
        max_k: u32,
    },
}

/// The engine configuration a worker needs to decide one property:
/// everything from the [`Checker`] except the sessions and the memo.
#[derive(Clone, Debug)]
struct DecideParams {
    backend: Backend,
    limits: ExplicitLimits,
    bmc_bound: u32,
    kind_max_k: u32,
    racing: bool,
    /// Cooperative cancel token, polled between SAT queries inside the
    /// unrolling loops. A raised token turns the decision into
    /// [`McError::Cancelled`]; cancelled decisions are never memoized.
    cancel: Option<Arc<AtomicBool>>,
}

/// How a pooled batch deals its worklist onto the shard sessions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PoolDispatch {
    /// Static round-robin: shard `k` gets worklist items `k`, `k + n`,
    /// … — deterministic work attribution, but a skewed worklist can
    /// leave shards idle.
    RoundRobin,
    /// Work-conserving: every shard pulls the next undecided property
    /// from a shared cursor, so no shard idles while work remains.
    /// Results are still deterministic (verdicts and canonical traces
    /// are partition-independent); only the per-session work counters
    /// in [`SessionStats`] depend on the actual claim order.
    Stealing,
}

/// Size and churn counters for the property memo (see
/// [`Checker::memo_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Distinct properties currently memoized.
    pub entries: usize,
    /// Approximate resident bytes of the memo (atoms plus retained
    /// counterexample traces — an estimate, not an allocator figure).
    pub approx_bytes: usize,
    /// Decisions inserted over the checker's lifetime.
    pub insertions: u64,
    /// Entries evicted by the LRU bound (0 when unbounded).
    pub evictions: u64,
}

/// Approximate resident size of a memoized property key.
fn memo_prop_bytes(prop: &WindowProperty) -> usize {
    48 + prop.antecedent.len() * std::mem::size_of::<crate::prop::BitAtom>()
}

/// Approximate resident size of a memoized decision.
fn memo_result_bytes(result: &CheckResult) -> usize {
    match result {
        CheckResult::Violated(cex) => {
            48 + cex.inputs.iter().map(|v| 24 + v.len() * 40).sum::<usize>()
        }
        _ => 16,
    }
}

/// Approximate resident size of one memo entry.
fn memo_entry_bytes(prop: &WindowProperty, result: &CheckResult) -> usize {
    memo_prop_bytes(prop) + memo_result_bytes(result)
}

fn memo_temporal_prop_bytes(prop: &TemporalProperty) -> usize {
    64 + (prop.antecedent.len() + prop.consequents.len()) * std::mem::size_of::<crate::BitAtom>()
}

/// A reusable model checker for one module.
///
/// The checker owns its module (an `Arc` clone of the one it was built
/// from), so it is `Send` and free of borrow lifetimes — sharded
/// batches move sessions into worker threads, and racing dispatch hands
/// `Arc` handles to detached engine threads.
///
/// # Examples
///
/// ```
/// use gm_mc::{Checker, BitAtom, WindowProperty, CheckResult};
///
/// let m = gm_rtl::parse_verilog(
///     "module m(input clk, input rst, input d, output reg q);
///        always @(posedge clk) if (rst) q <= 0; else q <= d;
///      endmodule")?;
/// let mut checker = Checker::new(&m)?;
/// let d = m.require("d")?;
/// let q = m.require("q")?;
/// let prop = WindowProperty {
///     antecedent: vec![BitAtom::new(d, 0, 0, true)],
///     consequent: BitAtom::new(q, 0, 1, true),
/// };
/// assert_eq!(checker.check(&prop)?, CheckResult::Proved);
/// // Batches reuse the same session; repeats hit the memo.
/// let batch = checker.check_batch(&[prop.clone(), prop.clone()])?;
/// assert!(batch.iter().all(|r| r.is_proved()));
/// assert!(checker.session_stats().memo_hits >= 2);
/// // Sharded batches agree bit-for-bit with the single session.
/// assert_eq!(checker.check_batch_sharded(&[prop], 4)?, batch[..1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Checker {
    module: Arc<Module>,
    blasted: Arc<Blasted>,
    backend: Backend,
    limits: ExplicitLimits,
    bmc_bound: u32,
    kind_max_k: u32,
    racing: bool,
    reach: Option<Arc<ReachableStates>>,
    reach_failed: bool,
    session: CheckSession,
    /// Persistent per-shard sessions, grown on demand by
    /// [`Checker::check_batch_sharded`] and reused across batches.
    shard_sessions: Vec<CheckSession>,
    /// The property memo: O(1) lookup, insert and LRU eviction (the
    /// shared [`gm_cache::BoundedLru`]); unbounded until
    /// [`Checker::with_memo_capacity`] sets a bound.
    memo: BoundedLru<WindowProperty, CheckResult>,
    /// Memo for multi-consequent temporal properties (single-consequent
    /// ones collapse to [`WindowProperty`] and share `memo`). Same
    /// lifecycle as `memo`: cleared together, bounded together.
    temporal_memo: BoundedLru<TemporalProperty, CheckResult>,
    memo_insertions: u64,
    memo_evictions: u64,
    /// Incrementally maintained byte estimate (see [`MemoStats`]),
    /// covering both memos.
    memo_bytes: usize,
    /// Cooperative cancel token (see [`Checker::set_cancel`]).
    cancel: Option<Arc<AtomicBool>>,
}

impl Checker {
    /// Elaborates and bit-blasts `module` with the default backend.
    ///
    /// # Errors
    ///
    /// Propagates elaboration/blasting failures.
    pub fn new(module: &Module) -> Result<Self, McError> {
        let elab = elaborate(module)?;
        Checker::from_elab(module, &elab)
    }

    /// Bit-blasts an already-elaborated module — callers that hold an
    /// [`Elab`] (like the refinement engine) avoid elaborating twice.
    ///
    /// # Errors
    ///
    /// Propagates blasting failures.
    pub fn from_elab(module: &Module, elab: &Elab) -> Result<Self, McError> {
        let blasted = Arc::new(blast(module, elab)?);
        Ok(Checker {
            module: Arc::new(module.clone()),
            session: CheckSession::new(blasted.clone()),
            blasted,
            backend: Backend::Auto,
            limits: ExplicitLimits::default(),
            bmc_bound: 32,
            kind_max_k: 16,
            racing: false,
            reach: None,
            reach_failed: false,
            shard_sessions: Vec::new(),
            memo: BoundedLru::unbounded(),
            temporal_memo: BoundedLru::unbounded(),
            memo_insertions: 0,
            memo_evictions: 0,
            memo_bytes: 0,
            cancel: None,
        })
    }

    /// Overrides the backend. Clears the property memo when the backend
    /// actually changes (verdicts and `Unknown` bounds depend on the
    /// engine configuration); re-applying the current backend keeps the
    /// memo warm.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        if self.backend != backend {
            self.backend = backend;
            self.memo_clear();
        }
        self
    }

    /// Overrides the explicit-engine limits. When they change, clears
    /// the memo and any reachable set computed under the old limits.
    pub fn with_limits(mut self, limits: ExplicitLimits) -> Self {
        if self.limits != limits {
            self.limits = limits;
            self.memo_clear();
            self.reach = None;
            self.reach_failed = false;
        }
        self
    }

    /// Sets the BMC bound used by the `Auto` fallback.
    pub fn with_bmc_bound(mut self, bound: u32) -> Self {
        if self.bmc_bound != bound {
            self.bmc_bound = bound;
            self.memo_clear();
        }
        self
    }

    /// Sets the maximum induction depth used by the `Auto` fallback.
    pub fn with_kind_depth(mut self, max_k: u32) -> Self {
        if self.kind_max_k != max_k {
            self.kind_max_k = max_k;
            self.memo_clear();
        }
        self
    }

    /// Bounds the property memo to at most `entries` decisions,
    /// evicting least-recently-used ones past the bound — the knob that
    /// keeps very long sessions (a persistent closure service) from
    /// growing without bound. Applies immediately and to every later
    /// insertion; eviction only forgets — a re-checked evicted property
    /// is re-decided identically, so results never change.
    pub fn with_memo_capacity(mut self, entries: usize) -> Self {
        self.memo.set_capacity(Some(entries.max(1)));
        self.temporal_memo.set_capacity(Some(entries.max(1)));
        self.evict_over_capacity();
        self
    }

    /// Size and churn counters for the property memo. O(1): the byte
    /// estimate is maintained incrementally at insert/evict time, so
    /// monitoring polls never walk the memo.
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            entries: self.memo.len() + self.temporal_memo.len(),
            approx_bytes: self.memo_bytes,
            insertions: self.memo_insertions,
            evictions: self.memo_evictions,
        }
    }

    /// Approximate resident size of the checker's persistent state: the
    /// memo plus every session's unrollings. Cache-accounting input for
    /// long-lived services.
    pub fn approx_bytes(&self) -> usize {
        self.memo_stats().approx_bytes
            + self.session.approx_bytes()
            + self
                .shard_sessions
                .iter()
                .map(CheckSession::approx_bytes)
                .sum::<usize>()
    }

    /// Resets the per-run verification state — sessions, memo, stats —
    /// while keeping the expensive design artifacts (bit-blasted AIG,
    /// reachable set, explicit-engine caches) warm. A checker recycled
    /// through this produces *byte-identical* run artifacts to a fresh
    /// [`Checker::new`], because everything it keeps is
    /// stats-invisible; a design cache that parks checkers between
    /// closure requests calls this before reuse.
    pub fn reset_for_reuse(&mut self) {
        self.session = CheckSession::new(self.blasted.clone());
        self.shard_sessions.clear();
        self.memo_clear();
        self.memo_insertions = 0;
        self.memo_evictions = 0;
        self.cancel = None;
    }

    /// Installs (or with `None` clears) a cooperative cancel token.
    ///
    /// While the token is raised, every in-flight and future decision —
    /// single checks, batch items, every shard worker — returns
    /// [`McError::Cancelled`] at its next poll point: decision entry,
    /// and between SAT queries inside the BMC / k-induction unrolling
    /// loops. Cancelled decisions are never memoized, so re-checking
    /// after clearing the token decides the property normally. A parked
    /// checker keeps no stale token: [`Checker::reset_for_reuse`]
    /// clears it.
    pub fn set_cancel(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.cancel = cancel;
    }

    /// Builder form of [`Checker::set_cancel`].
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Serves `prop` from the memo, refreshing its LRU position.
    fn memo_get(&mut self, prop: &WindowProperty) -> Option<CheckResult> {
        self.memo.get(prop).cloned()
    }

    fn memo_clear(&mut self) {
        self.memo.clear();
        self.temporal_memo.clear();
        self.memo_bytes = 0;
    }

    fn temporal_memo_insert(&mut self, prop: TemporalProperty, result: CheckResult) {
        self.memo_insertions += 1;
        let prop_bytes = memo_temporal_prop_bytes(&prop);
        self.memo_bytes += prop_bytes + memo_result_bytes(&result);
        if let Some(old) = self.temporal_memo.insert(prop, result) {
            // Same key re-inserted: the fresh value replaced `old`, so
            // only one property's worth of atoms is resident.
            self.memo_bytes = self
                .memo_bytes
                .saturating_sub(prop_bytes + memo_result_bytes(&old));
        }
        while let Some((prop, result)) = self.temporal_memo.pop_over_capacity() {
            self.memo_bytes = self
                .memo_bytes
                .saturating_sub(memo_temporal_prop_bytes(&prop) + memo_result_bytes(&result));
            self.memo_evictions += 1;
        }
    }

    /// Memoizes a decision; O(1) including the eviction of
    /// least-recently-used entries past the bound.
    fn memo_insert(&mut self, prop: WindowProperty, result: CheckResult) {
        self.memo_insertions += 1;
        let prop_bytes = memo_prop_bytes(&prop);
        self.memo_bytes += prop_bytes + memo_result_bytes(&result);
        if let Some(old) = self.memo.insert(prop, result) {
            // Same-key replacement (not reachable from the batch paths,
            // which dedupe first): keep the byte estimate consistent.
            self.memo_bytes = self
                .memo_bytes
                .saturating_sub(prop_bytes + memo_result_bytes(&old));
        }
        self.evict_over_capacity();
    }

    fn evict_over_capacity(&mut self) {
        while let Some((prop, result)) = self.memo.pop_over_capacity() {
            self.memo_bytes = self
                .memo_bytes
                .saturating_sub(memo_entry_bytes(&prop, &result));
            self.memo_evictions += 1;
        }
    }

    /// Enables racing mode for `Auto`-backend decisions (single checks
    /// and every shard of a sharded batch alike): the explicit and SAT
    /// engines of a property run concurrently and the first *conclusive*
    /// (`Proved` / `Violated`) answer wins; `Unknown` and over-limit
    /// errors wait for the other engine. Requires the reachable set —
    /// designs over the explicit limits fall back to the plain SAT
    /// session path. For a fixed racing setting, results are fully
    /// deterministic: verdicts never depend on which engine answered
    /// first, and violated verdicts carry the canonical SAT trace when
    /// the violation is within the SAT bounds (the deterministic
    /// explicit trace otherwise). Racing *verdicts* always agree with
    /// the non-racing checker, but a violated property's trace may be
    /// the canonical SAT one where plain `Auto` would report the
    /// explicit one — so this clears the memo, like every other setting
    /// that can change results. Only the per-engine attribution in
    /// [`SessionStats`] records the actual race winner.
    pub fn with_racing(mut self, racing: bool) -> Self {
        if self.racing != racing {
            self.racing = racing;
            self.memo_clear();
        }
        self
    }

    /// The bit-blasted design.
    pub fn blasted(&self) -> &Blasted {
        &self.blasted
    }

    /// Cumulative statistics across the checker's verification sessions
    /// (the main session plus every shard session): queries by engine,
    /// memo hits, solver conflict/propagation work and frame reuse.
    pub fn session_stats(&self) -> SessionStats {
        self.shard_sessions
            .iter()
            .fold(self.session.stats(), |acc, s| acc + s.stats())
    }

    /// The number of persistent shard sessions built so far.
    pub fn shard_session_count(&self) -> usize {
        self.shard_sessions.len()
    }

    /// The number of distinct properties decided and memoized so far
    /// (window and multi-consequent temporal alike).
    pub fn memo_len(&self) -> usize {
        self.memo.len() + self.temporal_memo.len()
    }

    /// The number of reachable states, if explicit exploration ran.
    pub fn reachable_count(&mut self) -> Option<usize> {
        self.ensure_reach();
        self.reach.as_ref().map(|r| r.len())
    }

    fn ensure_reach(&mut self) {
        if self.reach.is_none() && !self.reach_failed {
            match ReachableStates::explore(&self.blasted, &self.limits) {
                Ok(r) => self.reach = Some(Arc::new(r)),
                Err(_) => self.reach_failed = true,
            }
        }
    }

    fn params(&self) -> DecideParams {
        DecideParams {
            backend: self.backend,
            limits: self.limits,
            bmc_bound: self.bmc_bound,
            kind_max_k: self.kind_max_k,
            racing: self.racing,
            cancel: self.cancel.clone(),
        }
    }

    /// Decides `prop` with the configured backend.
    ///
    /// Results are memoized: checking the same property again (in any
    /// later call or batch) is a lookup, not a solver query.
    ///
    /// # Errors
    ///
    /// Fails if a forced backend exceeds its limits; `Auto` degrades to
    /// the SAT engines instead of failing.
    pub fn check(&mut self, prop: &WindowProperty) -> Result<CheckResult, McError> {
        if let Some(res) = self.memo_get(prop) {
            self.session.note_memo_hit();
            return Ok(res);
        }
        self.ensure_reach_for_backend();
        let params = self.params();
        let mut pending_loser = None;
        let res = decide_one(
            &self.module,
            &self.blasted,
            self.reach.as_ref(),
            &params,
            &mut self.session,
            &mut pending_loser,
            prop,
        );
        // Single checks have no next race to overlap with: reap the
        // losing engine before returning.
        if let Some(h) = pending_loser {
            let _ = h.join();
        }
        let res = res?;
        self.memo_insert(prop.clone(), res.clone());
        Ok(res)
    }

    fn ensure_reach_for_backend(&mut self) {
        if matches!(self.backend, Backend::Auto | Backend::Explicit) {
            self.ensure_reach();
        }
    }

    /// Decides a whole batch of properties against the shared session.
    ///
    /// Within one batch (and across batches) each distinct property is
    /// decided exactly once — duplicates are served from the memo — and
    /// at most one unrolling per (backend, bound) configuration is
    /// built. Under `Auto`, properties the explicit engine can handle
    /// are decided against the one shared reachable set; the rest share
    /// the session's BMC / k-induction unrollings.
    ///
    /// # Errors
    ///
    /// Same contract as [`Checker::check`], failing on the first
    /// property a forced backend cannot handle.
    pub fn check_batch(&mut self, props: &[WindowProperty]) -> Result<Vec<CheckResult>, McError> {
        let mut span = gm_trace::span("mc", "mc.check_batch");
        span.arg("props", props.len());
        let mut out = Vec::with_capacity(props.len());
        for prop in props {
            out.push(self.check(prop)?);
        }
        Ok(out)
    }

    /// Decides a temporal property.
    ///
    /// A single-consequent temporal property *is* a [`WindowProperty`]
    /// and takes the full window dispatch — memo, explicit engine,
    /// racing — via [`Checker::check`]. Multi-consequent properties
    /// (bounded eventualities and stability windows) are decided by the
    /// SAT engines on the shared session: [`Backend::Bmc`] /
    /// [`Backend::KInduction`] respect their configured bounds, while
    /// [`Backend::Auto`] and [`Backend::Explicit`] take the
    /// BMC-then-k-induction path (the explicit engine has no
    /// disjunctive-window evaluator, so `Explicit` degrades rather than
    /// failing). Violated verdicts carry the canonical counterexample —
    /// re-extracted on a fresh unrolling, independent of session
    /// history — and results are memoized like window results.
    ///
    /// # Errors
    ///
    /// Returns [`McError::Cancelled`] when the cooperative cancel token
    /// is raised mid-decision.
    pub fn check_temporal(&mut self, prop: &TemporalProperty) -> Result<CheckResult, McError> {
        if let Some(window) = prop.as_window() {
            return self.check(&window);
        }
        if let Some(res) = self.temporal_memo.get(prop).cloned() {
            self.session.note_memo_hit();
            return Ok(res);
        }
        let cancel = self.cancel.as_deref();
        if cancel_requested(cancel) {
            return Err(McError::Cancelled);
        }
        self.session.note_sat_decision();
        let (limit, res) = match self.backend {
            Backend::Bmc { bound } => (
                bound,
                self.session
                    .bmc_cancellable(&self.module, prop, bound, cancel)?,
            ),
            Backend::KInduction { max_k } => (
                max_k,
                self.session
                    .k_induction_cancellable(&self.module, prop, max_k, cancel)?,
            ),
            Backend::Auto | Backend::Explicit => {
                let limit = self.bmc_bound.max(self.kind_max_k);
                let res = match self.session.bmc_cancellable(
                    &self.module,
                    prop,
                    self.bmc_bound,
                    cancel,
                )? {
                    CheckResult::Violated(cex) => CheckResult::Violated(cex),
                    _ => self.session.k_induction_cancellable(
                        &self.module,
                        prop,
                        self.kind_max_k,
                        cancel,
                    )?,
                };
                (limit, res)
            }
        };
        let res = canonicalize(
            &self.module,
            &self.blasted,
            &mut self.session,
            prop,
            limit,
            res,
        );
        self.temporal_memo_insert(prop.clone(), res.clone());
        Ok(res)
    }

    /// Decides a batch of temporal properties sequentially against the
    /// shared session. Duplicates are served from the memo; the result
    /// order matches the input order. Temporal batches are not sharded:
    /// the engine's temporal worklists are small (a few candidates per
    /// open leaf), so the dispatch overhead would dominate.
    ///
    /// # Errors
    ///
    /// Fails on the first property that errors, like
    /// [`Checker::check_batch`].
    pub fn check_temporal_batch(
        &mut self,
        props: &[TemporalProperty],
    ) -> Result<Vec<CheckResult>, McError> {
        let mut span = gm_trace::span("mc", "mc.check_temporal_batch");
        span.arg("props", props.len());
        let mut out = Vec::with_capacity(props.len());
        for prop in props {
            out.push(self.check_temporal(prop)?);
        }
        Ok(out)
    }

    /// Decides a batch across `shards` persistent worker sessions, one
    /// scoped thread per shard.
    ///
    /// The batch is deduped, memo-served, and the remaining unique
    /// properties are dealt round-robin to the shard sessions (all built
    /// over the same `Arc<Blasted>` — blasting still happens once per
    /// checker). Workers decide their shard concurrently; results are
    /// merged back in worklist order, so the returned vector — verdicts
    /// *and* counterexample traces — is identical to
    /// [`Checker::check_batch`] for every shard count, as is the memo
    /// state left behind. Shard sessions persist across calls, keeping
    /// their unrollings and learnt clauses like the single session does.
    ///
    /// # Errors
    ///
    /// Same contract as [`Checker::check_batch`]: the error reported is
    /// the one the sequential walk would have hit first, and properties
    /// before it are memoized.
    pub fn check_batch_sharded(
        &mut self,
        props: &[WindowProperty],
        shards: usize,
    ) -> Result<Vec<CheckResult>, McError> {
        self.check_batch_pooled(props, shards, PoolDispatch::RoundRobin)
    }

    /// Decides a batch across `shards` persistent worker sessions with a
    /// *work-conserving* dispatch: instead of the static round-robin
    /// deal, every shard pulls the next undecided property from a shared
    /// cursor, so a skewed worklist (a few expensive properties bunched
    /// together) never leaves shards idle.
    ///
    /// Results — verdicts, canonical counterexample traces, memo state,
    /// total engine-query counts — are identical to
    /// [`Checker::check_batch`] and [`Checker::check_batch_sharded`];
    /// the determinism contract is unchanged because every decision is
    /// partition-independent. The only observable difference is *where*
    /// the work landed: per-session [`SessionStats`] (frames encoded vs
    /// reused, solver work) depend on the claim order and may vary
    /// between runs, like the racing mode's attribution counters.
    ///
    /// # Errors
    ///
    /// Same contract as [`Checker::check_batch_sharded`].
    pub fn check_batch_stealing(
        &mut self,
        props: &[WindowProperty],
        shards: usize,
    ) -> Result<Vec<CheckResult>, McError> {
        self.check_batch_pooled(props, shards, PoolDispatch::Stealing)
    }

    fn check_batch_pooled(
        &mut self,
        props: &[WindowProperty],
        shards: usize,
        dispatch: PoolDispatch,
    ) -> Result<Vec<CheckResult>, McError> {
        let shards = shards.max(1);
        // Memo pass + dedupe, preserving first-occurrence order. Memo
        // hits are recorded by position and counted only after the first
        // error position (if any) is known, so the stats match what the
        // sequential walk — which stops at the error — would count.
        let mut out: Vec<Option<CheckResult>> = vec![None; props.len()];
        let mut memo_hit_positions: Vec<usize> = Vec::new();
        let mut unique: Vec<&WindowProperty> = Vec::new();
        let mut index_of: HashMap<&WindowProperty, usize> = HashMap::new();
        // For each unique property: every batch position it fills.
        let mut positions: Vec<Vec<usize>> = Vec::new();
        for (i, prop) in props.iter().enumerate() {
            if let Some(res) = self.memo_get(prop) {
                memo_hit_positions.push(i);
                out[i] = Some(res);
                continue;
            }
            match index_of.get(prop) {
                Some(&ui) => positions[ui].push(i),
                None => {
                    index_of.insert(prop, unique.len());
                    unique.push(prop);
                    positions.push(vec![i]);
                }
            }
        }
        // The position the sequential walk would stop at (its first
        // error), known only after the workers report back.
        let mut stop_pos = usize::MAX;
        if !unique.is_empty() {
            self.ensure_reach_for_backend();
            while self.shard_sessions.len() < shards {
                self.shard_sessions
                    .push(CheckSession::new(self.blasted.clone()));
            }
            let params = self.params();
            let module = self.module.clone();
            let blasted = self.blasted.clone();
            let reach = self.reach.clone();
            // Deal unique properties round-robin onto the shards, move
            // each *active* shard's session into a scoped worker, and
            // take the session back when the worker joins. Sessions that
            // would receive no items — shard indices past the worklist
            // length, or pool entries beyond `shards` left over from a
            // wider earlier batch — skip the worker round-trip entirely
            // (they rejoin the pool after the active ones, a
            // deterministic order).
            let active = shards.min(unique.len());
            let mut idle: Vec<CheckSession> = self.shard_sessions.drain(..).collect();
            let mut work: Vec<(CheckSession, Vec<(usize, &WindowProperty)>)> =
                idle.drain(..active).map(|s| (s, Vec::new())).collect();
            if dispatch == PoolDispatch::RoundRobin {
                for (ui, &prop) in unique.iter().enumerate() {
                    work[ui % shards].1.push((ui, prop));
                }
            }
            // Under `Stealing` the pre-dealt lists stay empty and every
            // worker claims from this shared cursor instead.
            let cursor = AtomicUsize::new(0);
            let unique_ref = &unique;
            let mut decided: Vec<Option<Result<CheckResult, McError>>> = vec![None; unique.len()];
            let shard_results: Vec<ShardYield> = std::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .into_iter()
                    .map(|(mut session, items)| {
                        let module = &module;
                        let blasted = &blasted;
                        let reach = reach.as_ref();
                        let params = &params;
                        let cursor = &cursor;
                        scope.spawn(move || {
                            let mut pending_loser = None;
                            let mut results: Vec<(usize, Result<CheckResult, McError>)> = items
                                .into_iter()
                                .map(|(ui, prop)| {
                                    (
                                        ui,
                                        decide_one(
                                            module,
                                            blasted,
                                            reach,
                                            params,
                                            &mut session,
                                            &mut pending_loser,
                                            prop,
                                        ),
                                    )
                                })
                                .collect();
                            if dispatch == PoolDispatch::Stealing {
                                loop {
                                    let ui = cursor.fetch_add(1, Ordering::Relaxed);
                                    let Some(&prop) = unique_ref.get(ui) else {
                                        break;
                                    };
                                    results.push((
                                        ui,
                                        decide_one(
                                            module,
                                            blasted,
                                            reach,
                                            params,
                                            &mut session,
                                            &mut pending_loser,
                                            prop,
                                        ),
                                    ));
                                }
                            }
                            // Reap the last race's losing engine before
                            // handing the session back.
                            if let Some(h) = pending_loser {
                                let _ = h.join();
                            }
                            (session, results)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            for (session, items) in shard_results {
                self.shard_sessions.push(session);
                for (ui, res) in items {
                    decided[ui] = Some(res);
                }
            }
            self.shard_sessions.append(&mut idle);
            if let Some(ei) = decided.iter().position(|r| matches!(r, Some(Err(_)))) {
                stop_pos = positions[ei][0];
            }
            // Merge in worklist order: memoize up to the first error (the
            // sequential walk would have stopped there), then fail.
            let mut first_err = None;
            for (ui, res) in decided.into_iter().enumerate() {
                match res.expect("every unique property decided") {
                    Ok(res) => {
                        self.memo_insert(unique[ui].clone(), res.clone());
                        for (extra, &i) in positions[ui].iter().enumerate() {
                            if extra > 0 && i < stop_pos {
                                // The sequential walk serves in-batch
                                // duplicates from the memo (up to its
                                // first error).
                                self.session.note_memo_hit();
                            }
                            out[i] = Some(res.clone());
                        }
                    }
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = first_err {
                for &i in &memo_hit_positions {
                    if i < stop_pos {
                        self.session.note_memo_hit();
                    }
                }
                return Err(e);
            }
        }
        for &i in &memo_hit_positions {
            if i < stop_pos {
                self.session.note_memo_hit();
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every batch position filled"))
            .collect())
    }
}

/// Decides one property against one session — the single source of
/// truth shared by [`Checker::check`] and every shard worker.
fn decide_one(
    module: &Arc<Module>,
    blasted: &Arc<Blasted>,
    reach: Option<&Arc<ReachableStates>>,
    params: &DecideParams,
    session: &mut CheckSession,
    pending_loser: &mut Option<LoserHandle>,
    prop: &WindowProperty,
) -> Result<CheckResult, McError> {
    let cancel = params.cancel.as_deref();
    if cancel_requested(cancel) {
        return Err(McError::Cancelled);
    }
    // Every backend decides through here, so this one poll site gives
    // the `sat.stall` / `sat.flaky` faults per-query granularity on the
    // explicit path too (the SAT sessions also evaluate them per window
    // start / induction depth).
    if let Some(fault) = crate::session::injected_fault(cancel) {
        return Err(fault);
    }
    match params.backend {
        Backend::Explicit => match reach {
            Some(r) => {
                let res = explicit_check(module, blasted, r, prop, &params.limits)?;
                session.note_explicit_query();
                Ok(res)
            }
            None => Err(McError::StateSpaceExceeded {
                limit: params.limits.max_states,
            }),
        },
        Backend::Bmc { bound } => {
            session.note_sat_decision();
            let res = session.bmc_cancellable(module, prop, bound, cancel)?;
            Ok(canonicalize(module, blasted, session, prop, bound, res))
        }
        Backend::KInduction { max_k } => {
            session.note_sat_decision();
            let res = session.k_induction_cancellable(module, prop, max_k, cancel)?;
            Ok(canonicalize(module, blasted, session, prop, max_k, res))
        }
        Backend::Auto => {
            if params.racing {
                // Racing spawns one-shot engine threads that cannot be
                // interrupted mid-run; the entry check above is the
                // cancel point for racing decisions.
                if let Some(r) = reach {
                    let (res, loser) =
                        decide_racing(module, blasted, r, params, session, pending_loser, prop);
                    *pending_loser = loser;
                    return Ok(res);
                }
            }
            if let Some(r) = reach {
                if let Ok(res) = explicit_check(module, blasted, r, prop, &params.limits) {
                    session.note_explicit_query();
                    return Ok(res);
                }
                // Window too wide for the explicit walk: fall through to
                // the SAT engines.
            }
            // SAT path: BMC to refute, k-induction to prove — both on
            // the session's shared unrollings. One property decision.
            session.note_sat_decision();
            let limit = params.bmc_bound.max(params.kind_max_k);
            if let CheckResult::Violated(cex) =
                session.bmc_cancellable(module, prop, params.bmc_bound, cancel)?
            {
                let res = CheckResult::Violated(cex);
                return Ok(canonicalize(module, blasted, session, prop, limit, res));
            }
            let res = session.k_induction_cancellable(module, prop, params.kind_max_k, cancel)?;
            Ok(canonicalize(module, blasted, session, prop, limit, res))
        }
    }
}

/// Replaces a session-extracted counterexample with the canonical one
/// (see [`crate::session`]'s determinism contract). Verdicts pass
/// through untouched.
fn canonicalize<P: UnrollProperty>(
    module: &Module,
    blasted: &Arc<Blasted>,
    session: &mut CheckSession,
    prop: &P,
    limit: u32,
    res: CheckResult,
) -> CheckResult {
    match res {
        CheckResult::Violated(session_cex) => {
            session.note_cex_canonicalized();
            match canonical_cex(module, blasted, prop, limit) {
                Some(cex) => CheckResult::Violated(cex),
                // Unreachable for a sound session verdict; keep the
                // session trace rather than panicking in release.
                None => CheckResult::Violated(session_cex),
            }
        }
        other => other,
    }
}

/// What one shard worker hands back when it joins: its session (with
/// accumulated stats) and the decided results, tagged by worklist index.
type ShardYield = (CheckSession, Vec<(usize, Result<CheckResult, McError>)>);

/// One message from a racing engine thread.
struct RaceAnswer {
    from_explicit: bool,
    result: Result<CheckResult, McError>,
}

impl RaceAnswer {
    fn conclusive(&self) -> bool {
        matches!(
            self.result,
            Ok(CheckResult::Proved) | Ok(CheckResult::Violated(_))
        )
    }
}

/// A still-running losing engine thread from an earlier race. Each
/// caller keeps at most one pending loser and joins it before the next
/// race (and at the end of its batch), so orphan engine threads are
/// bounded at one per shard worker instead of accumulating.
type LoserHandle = std::thread::JoinHandle<()>;

/// Races the explicit and SAT engines for one property and takes the
/// first conclusive answer.
///
/// Both engines run on their own threads over `Arc` handles (the SAT
/// side uses the canonical one-shot engines, so its traces need no
/// re-extraction). When the winner returns early, the loser's handle is
/// handed back to the caller, which joins it before starting the next
/// race; the join happens *after* the next race's threads are spawned,
/// so a slow loser overlaps with the next property's race instead of
/// stalling it, and orphan engine threads stay bounded at one per
/// caller. Determinism:
/// whenever both engines are conclusive they agree on the verdict
/// (explicit is exact, the SAT engines are sound), and a violated
/// verdict always carries the canonical SAT trace when the violation is
/// within the SAT bounds — otherwise the deterministic explicit trace —
/// so the *result* never depends on which thread won. The one-shot SAT
/// side needs no re-extraction: a fresh BMC scan and a fresh
/// k-induction base case issue the *identical* query sequence to
/// identical fresh solvers (ensure-frame, violation literal, solve, per
/// start from 0), so whichever of the two finds the violation, its
/// model is bit-for-bit the [`canonical_cex`] trace. Only the stats
/// attribution (explicit vs SAT decision) records the actual winner.
fn decide_racing(
    module: &Arc<Module>,
    blasted: &Arc<Blasted>,
    reach: &Arc<ReachableStates>,
    params: &DecideParams,
    session: &mut CheckSession,
    previous_loser: &mut Option<LoserHandle>,
    prop: &WindowProperty,
) -> (CheckResult, Option<LoserHandle>) {
    let (tx, rx) = mpsc::channel::<RaceAnswer>();
    let explicit_handle = {
        let (module, blasted, reach, prop, limits, tx) = (
            module.clone(),
            blasted.clone(),
            reach.clone(),
            prop.clone(),
            params.limits,
            tx.clone(),
        );
        std::thread::spawn(move || {
            let result = explicit_check(&module, &blasted, &reach, &prop, &limits);
            let _ = tx.send(RaceAnswer {
                from_explicit: true,
                result,
            });
        })
    };
    let sat_handle = {
        let (module, blasted, prop) = (module.clone(), blasted.clone(), prop.clone());
        let (bmc_bound, kind_max_k) = (params.bmc_bound, params.kind_max_k);
        std::thread::spawn(move || {
            let result = match bmc_shared(&module, blasted.clone(), &prop, bmc_bound) {
                CheckResult::Violated(cex) => CheckResult::Violated(cex),
                _ => k_induction_shared(&module, blasted, &prop, kind_max_k),
            };
            let _ = tx.send(RaceAnswer {
                from_explicit: false,
                result: Ok(result),
            });
        })
    };
    // Both engines of this race are now running: reap the previous
    // property's loser while they work, keeping orphans bounded at one
    // without serializing behind a slow loser.
    if let Some(h) = previous_loser.take() {
        let _ = h.join();
    }
    let first = rx.recv().expect("racing engines always answer");
    // A violated explicit verdict still needs the canonical SAT trace
    // when the violation is within the SAT bounds, so that case waits
    // for the SAT engine like the unconclusive path does.
    let early_win = first.conclusive()
        && !(first.from_explicit && matches!(first.result, Ok(CheckResult::Violated(_))));
    let (answer, loser) = if early_win {
        // Reap the winner's (already finished) thread; hand the loser
        // back for the caller to join before its next race.
        let (winner_handle, loser_handle) = if first.from_explicit {
            (explicit_handle, sat_handle)
        } else {
            (sat_handle, explicit_handle)
        };
        let _ = winner_handle.join();
        (first, Some(loser_handle))
    } else {
        let held = first;
        let other = rx.recv().expect("racing engines always answer");
        let _ = explicit_handle.join();
        let _ = sat_handle.join();
        // Prefer a conclusive answer; for violated verdicts prefer the
        // SAT side's canonical trace (deterministic regardless of
        // arrival order — the preference depends only on the two
        // results, and by this point both are in hand).
        let answer = match (&held.result, &other.result) {
            (Ok(CheckResult::Violated(_)), Ok(CheckResult::Violated(_))) => {
                if held.from_explicit {
                    other
                } else {
                    held
                }
            }
            _ => {
                if other.conclusive() {
                    other
                } else if held.conclusive() {
                    held
                } else if held.from_explicit {
                    // Neither conclusive: report the SAT engines'
                    // bounded-unknown, never the explicit error.
                    other
                } else {
                    held
                }
            }
        };
        (answer, None)
    };
    if answer.from_explicit {
        session.note_explicit_query();
    } else {
        session.note_sat_decision();
    }
    (
        answer.result.unwrap_or(CheckResult::Unknown { bound: 0 }),
        loser,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::BitAtom;
    use gm_rtl::parse_verilog;

    const ARBITER2: &str = "
    module arbiter2(input clk, input rst, input req0, input req1,
                    output reg gnt0, output reg gnt1);
      always @(posedge clk)
        if (rst) begin
          gnt0 <= 0; gnt1 <= 0;
        end else begin
          gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
          gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
        end
    endmodule";

    #[test]
    fn auto_uses_explicit_and_agrees_with_sat_engines() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let req1 = m.require("req1").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        // A4 from the paper: req0@0 & !req1@1 |-> gnt0@2 — spurious
        // (the paper refines it further), let's see both engines refute it
        // or both prove its refinement.
        let spurious = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, true),
                BitAtom::new(req1, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, true),
        };
        let mut auto = Checker::new(&m).unwrap();
        let auto_res = auto.check(&spurious).unwrap();
        let mut sat = Checker::new(&m)
            .unwrap()
            .with_backend(Backend::KInduction { max_k: 8 });
        let sat_res = sat.check(&spurious).unwrap();
        assert!(matches!(auto_res, CheckResult::Violated(_)));
        assert!(matches!(sat_res, CheckResult::Violated(_)));

        // A7: req0@0 & req0@1 & !req1@1 |-> gnt0@2 — true.
        let a7 = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, true),
                BitAtom::new(req0, 0, 1, true),
                BitAtom::new(req1, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, true),
        };
        assert_eq!(auto.check(&a7).unwrap(), CheckResult::Proved);
    }

    #[test]
    fn reachable_count_is_cached() {
        let m = parse_verilog(ARBITER2).unwrap();
        let mut c = Checker::new(&m).unwrap();
        assert_eq!(c.reachable_count(), Some(3));
        assert_eq!(c.reachable_count(), Some(3));
    }

    #[test]
    fn bmc_backend_reports_unknown_for_true_properties() {
        let m = parse_verilog(ARBITER2).unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let mutex = WindowProperty {
            antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
            consequent: BitAtom::new(gnt1, 0, 0, false),
        };
        let mut c = Checker::new(&m)
            .unwrap()
            .with_backend(Backend::Bmc { bound: 8 });
        assert_eq!(c.check(&mutex).unwrap(), CheckResult::Unknown { bound: 8 });
    }

    #[test]
    fn from_elab_matches_new() {
        let m = parse_verilog(ARBITER2).unwrap();
        let elab = gm_rtl::elaborate(&m).unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let mutex = WindowProperty {
            antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
            consequent: BitAtom::new(gnt1, 0, 0, false),
        };
        let mut from_elab = Checker::from_elab(&m, &elab).unwrap();
        let mut fresh = Checker::new(&m).unwrap();
        assert_eq!(
            from_elab.check(&mutex).unwrap(),
            fresh.check(&mutex).unwrap()
        );
    }

    #[test]
    fn check_batch_memoizes_duplicates_and_repeats() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let spurious = WindowProperty {
            antecedent: vec![BitAtom::new(req0, 0, 0, false)],
            consequent: BitAtom::new(gnt0, 0, 1, true),
        };
        let a2 = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, false),
                BitAtom::new(req0, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, false),
        };
        // The batch contains a duplicate: only two distinct decisions.
        let batch = vec![spurious.clone(), a2.clone(), spurious.clone()];
        let mut c = Checker::new(&m).unwrap();
        let first = c.check_batch(&batch).unwrap();
        assert!(matches!(first[0], CheckResult::Violated(_)));
        assert_eq!(first[1], CheckResult::Proved);
        assert_eq!(first[0], first[2]);
        assert_eq!(c.memo_len(), 2);
        let hits_after_first = c.session_stats().memo_hits;
        assert!(hits_after_first >= 1, "in-batch duplicate served by memo");
        // The identical batch again: all results from the memo.
        let second = c.check_batch(&batch).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            c.session_stats().memo_hits - hits_after_first,
            batch.len() as u64
        );
    }

    #[test]
    fn sharded_batch_matches_sequential_including_memo_and_stats() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let spurious = WindowProperty {
            antecedent: vec![BitAtom::new(req0, 0, 0, false)],
            consequent: BitAtom::new(gnt0, 0, 1, true),
        };
        let a2 = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, false),
                BitAtom::new(req0, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, false),
        };
        let batch = vec![spurious.clone(), a2.clone(), spurious.clone(), a2];
        let mut plain = Checker::new(&m).unwrap();
        let sequential = plain.check_batch(&batch).unwrap();
        for shards in [1, 2, 3, 8] {
            let mut sharded = Checker::new(&m).unwrap();
            let res = sharded.check_batch_sharded(&batch, shards).unwrap();
            assert_eq!(res, sequential, "{shards} shards diverged");
            assert_eq!(sharded.memo_len(), plain.memo_len());
            assert_eq!(
                sharded.session_stats().memo_hits,
                plain.session_stats().memo_hits,
                "{shards} shards count duplicates differently"
            );
            assert_eq!(
                sharded.session_stats().engine_queries(),
                plain.session_stats().engine_queries(),
            );
            assert_eq!(sharded.shard_session_count(), shards);
            // A repeated sharded batch is fully memo-served.
            let again = sharded.check_batch_sharded(&batch, shards).unwrap();
            assert_eq!(again, sequential);
        }
    }

    #[test]
    fn stealing_batch_matches_sequential_results_and_memo() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let req1 = m.require("req1").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let batch: Vec<WindowProperty> = (0..6)
            .map(|i| WindowProperty {
                antecedent: vec![
                    BitAtom::new(req0, 0, 0, i % 2 == 0),
                    BitAtom::new(req1, 0, 1, i % 3 == 0),
                ],
                consequent: BitAtom::new(if i < 3 { gnt0 } else { gnt1 }, 0, 2, i % 2 == 1),
            })
            .collect();
        let mut plain = Checker::new(&m).unwrap();
        let sequential = plain.check_batch(&batch).unwrap();
        for shards in [1, 2, 4] {
            let mut stealing = Checker::new(&m).unwrap();
            let res = stealing.check_batch_stealing(&batch, shards).unwrap();
            assert_eq!(res, sequential, "{shards} stealing shards diverged");
            assert_eq!(stealing.memo_len(), plain.memo_len());
            assert_eq!(
                stealing.session_stats().engine_queries(),
                plain.session_stats().engine_queries(),
                "stealing must not change the total work"
            );
            // A repeated stealing batch is fully memo-served.
            assert_eq!(stealing.check_batch_stealing(&batch, shards).unwrap(), res);
        }
    }

    #[test]
    fn memo_capacity_bounds_entries_and_counts_evictions() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let props: Vec<WindowProperty> = (0..5)
            .map(|i| WindowProperty {
                antecedent: vec![BitAtom::new(req0, 0, 0, i % 2 == 0)],
                consequent: BitAtom::new(gnt0, 0, i % 3, i < 2),
            })
            .collect();
        let mut bounded = Checker::new(&m).unwrap().with_memo_capacity(2);
        let mut unbounded = Checker::new(&m).unwrap();
        for p in &props {
            // Eviction only forgets: every decision matches the
            // unbounded checker's.
            assert_eq!(bounded.check(p).unwrap(), unbounded.check(p).unwrap());
        }
        let stats = bounded.memo_stats();
        assert!(stats.entries <= 2, "{stats:?}");
        assert_eq!(stats.insertions, props.len() as u64);
        assert_eq!(stats.evictions, (props.len() - 2) as u64);
        assert!(stats.approx_bytes > 0);
        assert_eq!(unbounded.memo_stats().evictions, 0);
        // Re-checking an evicted property re-decides it identically.
        assert_eq!(
            bounded.check(&props[0]).unwrap(),
            unbounded.check(&props[0]).unwrap()
        );
        assert!(bounded.approx_bytes() > 0);
    }

    #[test]
    fn reset_for_reuse_replays_byte_identically() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let props = vec![
            WindowProperty {
                antecedent: vec![BitAtom::new(req0, 0, 0, false)],
                consequent: BitAtom::new(gnt0, 0, 1, true),
            },
            WindowProperty {
                antecedent: vec![
                    BitAtom::new(req0, 0, 0, false),
                    BitAtom::new(req0, 0, 1, false),
                ],
                consequent: BitAtom::new(gnt0, 0, 2, false),
            },
        ];
        let mut fresh = Checker::new(&m).unwrap();
        let expected = fresh.check_batch(&props).unwrap();
        let fresh_stats = fresh.session_stats();
        let mut recycled = Checker::new(&m).unwrap();
        recycled.check_batch(&props).unwrap();
        recycled.reset_for_reuse();
        assert_eq!(recycled.session_stats(), SessionStats::default());
        assert_eq!(recycled.memo_len(), 0);
        assert_eq!(recycled.check_batch(&props).unwrap(), expected);
        assert_eq!(
            recycled.session_stats(),
            fresh_stats,
            "a recycled checker must replay with fresh-checker stats"
        );
    }

    #[test]
    fn reapplying_the_same_setting_keeps_the_memo_warm() {
        let m = parse_verilog(ARBITER2).unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let prop = WindowProperty {
            antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
            consequent: BitAtom::new(gnt1, 0, 0, false),
        };
        let mut c = Checker::new(&m).unwrap();
        c.check(&prop).unwrap();
        assert_eq!(c.memo_len(), 1);
        c = c.with_backend(Backend::Auto).with_racing(false);
        assert_eq!(c.memo_len(), 1, "unchanged settings keep the memo");
        c = c.with_backend(Backend::KInduction { max_k: 4 });
        assert_eq!(c.memo_len(), 0, "a real change clears it");
    }

    #[test]
    fn racing_matches_plain_auto_verdicts() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let props = vec![
            // Violated: !req0@0 |-> gnt0@1 (the paper's A0).
            WindowProperty {
                antecedent: vec![BitAtom::new(req0, 0, 0, false)],
                consequent: BitAtom::new(gnt0, 0, 1, true),
            },
            // Proved: mutual exclusion.
            WindowProperty {
                antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
                consequent: BitAtom::new(gnt1, 0, 0, false),
            },
        ];
        let mut plain = Checker::new(&m).unwrap();
        let expected = plain.check_batch(&props).unwrap();
        let mut racing = Checker::new(&m).unwrap().with_racing(true);
        let got = racing.check_batch_sharded(&props, 2).unwrap();
        for (e, g) in expected.iter().zip(&got) {
            match (e, g) {
                (CheckResult::Proved, CheckResult::Proved) => {}
                (CheckResult::Violated(_), CheckResult::Violated(_)) => {}
                other => panic!("racing diverged: {other:?}"),
            }
        }
        // Racing twice returns identical results (determinism contract).
        let mut again = Checker::new(&m).unwrap().with_racing(true);
        assert_eq!(got, again.check_batch_sharded(&props, 2).unwrap());
    }
}
