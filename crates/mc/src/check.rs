//! The top-level checker: one blasted design, many property queries.
//!
//! The GoldMine refinement loop checks hundreds of candidate assertions
//! against the same design, so the [`Checker`] bit-blasts once, lazily
//! computes the reachable state set once, keeps a persistent
//! [`CheckSession`] (shared unrollings, retained learnt clauses) for
//! the SAT engines, and memoizes every decided property so repeated
//! candidates across refinement iterations are free. Whole batches go
//! through [`Checker::check_batch`].

use crate::blast::{blast, Blasted};
use crate::error::McError;
use crate::explicit::{explicit_check, ExplicitLimits, ReachableStates};
use crate::prop::{CheckResult, WindowProperty};
use crate::session::{CheckSession, SessionStats};
use gm_rtl::{elaborate, Elab, Module};
use std::collections::HashMap;
use std::sync::Arc;

/// Which engine decides a property.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Backend {
    /// Explicit-state when the design fits the limits, otherwise BMC
    /// followed by k-induction. The default.
    #[default]
    Auto,
    /// Explicit-state reachability only (errors if over limits).
    Explicit,
    /// Bounded model checking only — can only refute, never prove.
    Bmc {
        /// Maximum window start frame.
        bound: u32,
    },
    /// k-induction (with its built-in BMC base case).
    KInduction {
        /// Maximum induction depth.
        max_k: u32,
    },
}

/// A reusable model checker for one module.
///
/// # Examples
///
/// ```
/// use gm_mc::{Checker, BitAtom, WindowProperty, CheckResult};
///
/// let m = gm_rtl::parse_verilog(
///     "module m(input clk, input rst, input d, output reg q);
///        always @(posedge clk) if (rst) q <= 0; else q <= d;
///      endmodule")?;
/// let mut checker = Checker::new(&m)?;
/// let d = m.require("d")?;
/// let q = m.require("q")?;
/// let prop = WindowProperty {
///     antecedent: vec![BitAtom::new(d, 0, 0, true)],
///     consequent: BitAtom::new(q, 0, 1, true),
/// };
/// assert_eq!(checker.check(&prop)?, CheckResult::Proved);
/// // Batches reuse the same session; repeats hit the memo.
/// let batch = checker.check_batch(&[prop.clone(), prop])?;
/// assert!(batch.iter().all(|r| r.is_proved()));
/// assert!(checker.session_stats().memo_hits >= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Checker<'m> {
    module: &'m Module,
    blasted: Arc<Blasted>,
    backend: Backend,
    limits: ExplicitLimits,
    bmc_bound: u32,
    kind_max_k: u32,
    reach: Option<ReachableStates>,
    reach_failed: bool,
    session: CheckSession,
    memo: HashMap<WindowProperty, CheckResult>,
}

impl<'m> Checker<'m> {
    /// Elaborates and bit-blasts `module` with the default backend.
    ///
    /// # Errors
    ///
    /// Propagates elaboration/blasting failures.
    pub fn new(module: &'m Module) -> Result<Self, McError> {
        let elab = elaborate(module)?;
        Checker::from_elab(module, &elab)
    }

    /// Bit-blasts an already-elaborated module — callers that hold an
    /// [`Elab`] (like the refinement engine) avoid elaborating twice.
    ///
    /// # Errors
    ///
    /// Propagates blasting failures.
    pub fn from_elab(module: &'m Module, elab: &Elab) -> Result<Self, McError> {
        let blasted = Arc::new(blast(module, elab)?);
        Ok(Checker {
            module,
            session: CheckSession::new(blasted.clone()),
            blasted,
            backend: Backend::Auto,
            limits: ExplicitLimits::default(),
            bmc_bound: 32,
            kind_max_k: 16,
            reach: None,
            reach_failed: false,
            memo: HashMap::new(),
        })
    }

    /// Overrides the backend. Clears the property memo (verdicts and
    /// `Unknown` bounds depend on the engine configuration).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self.memo.clear();
        self
    }

    /// Overrides the explicit-engine limits. Clears the memo and any
    /// reachable set computed under the old limits.
    pub fn with_limits(mut self, limits: ExplicitLimits) -> Self {
        self.limits = limits;
        self.memo.clear();
        self.reach = None;
        self.reach_failed = false;
        self
    }

    /// Sets the BMC bound used by the `Auto` fallback.
    pub fn with_bmc_bound(mut self, bound: u32) -> Self {
        self.bmc_bound = bound;
        self.memo.clear();
        self
    }

    /// Sets the maximum induction depth used by the `Auto` fallback.
    pub fn with_kind_depth(mut self, max_k: u32) -> Self {
        self.kind_max_k = max_k;
        self.memo.clear();
        self
    }

    /// The bit-blasted design.
    pub fn blasted(&self) -> &Blasted {
        &self.blasted
    }

    /// Cumulative statistics of the checker's verification session:
    /// queries by engine, memo hits, solver conflict/propagation work
    /// and frame reuse.
    pub fn session_stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// The number of distinct properties decided and memoized so far.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// The number of reachable states, if explicit exploration ran.
    pub fn reachable_count(&mut self) -> Option<usize> {
        self.ensure_reach();
        self.reach.as_ref().map(|r| r.len())
    }

    fn ensure_reach(&mut self) {
        if self.reach.is_none() && !self.reach_failed {
            match ReachableStates::explore(&self.blasted, &self.limits) {
                Ok(r) => self.reach = Some(r),
                Err(_) => self.reach_failed = true,
            }
        }
    }

    /// Decides `prop` with the configured backend.
    ///
    /// Results are memoized: checking the same property again (in any
    /// later call or batch) is a lookup, not a solver query.
    ///
    /// # Errors
    ///
    /// Fails if a forced backend exceeds its limits; `Auto` degrades to
    /// the SAT engines instead of failing.
    pub fn check(&mut self, prop: &WindowProperty) -> Result<CheckResult, McError> {
        if let Some(res) = self.memo.get(prop) {
            self.session.note_memo_hit();
            return Ok(res.clone());
        }
        let res = self.check_uncached(prop)?;
        self.memo.insert(prop.clone(), res.clone());
        Ok(res)
    }

    /// Decides a whole batch of properties against the shared session.
    ///
    /// Within one batch (and across batches) each distinct property is
    /// decided exactly once — duplicates are served from the memo — and
    /// at most one unrolling per (backend, bound) configuration is
    /// built. Under `Auto`, properties the explicit engine can handle
    /// are decided against the one shared reachable set; the rest share
    /// the session's BMC / k-induction unrollings.
    ///
    /// # Errors
    ///
    /// Same contract as [`Checker::check`], failing on the first
    /// property a forced backend cannot handle.
    pub fn check_batch(&mut self, props: &[WindowProperty]) -> Result<Vec<CheckResult>, McError> {
        let mut out = Vec::with_capacity(props.len());
        for prop in props {
            out.push(self.check(prop)?);
        }
        Ok(out)
    }

    fn check_uncached(&mut self, prop: &WindowProperty) -> Result<CheckResult, McError> {
        match self.backend {
            Backend::Explicit => {
                self.ensure_reach();
                match &self.reach {
                    Some(r) => {
                        let res =
                            explicit_check(self.module, &self.blasted, r, prop, &self.limits)?;
                        self.session.note_explicit_query();
                        Ok(res)
                    }
                    None => Err(McError::StateSpaceExceeded {
                        limit: self.limits.max_states,
                    }),
                }
            }
            Backend::Bmc { bound } => {
                self.session.note_sat_decision();
                Ok(self.session.bmc(self.module, prop, bound))
            }
            Backend::KInduction { max_k } => {
                self.session.note_sat_decision();
                Ok(self.session.k_induction(self.module, prop, max_k))
            }
            Backend::Auto => {
                self.ensure_reach();
                if let Some(r) = &self.reach {
                    match explicit_check(self.module, &self.blasted, r, prop, &self.limits) {
                        Ok(res) => {
                            self.session.note_explicit_query();
                            return Ok(res);
                        }
                        Err(_) => { /* window too wide: fall through to SAT */ }
                    }
                }
                // SAT path: BMC to refute, k-induction to prove — both on
                // the session's shared unrollings. One property decision.
                self.session.note_sat_decision();
                if let CheckResult::Violated(cex) =
                    self.session.bmc(self.module, prop, self.bmc_bound)
                {
                    return Ok(CheckResult::Violated(cex));
                }
                Ok(self.session.k_induction(self.module, prop, self.kind_max_k))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::BitAtom;
    use gm_rtl::parse_verilog;

    const ARBITER2: &str = "
    module arbiter2(input clk, input rst, input req0, input req1,
                    output reg gnt0, output reg gnt1);
      always @(posedge clk)
        if (rst) begin
          gnt0 <= 0; gnt1 <= 0;
        end else begin
          gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
          gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
        end
    endmodule";

    #[test]
    fn auto_uses_explicit_and_agrees_with_sat_engines() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let req1 = m.require("req1").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        // A4 from the paper: req0@0 & !req1@1 |-> gnt0@2 — spurious
        // (the paper refines it further), let's see both engines refute it
        // or both prove its refinement.
        let spurious = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, true),
                BitAtom::new(req1, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, true),
        };
        let mut auto = Checker::new(&m).unwrap();
        let auto_res = auto.check(&spurious).unwrap();
        let mut sat = Checker::new(&m)
            .unwrap()
            .with_backend(Backend::KInduction { max_k: 8 });
        let sat_res = sat.check(&spurious).unwrap();
        assert!(matches!(auto_res, CheckResult::Violated(_)));
        assert!(matches!(sat_res, CheckResult::Violated(_)));

        // A7: req0@0 & req0@1 & !req1@1 |-> gnt0@2 — true.
        let a7 = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, true),
                BitAtom::new(req0, 0, 1, true),
                BitAtom::new(req1, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, true),
        };
        assert_eq!(auto.check(&a7).unwrap(), CheckResult::Proved);
    }

    #[test]
    fn reachable_count_is_cached() {
        let m = parse_verilog(ARBITER2).unwrap();
        let mut c = Checker::new(&m).unwrap();
        assert_eq!(c.reachable_count(), Some(3));
        assert_eq!(c.reachable_count(), Some(3));
    }

    #[test]
    fn bmc_backend_reports_unknown_for_true_properties() {
        let m = parse_verilog(ARBITER2).unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let mutex = WindowProperty {
            antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
            consequent: BitAtom::new(gnt1, 0, 0, false),
        };
        let mut c = Checker::new(&m)
            .unwrap()
            .with_backend(Backend::Bmc { bound: 8 });
        assert_eq!(c.check(&mutex).unwrap(), CheckResult::Unknown { bound: 8 });
    }

    #[test]
    fn from_elab_matches_new() {
        let m = parse_verilog(ARBITER2).unwrap();
        let elab = gm_rtl::elaborate(&m).unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let mutex = WindowProperty {
            antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
            consequent: BitAtom::new(gnt1, 0, 0, false),
        };
        let mut from_elab = Checker::from_elab(&m, &elab).unwrap();
        let mut fresh = Checker::new(&m).unwrap();
        assert_eq!(
            from_elab.check(&mutex).unwrap(),
            fresh.check(&mutex).unwrap()
        );
    }

    #[test]
    fn check_batch_memoizes_duplicates_and_repeats() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let spurious = WindowProperty {
            antecedent: vec![BitAtom::new(req0, 0, 0, false)],
            consequent: BitAtom::new(gnt0, 0, 1, true),
        };
        let a2 = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, false),
                BitAtom::new(req0, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, false),
        };
        // The batch contains a duplicate: only two distinct decisions.
        let batch = vec![spurious.clone(), a2.clone(), spurious.clone()];
        let mut c = Checker::new(&m).unwrap();
        let first = c.check_batch(&batch).unwrap();
        assert!(matches!(first[0], CheckResult::Violated(_)));
        assert_eq!(first[1], CheckResult::Proved);
        assert_eq!(first[0], first[2]);
        assert_eq!(c.memo_len(), 2);
        let hits_after_first = c.session_stats().memo_hits;
        assert!(hits_after_first >= 1, "in-batch duplicate served by memo");
        // The identical batch again: all results from the memo.
        let second = c.check_batch(&batch).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            c.session_stats().memo_hits - hits_after_first,
            batch.len() as u64
        );
    }
}
