//! The top-level checker: one blasted design, many property queries.
//!
//! The GoldMine refinement loop checks hundreds of candidate assertions
//! against the same design, so the [`Checker`] bit-blasts once, lazily
//! computes the reachable state set once, and dispatches each query to
//! the configured backend.

use crate::blast::{blast, Blasted};
use crate::bmc::{bmc, k_induction};
use crate::error::McError;
use crate::explicit::{explicit_check, ExplicitLimits, ReachableStates};
use crate::prop::{CheckResult, WindowProperty};
use gm_rtl::{elaborate, Module};

/// Which engine decides a property.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Backend {
    /// Explicit-state when the design fits the limits, otherwise BMC
    /// followed by k-induction. The default.
    #[default]
    Auto,
    /// Explicit-state reachability only (errors if over limits).
    Explicit,
    /// Bounded model checking only — can only refute, never prove.
    Bmc {
        /// Maximum window start frame.
        bound: u32,
    },
    /// k-induction (with its built-in BMC base case).
    KInduction {
        /// Maximum induction depth.
        max_k: u32,
    },
}

/// A reusable model checker for one module.
///
/// # Examples
///
/// ```
/// use gm_mc::{Checker, BitAtom, WindowProperty, CheckResult};
///
/// let m = gm_rtl::parse_verilog(
///     "module m(input clk, input rst, input d, output reg q);
///        always @(posedge clk) if (rst) q <= 0; else q <= d;
///      endmodule")?;
/// let mut checker = Checker::new(&m)?;
/// let d = m.require("d")?;
/// let q = m.require("q")?;
/// let prop = WindowProperty {
///     antecedent: vec![BitAtom::new(d, 0, 0, true)],
///     consequent: BitAtom::new(q, 0, 1, true),
/// };
/// assert_eq!(checker.check(&prop)?, CheckResult::Proved);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Checker<'m> {
    module: &'m Module,
    blasted: Blasted,
    backend: Backend,
    limits: ExplicitLimits,
    bmc_bound: u32,
    kind_max_k: u32,
    reach: Option<ReachableStates>,
    reach_failed: bool,
}

impl<'m> Checker<'m> {
    /// Elaborates and bit-blasts `module` with the default backend.
    ///
    /// # Errors
    ///
    /// Propagates elaboration/blasting failures.
    pub fn new(module: &'m Module) -> Result<Self, McError> {
        let elab = elaborate(module)?;
        let blasted = blast(module, &elab)?;
        Ok(Checker {
            module,
            blasted,
            backend: Backend::Auto,
            limits: ExplicitLimits::default(),
            bmc_bound: 32,
            kind_max_k: 16,
            reach: None,
            reach_failed: false,
        })
    }

    /// Overrides the backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the explicit-engine limits.
    pub fn with_limits(mut self, limits: ExplicitLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the BMC bound used by the `Auto` fallback.
    pub fn with_bmc_bound(mut self, bound: u32) -> Self {
        self.bmc_bound = bound;
        self
    }

    /// The bit-blasted design.
    pub fn blasted(&self) -> &Blasted {
        &self.blasted
    }

    /// The number of reachable states, if explicit exploration ran.
    pub fn reachable_count(&mut self) -> Option<usize> {
        self.ensure_reach();
        self.reach.as_ref().map(|r| r.len())
    }

    fn ensure_reach(&mut self) {
        if self.reach.is_none() && !self.reach_failed {
            match ReachableStates::explore(&self.blasted, &self.limits) {
                Ok(r) => self.reach = Some(r),
                Err(_) => self.reach_failed = true,
            }
        }
    }

    /// Decides `prop` with the configured backend.
    ///
    /// # Errors
    ///
    /// Fails if a forced backend exceeds its limits; `Auto` degrades to
    /// the SAT engines instead of failing.
    pub fn check(&mut self, prop: &WindowProperty) -> Result<CheckResult, McError> {
        match self.backend {
            Backend::Explicit => {
                self.ensure_reach();
                match &self.reach {
                    Some(r) => explicit_check(self.module, &self.blasted, r, prop, &self.limits),
                    None => Err(McError::StateSpaceExceeded {
                        limit: self.limits.max_states,
                    }),
                }
            }
            Backend::Bmc { bound } => Ok(bmc(self.module, &self.blasted, prop, bound)),
            Backend::KInduction { max_k } => {
                Ok(k_induction(self.module, &self.blasted, prop, max_k))
            }
            Backend::Auto => {
                self.ensure_reach();
                if let Some(r) = &self.reach {
                    match explicit_check(self.module, &self.blasted, r, prop, &self.limits) {
                        Ok(res) => return Ok(res),
                        Err(_) => { /* window too wide: fall through to SAT */ }
                    }
                }
                // SAT path: BMC to refute, k-induction to prove.
                if let CheckResult::Violated(cex) =
                    bmc(self.module, &self.blasted, prop, self.bmc_bound)
                {
                    return Ok(CheckResult::Violated(cex));
                }
                Ok(k_induction(
                    self.module,
                    &self.blasted,
                    prop,
                    self.kind_max_k,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::BitAtom;
    use gm_rtl::parse_verilog;

    const ARBITER2: &str = "
    module arbiter2(input clk, input rst, input req0, input req1,
                    output reg gnt0, output reg gnt1);
      always @(posedge clk)
        if (rst) begin
          gnt0 <= 0; gnt1 <= 0;
        end else begin
          gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
          gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
        end
    endmodule";

    #[test]
    fn auto_uses_explicit_and_agrees_with_sat_engines() {
        let m = parse_verilog(ARBITER2).unwrap();
        let req0 = m.require("req0").unwrap();
        let req1 = m.require("req1").unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        // A4 from the paper: req0@0 & !req1@1 |-> gnt0@2 — spurious
        // (the paper refines it further), let's see both engines refute it
        // or both prove its refinement.
        let spurious = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, true),
                BitAtom::new(req1, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, true),
        };
        let mut auto = Checker::new(&m).unwrap();
        let auto_res = auto.check(&spurious).unwrap();
        let mut sat = Checker::new(&m)
            .unwrap()
            .with_backend(Backend::KInduction { max_k: 8 });
        let sat_res = sat.check(&spurious).unwrap();
        assert!(matches!(auto_res, CheckResult::Violated(_)));
        assert!(matches!(sat_res, CheckResult::Violated(_)));

        // A7: req0@0 & req0@1 & !req1@1 |-> gnt0@2 — true.
        let a7 = WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, true),
                BitAtom::new(req0, 0, 1, true),
                BitAtom::new(req1, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, true),
        };
        assert_eq!(auto.check(&a7).unwrap(), CheckResult::Proved);
    }

    #[test]
    fn reachable_count_is_cached() {
        let m = parse_verilog(ARBITER2).unwrap();
        let mut c = Checker::new(&m).unwrap();
        assert_eq!(c.reachable_count(), Some(3));
        assert_eq!(c.reachable_count(), Some(3));
    }

    #[test]
    fn bmc_backend_reports_unknown_for_true_properties() {
        let m = parse_verilog(ARBITER2).unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let gnt1 = m.require("gnt1").unwrap();
        let mutex = WindowProperty {
            antecedent: vec![BitAtom::new(gnt0, 0, 0, true)],
            consequent: BitAtom::new(gnt1, 0, 0, false),
        };
        let mut c = Checker::new(&m)
            .unwrap()
            .with_backend(Backend::Bmc { bound: 8 });
        assert_eq!(c.check(&mutex).unwrap(), CheckResult::Unknown { bound: 8 });
    }
}
