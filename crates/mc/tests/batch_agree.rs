//! Cross-validation of batched vs sequential checking.
//!
//! `Checker::check_batch` must agree with per-property `check` on every
//! catalog design, for every backend, while the memo makes repeated
//! batches free. The properties are generated deterministically per
//! design (a fixed LCG), mixing proved, violated and unknown verdicts.

use gm_mc::{Backend, CexTrace, CheckResult, Checker, ExplicitLimits, WindowProperty};
use gm_mc::{BitAtom, McError};
use gm_rtl::{Bv, Module, SignalId};
use gm_sim::{NopObserver, Simulator};

/// A tiny deterministic generator (so the suite needs no RNG dep).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_atom(rng: &mut Lcg, module: &Module, pool: &[SignalId], max_offset: u64) -> BitAtom {
    let sig = pool[rng.below(pool.len() as u64) as usize];
    let bit = rng.below(u64::from(module.signal_width(sig))) as u32;
    let offset = rng.below(max_offset + 1) as u32;
    BitAtom::new(sig, bit, offset, rng.below(2) == 1)
}

/// Deterministic property mix for one design: antecedents over inputs
/// and outputs at offsets 0..=1, consequents over outputs at 1..=2.
fn properties_for(module: &Module, count: usize) -> Vec<WindowProperty> {
    let inputs = module.data_inputs();
    let outputs = module.outputs();
    let mut pool = inputs;
    pool.extend(outputs.iter().copied());
    let mut rng = Lcg(0x5EED_0000 + module.name().len() as u64);
    (0..count)
        .map(|_| {
            let n_ant = rng.below(3) as usize;
            let antecedent = (0..n_ant)
                .map(|_| random_atom(&mut rng, module, &pool, 1))
                .collect();
            let out = outputs[rng.below(outputs.len() as u64) as usize];
            let bit = rng.below(u64::from(module.signal_width(out))) as u32;
            let offset = 1 + rng.below(2) as u32;
            WindowProperty {
                antecedent,
                consequent: BitAtom::new(out, bit, offset, rng.below(2) == 1),
            }
        })
        .collect()
}

const BACKENDS: [Backend; 4] = [
    Backend::Auto,
    Backend::Explicit,
    Backend::Bmc { bound: 4 },
    Backend::KInduction { max_k: 3 },
];

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Auto => "auto",
        Backend::Explicit => "explicit",
        Backend::Bmc { .. } => "bmc",
        Backend::KInduction { .. } => "k-induction",
    }
}

/// A checker with explicit limits and SAT fallback bounds small enough
/// for the big catalog designs: b17/b18-style blocks technically fit
/// the default explicit budgets but take minutes to enumerate, so the
/// sweep forces them onto the bounded SAT session instead (the defaults
/// target refinement runs, not a 12-design sweep).
fn checker(module: &Module, backend: Backend) -> Checker {
    let limits = ExplicitLimits {
        max_state_bits: 10,
        max_input_bits: 8,
        max_states: 4096,
        ..ExplicitLimits::default()
    };
    Checker::new(module)
        .unwrap()
        .with_backend(backend)
        .with_limits(limits)
        .with_bmc_bound(4)
        .with_kind_depth(3)
}

/// Replays a counterexample from reset and confirms the violation.
fn cex_violates(module: &Module, prop: &WindowProperty, cex: &CexTrace) -> bool {
    let mut sim = Simulator::new(module).unwrap();
    if let Some(rst) = module.reset() {
        sim.set_input(rst, Bv::one_bit());
        sim.step();
        sim.set_input(rst, Bv::zero_bit());
    }
    let trace = sim.run_vectors(&cex.inputs, &mut NopObserver);
    let depth = prop.depth() as usize;
    if trace.len() < depth + 1 {
        return false;
    }
    let base = trace.len() - 1 - depth;
    let atom_holds = |a: &BitAtom| trace.bit(base + a.offset as usize, a.signal, a.bit) == a.value;
    prop.antecedent.iter().all(atom_holds) && !atom_holds(&prop.consequent)
}

#[test]
fn check_batch_agrees_with_sequential_check_on_all_catalog_designs() {
    for design in gm_designs::catalog() {
        let module = design.module();
        let elab = gm_rtl::elaborate(&module).unwrap();
        let blasted = gm_mc::blast(&module, &elab).unwrap();
        let props = properties_for(&module, 5);
        for backend in BACKENDS {
            // Independent sequential reference: the one-shot engines for
            // the SAT backends (private unrolling per property, no
            // session code involved), a fresh checker per property for
            // Auto/Explicit (fresh session each, so nothing persists
            // across properties). A reference that merely looped the
            // batch checker's own `check` would be tautological.
            let sequential: Result<Vec<CheckResult>, McError> = props
                .iter()
                .map(|p| match backend {
                    Backend::Bmc { bound } => Ok(gm_mc::bmc(&module, &blasted, p, bound)),
                    Backend::KInduction { max_k } => {
                        Ok(gm_mc::k_induction(&module, &blasted, p, max_k))
                    }
                    Backend::Auto | Backend::Explicit => checker(&module, backend).check(p),
                })
                .collect();
            let sequential = match sequential {
                Ok(r) => r,
                Err(_) => {
                    // Forced explicit on a design/window over its limits:
                    // nothing to cross-validate for this backend.
                    assert!(
                        matches!(backend, Backend::Explicit),
                        "only the forced explicit backend may refuse {}",
                        design.name
                    );
                    continue;
                }
            };
            let mut batch = checker(&module, backend);
            let batched = batch.check_batch(&props).unwrap();
            // Verdicts must agree; concrete counterexample traces may
            // differ between solver states, so each is validated by
            // replay instead of compared bit-for-bit.
            for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
                let ctx = |side: &str| {
                    format!(
                        "{} with {} on {}, property {i}",
                        side,
                        backend_name(backend),
                        design.name
                    )
                };
                match (s, b) {
                    (CheckResult::Proved, CheckResult::Proved) => {}
                    (CheckResult::Unknown { bound: sb }, CheckResult::Unknown { bound: bb }) => {
                        assert_eq!(sb, bb, "{}", ctx("bounds"));
                    }
                    (CheckResult::Violated(sc), CheckResult::Violated(bc)) => {
                        assert!(
                            cex_violates(&module, &props[i], sc),
                            "{}",
                            ctx("sequential cex")
                        );
                        assert!(
                            cex_violates(&module, &props[i], bc),
                            "{}",
                            ctx("batched cex")
                        );
                    }
                    (s, b) => panic!("verdicts disagree ({}): {s:?} vs {b:?}", ctx("")),
                }
            }
        }
    }
}

#[test]
fn repeated_batches_are_deterministic_and_fully_memoized() {
    for design in gm_designs::catalog() {
        let module = design.module();
        let props = properties_for(&module, 5);
        let mut c = checker(&module, Backend::Auto);
        let first = c.check_batch(&props).unwrap();
        let hits_after_first = c.session_stats().memo_hits;
        let queries_after_first = c.session_stats().engine_queries();
        let second = c.check_batch(&props).unwrap();
        assert_eq!(first, second, "nondeterministic batch on {}", design.name);
        let stats = c.session_stats();
        assert_eq!(
            stats.memo_hits - hits_after_first,
            props.len() as u64,
            "second batch not fully memoized on {}",
            design.name
        );
        assert_eq!(
            stats.engine_queries(),
            queries_after_first,
            "second batch did engine work on {}",
            design.name
        );
    }
}
