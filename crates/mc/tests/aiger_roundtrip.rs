//! AIGER round-trip: exporting an AIG and re-parsing the text must
//! reproduce the graph exactly (structural equality), and the parsed
//! graph must behave identically — checked against the behavioral
//! simulator on small catalog designs.

use gm_designs::by_name;
use gm_mc::{blast, parse_aiger, to_aiger, Aig, AigLit};
use gm_rtl::{elaborate, Bv};
use gm_sim::{collect_vectors, RandomStimulus, Simulator};

/// A hand-built graph with one of everything: inputs, an init-1 latch,
/// an AND, complemented output edges.
fn tiny_aig() -> (Aig, Vec<AigLit>) {
    let mut g = Aig::new();
    let a = g.add_input(); // node 1
    let b = g.add_input(); // node 2
    let q = g.add_latch(true); // node 3
    let x = g.and(a, b); // node 4
    g.set_latch_next(0, !x);
    (g, vec![x, !q])
}

#[test]
fn golden_aiger_text() {
    let (g, outputs) = tiny_aig();
    let text = to_aiger(&g, &outputs);
    let expected = "\
aag 4 2 1 2 1
2
4
6 9 1
8
7
8 4 2
";
    assert_eq!(text, expected);
}

#[test]
fn tiny_graph_round_trips() {
    let (g, outputs) = tiny_aig();
    let text = to_aiger(&g, &outputs);
    let parsed = parse_aiger(&text).unwrap();
    assert!(parsed.aig.structurally_equal(&g));
    assert_eq!(parsed.outputs, outputs);
    // And again: parse . print . parse is a fixed point.
    let text2 = to_aiger(&parsed.aig, &parsed.outputs);
    assert_eq!(text, text2);
}

#[test]
fn catalog_designs_round_trip_structurally() {
    for name in ["arbiter2", "b02", "b09", "decode_stage"] {
        let m = by_name(name).unwrap().module();
        let e = elaborate(&m).unwrap();
        let blasted = blast(&m, &e).unwrap();
        // The same output list blasted_to_aiger uses, kept here so the
        // parsed literals can be compared code-for-code.
        let outputs: Vec<AigLit> = m
            .outputs()
            .into_iter()
            .flat_map(|out| (0..m.signal_width(out)).map(move |bit| (out, bit)))
            .map(|(out, bit)| blasted.signal_bit(out, bit))
            .collect();
        let text = to_aiger(&blasted.aig, &outputs);
        let parsed = parse_aiger(&text).unwrap_or_else(|err| panic!("{name}: {err}"));
        assert!(
            parsed.aig.structurally_equal(&blasted.aig),
            "{name}: reparsed graph differs"
        );
        assert_eq!(parsed.outputs, outputs, "{name}: output literals differ");
        assert_eq!(
            parsed.aig.latch_count(),
            blasted.aig.latch_count(),
            "{name}"
        );
        assert_eq!(
            parsed.aig.input_count(),
            blasted.aig.input_count(),
            "{name}"
        );
    }
}

#[test]
fn symbol_table_and_comments_are_skipped() {
    let m = by_name("arbiter2").unwrap().module();
    let e = elaborate(&m).unwrap();
    let blasted = blast(&m, &e).unwrap();
    // blasted_to_aiger appends symbols and a comment section.
    let text = gm_mc::blasted_to_aiger(&m, &blasted);
    let parsed = parse_aiger(&text).unwrap();
    assert!(parsed.aig.structurally_equal(&blasted.aig));
}

/// The parsed-back netlist, stepped cycle by cycle through
/// `Aig::eval`/`Aig::next_state`, must agree with the behavioral
/// simulator on every output bit of every cycle.
#[test]
fn parsed_netlist_agrees_with_behavioral_simulation() {
    for name in ["arbiter2", "b02", "b09"] {
        let m = by_name(name).unwrap().module();
        let e = elaborate(&m).unwrap();
        let blasted = blast(&m, &e).unwrap();
        let text = to_aiger(
            &blasted.aig,
            &[], // outputs read through signal_bit, none needed in-file
        );
        let parsed = parse_aiger(&text).unwrap();

        let mut sim = Simulator::new(&m).unwrap();
        if let Some(rst) = m.reset() {
            sim.set_input(rst, Bv::one_bit());
            sim.step();
            sim.set_input(rst, Bv::zero_bit());
        }
        let mut state = parsed.aig.initial_state();
        let vectors = collect_vectors(&mut RandomStimulus::new(&m, 23, 50));
        for (cycle, vec) in vectors.iter().enumerate() {
            sim.set_inputs(vec);
            sim.settle();
            let inputs: Vec<bool> = blasted
                .input_bits
                .iter()
                .map(|&(sig, bit)| sim.value(sig).bit(bit))
                .collect();
            let vals = parsed.aig.eval(&inputs, &state);
            for out in m.outputs() {
                for bit in 0..m.signal_width(out) {
                    let netlist = parsed.aig.lit_value(&vals, blasted.signal_bit(out, bit));
                    let behav = sim.value(out).bit(bit);
                    assert_eq!(
                        netlist,
                        behav,
                        "{name} cycle {cycle}: {}[{bit}] diverged after round trip",
                        m.signal(out).name()
                    );
                }
            }
            state = parsed.aig.next_state(&vals);
            sim.step();
        }
    }
}

#[test]
fn malformed_inputs_are_rejected() {
    // Wrong magic.
    assert!(parse_aiger("aig 1 1 0 0 0\n2\n").is_err());
    // Truncated: header promises one input, file ends.
    assert!(parse_aiger("aag 1 1 0 0 0\n").is_err());
    // Odd input literal.
    assert!(parse_aiger("aag 1 1 0 0 0\n3\n").is_err());
    // Node defined twice (input 2 and AND 2).
    assert!(parse_aiger("aag 2 1 0 0 1\n2\n2 0 0\n").is_err());
    // Operand out of range.
    assert!(parse_aiger("aag 2 1 0 0 1\n2\n4 9 2\n").is_err());
    // Bad latch reset value.
    assert!(parse_aiger("aag 2 1 1 0 0\n2\n4 2 x\n").is_err());
    // Empty file.
    assert!(parse_aiger("").is_err());
    // Undercounted header: M must be at least I + L + A.
    assert!(parse_aiger("aag 1 1 0 0 1\n2\n4 2 3\n").is_err());
    // Forward reference: AND node 2 reads node 3, which a topological
    // single-pass eval would see uninitialized.
    let err = parse_aiger("aag 3 1 0 1 2\n2\n6\n4 6 2\n6 3 2\n").unwrap_err();
    assert!(err.contains("not below"), "{err}");
    // Output referencing an undefined (hole) node.
    let err = parse_aiger("aag 2 1 0 1 0\n2\n4\n").unwrap_err();
    assert!(err.contains("undefined node"), "{err}");
    // Hostile headers must error out, not abort on allocation.
    assert!(parse_aiger("aag 9999999999 0 0 0 0\n").is_err());
    assert!(parse_aiger("aag 9999999999 9999999999 0 0 0\n").is_err());
    assert!(parse_aiger(&format!("aag {m} {m} 0 0 0\n", m = u64::MAX)).is_err());
}

#[test]
fn sparse_variable_indices_are_tolerated() {
    // Spec-valid sparseness: M = 5 but only nodes 1 (input), 2 (AND)
    // are defined; nodes 3-5 are unused holes, as external tools leave
    // behind after deleting nodes. The defined part must still parse
    // and evaluate.
    let parsed = parse_aiger("aag 5 1 0 1 1\n2\n4\n4 3 2\n").unwrap();
    assert_eq!(parsed.aig.len(), 6);
    assert_eq!(parsed.aig.input_count(), 1);
    // and(a, !a) == false for both input values.
    for v in [false, true] {
        let vals = parsed.aig.eval(&[v], &[]);
        assert!(!parsed.aig.lit_value(&vals, parsed.outputs[0]));
    }
}
