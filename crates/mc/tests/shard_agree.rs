//! Differential suite for the sharded dispatch layer: sharded ≡ batched
//! ≡ sequential on every catalog design, for shard counts {1, 2, 4, 7}.
//!
//! Thanks to canonical counterexample extraction the comparison is
//! *exact* — `assert_eq!` on whole `CheckResult` vectors, traces
//! included — not merely verdict agreement. A proptest closes the loop:
//! random worklists (duplicates and all) dispatched under arbitrary
//! shard counts merge to results identical to the single-session batch,
//! leaving identical memo state behind.

use gm_mc::{Backend, BitAtom, CexTrace, CheckResult, Checker, ExplicitLimits, WindowProperty};
use gm_rtl::{Bv, Module, SignalId};
use gm_sim::{NopObserver, Simulator};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// A tiny deterministic generator (so the suite needs no RNG dep).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_atom(rng: &mut Lcg, module: &Module, pool: &[SignalId], max_offset: u64) -> BitAtom {
    let sig = pool[rng.below(pool.len() as u64) as usize];
    let bit = rng.below(u64::from(module.signal_width(sig))) as u32;
    let offset = rng.below(max_offset + 1) as u32;
    BitAtom::new(sig, bit, offset, rng.below(2) == 1)
}

/// Deterministic property mix for one design: antecedents over inputs
/// and outputs at offsets 0..=1, consequents over outputs at 1..=2.
fn properties_for(module: &Module, seed: u64, count: usize) -> Vec<WindowProperty> {
    let inputs = module.data_inputs();
    let outputs = module.outputs();
    let mut pool = inputs;
    pool.extend(outputs.iter().copied());
    let mut rng = Lcg(seed + module.name().len() as u64);
    (0..count)
        .map(|_| {
            let n_ant = rng.below(3) as usize;
            let antecedent = (0..n_ant)
                .map(|_| random_atom(&mut rng, module, &pool, 1))
                .collect();
            let out = outputs[rng.below(outputs.len() as u64) as usize];
            let bit = rng.below(u64::from(module.signal_width(out))) as u32;
            let offset = 1 + rng.below(2) as u32;
            WindowProperty {
                antecedent,
                consequent: BitAtom::new(out, bit, offset, rng.below(2) == 1),
            }
        })
        .collect()
}

/// Small explicit limits and SAT bounds so the 12-design sweep stays
/// fast (matches the batch_agree suite's rationale).
fn checker(module: &Module, backend: Backend) -> Checker {
    let limits = ExplicitLimits {
        max_state_bits: 10,
        max_input_bits: 8,
        max_states: 4096,
        ..ExplicitLimits::default()
    };
    Checker::new(module)
        .unwrap()
        .with_backend(backend)
        .with_limits(limits)
        .with_bmc_bound(4)
        .with_kind_depth(3)
}

/// Replays a counterexample from reset and confirms the violation.
fn cex_violates(module: &Module, prop: &WindowProperty, cex: &CexTrace) -> bool {
    let mut sim = Simulator::new(module).unwrap();
    if let Some(rst) = module.reset() {
        sim.set_input(rst, Bv::one_bit());
        sim.step();
        sim.set_input(rst, Bv::zero_bit());
    }
    let trace = sim.run_vectors(&cex.inputs, &mut NopObserver);
    let depth = prop.depth() as usize;
    if trace.len() < depth + 1 {
        return false;
    }
    let base = trace.len() - 1 - depth;
    let atom_holds = |a: &BitAtom| trace.bit(base + a.offset as usize, a.signal, a.bit) == a.value;
    prop.antecedent.iter().all(atom_holds) && !atom_holds(&prop.consequent)
}

#[test]
fn sharded_equals_batched_equals_sequential_on_all_catalog_designs() {
    for design in gm_designs::catalog() {
        let module = design.module();
        let props = properties_for(&module, 0x5EED_0000, 6);
        for backend in [
            Backend::Auto,
            Backend::Bmc { bound: 4 },
            Backend::KInduction { max_k: 3 },
        ] {
            // Sequential reference: a fresh checker deciding one
            // property per call, in order.
            let mut seq_checker = checker(&module, backend);
            let sequential: Vec<CheckResult> = props
                .iter()
                .map(|p| seq_checker.check(p).unwrap())
                .collect();
            // Single-session batch.
            let mut batch_checker = checker(&module, backend);
            let batched = batch_checker.check_batch(&props).unwrap();
            assert_eq!(
                sequential, batched,
                "batch != sequential on {} ({backend:?})",
                design.name
            );
            // Sharded batches, every shard count.
            for shards in SHARD_COUNTS {
                let mut sharded_checker = checker(&module, backend);
                let sharded = sharded_checker.check_batch_sharded(&props, shards).unwrap();
                assert_eq!(
                    batched, sharded,
                    "sharded({shards}) != batched on {} ({backend:?})",
                    design.name
                );
                // Identical proved sets and memo state, not just results.
                assert_eq!(sharded_checker.memo_len(), batch_checker.memo_len());
                assert_eq!(
                    sharded_checker.session_stats().engine_queries(),
                    batch_checker.session_stats().engine_queries(),
                    "shard({shards}) did different engine work on {}",
                    design.name
                );
            }
            // Violated results carry real, replayable traces.
            for (p, r) in props.iter().zip(&batched) {
                if let CheckResult::Violated(cex) = r {
                    assert!(
                        cex_violates(&module, p, cex),
                        "bogus canonical cex on {} ({backend:?})",
                        design.name
                    );
                }
            }
        }
    }
}

#[test]
fn racing_shards_agree_with_plain_auto_verdicts_on_all_catalog_designs() {
    for design in gm_designs::catalog() {
        let module = design.module();
        let props = properties_for(&module, 0x7ACE_0000, 4);
        let mut plain = checker(&module, Backend::Auto);
        let expected = plain.check_batch(&props).unwrap();
        let mut racing = checker(&module, Backend::Auto).with_racing(true);
        let got = racing.check_batch_sharded(&props, 2).unwrap();
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            match (e, g) {
                (CheckResult::Proved, CheckResult::Proved) => {}
                (CheckResult::Unknown { .. }, CheckResult::Unknown { .. }) => {}
                // Racing may prefer the SAT side's canonical trace where
                // plain Auto reports the explicit one; both must replay.
                (CheckResult::Violated(_), CheckResult::Violated(cex)) => {
                    assert!(
                        cex_violates(&module, &props[i], cex),
                        "bogus racing cex on {} prop {i}",
                        design.name
                    );
                }
                // Plain Auto consults the same explicit engine racing
                // does, so both modes are equally conclusive: any verdict
                // divergence is a bug.
                (e, g) => panic!(
                    "racing diverged on {} prop {i}: plain {e:?} vs racing {g:?}",
                    design.name
                ),
            }
        }
        // Racing twice yields byte-identical results.
        let mut again = checker(&module, Backend::Auto).with_racing(true);
        assert_eq!(got, again.check_batch_sharded(&props, 2).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary worklists (duplicates included) under arbitrary shard
    /// counts merge to the single-session batch results and memo state.
    #[test]
    fn arbitrary_partitions_merge_to_identical_results(
        seed in any::<u32>(),
        len in 1usize..14,
        shards in 1usize..9,
    ) {
        let module = gm_designs::arbiter2();
        // Duplicates on purpose: draw from a small pool of 5 base
        // properties so most worklists repeat entries.
        let pool = properties_for(&module, u64::from(seed), 5);
        let mut rng = Lcg(u64::from(seed) ^ 0xD15B_A7C4);
        let props: Vec<WindowProperty> = (0..len)
            .map(|_| pool[rng.below(pool.len() as u64) as usize].clone())
            .collect();
        let mut plain = checker(&module, Backend::Auto);
        let batched = plain.check_batch(&props).unwrap();
        let mut sharded_checker = checker(&module, Backend::Auto);
        let sharded = sharded_checker.check_batch_sharded(&props, shards).unwrap();
        prop_assert_eq!(&batched, &sharded);
        prop_assert_eq!(plain.memo_len(), sharded_checker.memo_len());
        prop_assert_eq!(
            plain.session_stats().memo_hits,
            sharded_checker.session_stats().memo_hits
        );
        // Re-dispatching the same worklist with a different shard count
        // on the *same* checker is fully memo-served and identical.
        let again = sharded_checker
            .check_batch_sharded(&props, (shards % 8) + 1)
            .unwrap();
        prop_assert_eq!(&batched, &again);
    }
}
