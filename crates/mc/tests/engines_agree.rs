//! Cross-engine agreement on randomized sequential designs.
//!
//! The explicit-state engine is exact; BMC is complete for refutation up
//! to its bound; k-induction is sound for proofs. On random small
//! designs and random window properties all three must tell a
//! consistent story, and every counterexample must replay to a real
//! violation on the behavioral simulator.

use gm_mc::{
    blast, bmc, explicit_check, k_induction, BitAtom, CheckResult, ExplicitLimits, ReachableStates,
    WindowProperty,
};
use gm_rtl::{elaborate, Bv, Expr, Module, ModuleBuilder, SignalId};
use gm_sim::{NopObserver, Simulator};
use proptest::prelude::*;

/// Builds a random 2-input / 2-register module from recipe bytes.
fn random_seq_module(recipe: &[u8]) -> Module {
    let mut b = ModuleBuilder::new("rand_seq");
    let _clk = b.clock("clk");
    let rst = b.reset("rst");
    let i0 = b.input("i0", 1);
    let i1 = b.input("i1", 1);
    // The declared init must match the reset-branch assignment below
    // (the model checker starts from init; replays pulse the reset).
    let init0 = recipe.first().is_some_and(|&x| x & 1 == 1);
    let q0 = b.output_reg("q0", 1, Bv::from_bool(init0));
    let q1 = b.output_reg("q1", 1, Bv::zero_bit());
    let sigs = [i0, i1, q0, q1];
    let leaf = |byte: u8| Expr::Signal(sigs[(byte % 4) as usize]);
    let expr_of = |bytes: &[u8]| -> Expr {
        let mut acc = leaf(bytes.first().copied().unwrap_or(0));
        for pair in bytes.chunks(2).skip(1) {
            let rhs = leaf(pair[0]);
            acc = match pair.get(1).copied().unwrap_or(0) % 4 {
                0 => acc.and(rhs),
                1 => acc.or(rhs),
                2 => acc.xor(rhs),
                _ => acc.not().or(rhs),
            };
        }
        acc
    };
    let half = recipe.len() / 2;
    let (ra, rb) = recipe.split_at(half);
    let next0 = expr_of(ra);
    let next1 = expr_of(rb);
    b.always_seq(|p| {
        p.if_else(
            Expr::Signal(rst),
            |t| {
                t.assign(q0, Expr::Const(Bv::from_bool(init0)));
                t.assign(q1, Expr::zero());
            },
            |e| {
                e.assign(q0, next0.clone());
                e.assign(q1, next1.clone());
            },
        );
    });
    b.finish()
}

/// Builds a random window property over the module's signals.
fn random_property(module: &Module, recipe: &[u8]) -> WindowProperty {
    let signals: Vec<SignalId> = vec![
        module.require("i0").unwrap(),
        module.require("i1").unwrap(),
        module.require("q0").unwrap(),
        module.require("q1").unwrap(),
    ];
    let mut antecedent = Vec::new();
    for chunk in recipe.chunks(3).take(3) {
        if chunk.len() == 3 {
            antecedent.push(BitAtom::new(
                signals[(chunk[0] % 4) as usize],
                0,
                u32::from(chunk[1] % 2),
                chunk[2] % 2 == 1,
            ));
        }
    }
    let last = recipe.last().copied().unwrap_or(0);
    WindowProperty {
        antecedent,
        consequent: BitAtom::new(
            signals[2 + (last % 2) as usize],
            0,
            1 + u32::from(last % 2),
            last % 3 == 0,
        ),
    }
}

/// Replays a counterexample from reset and confirms the violation.
fn cex_violates(module: &Module, prop: &WindowProperty, cex: &gm_mc::CexTrace) -> bool {
    let mut sim = Simulator::new(module).unwrap();
    if let Some(rst) = module.reset() {
        sim.set_input(rst, Bv::one_bit());
        sim.step();
        sim.set_input(rst, Bv::zero_bit());
    }
    let trace = sim.run_vectors(&cex.inputs, &mut NopObserver);
    let depth = prop.depth() as usize;
    if trace.len() < depth + 1 {
        return false;
    }
    // The violating window ends at the final cycle of the trace.
    let base = trace.len() - 1 - depth;
    let atom_holds = |a: &BitAtom| trace.bit(base + a.offset as usize, a.signal, a.bit) == a.value;
    prop.antecedent.iter().all(atom_holds) && !atom_holds(&prop.consequent)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_tell_a_consistent_story(recipe in prop::collection::vec(any::<u8>(), 4..20)) {
        let module = random_seq_module(&recipe);
        let elab = elaborate(&module).unwrap();
        let blasted = blast(&module, &elab).unwrap();
        let prop = random_property(&module, &recipe);
        let limits = ExplicitLimits::default();
        let reach = ReachableStates::explore(&blasted, &limits).unwrap();
        let exact = explicit_check(&module, &blasted, &reach, &prop, &limits).unwrap();

        // Generous BMC bound: reachable diameter + window depth.
        let bound = (reach.len() as u32) + prop.depth() + 2;
        let bmc_res = bmc(&module, &blasted, &prop, bound);
        let kind_res = k_induction(&module, &blasted, &prop, 6);

        match &exact {
            CheckResult::Proved => {
                prop_assert!(
                    matches!(bmc_res, CheckResult::Unknown { .. }),
                    "BMC found a violation of a true property"
                );
                prop_assert!(
                    !matches!(kind_res, CheckResult::Violated(_)),
                    "k-induction refuted a true property"
                );
            }
            CheckResult::Violated(cex) => {
                prop_assert!(cex_violates(&module, &prop, cex),
                    "explicit counterexample does not replay");
                match bmc_res {
                    CheckResult::Violated(bcex) => {
                        prop_assert!(cex_violates(&module, &prop, &bcex),
                            "BMC counterexample does not replay");
                    }
                    other => prop_assert!(false, "BMC missed a violation: {other:?}"),
                }
                prop_assert!(
                    !matches!(kind_res, CheckResult::Proved),
                    "k-induction proved a false property"
                );
            }
            CheckResult::Unknown { .. } => prop_assert!(false, "explicit cannot be unknown"),
        }
    }
}
