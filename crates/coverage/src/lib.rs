//! # gm-coverage — simulation coverage metrics
//!
//! Implements the six coverage metrics the paper reports (line, branch,
//! condition, expression, toggle, FSM) as [`gm_sim::SimObserver`]s, plus
//! a bundled [`CoverageSuite`] that measures all of them in one pass.
//!
//! Metric definitions (documented here because every commercial tool
//! differs slightly):
//!
//! * **line** — every behavioral statement executed at least once;
//! * **branch** — every `if` outcome (then *and* else) and every `case`
//!   arm (plus `default` unless labels are exhaustive) taken;
//! * **condition** — every boolean (width-1, non-constant) subexpression
//!   of an `if` predicate observed at both 0 and 1;
//! * **expression** — the same, over assignment right-hand sides;
//! * **toggle** — every bit of every signal (clock excluded) observed
//!   rising and falling across settled cycle snapshots;
//! * **FSM** — every declared state of every FSM register visited
//!   (declared states = the labels of `case` statements on the register).

#![warn(missing_docs)]

mod collectors;
mod points;
mod ratio;
mod uncovered;

pub use collectors::{
    BranchCoverage, ConditionCoverage, CoverageSuite, ExpressionCoverage, FsmCoverage,
    LineCoverage, ToggleCoverage,
};
pub use points::{
    boolean_nodes, branch_points, count_boolean_nodes, declared_fsm_states, observe_boolean_nodes,
};
pub use ratio::{CoverageReport, Ratio};
pub use uncovered::UncoveredIndex;
