//! Static enumeration of coverage points from a module.
//!
//! Collectors precompute their point universes here so that percentages
//! have well-defined denominators, and observers re-enumerate the same
//! points in the same deterministic order at runtime.

use gm_rtl::{Bv, Expr, Module, SignalId, Stmt, StmtId, StmtKind};
use gm_sim::BranchOutcome;

/// All possible branch outcomes of a module's control statements.
///
/// An `if` contributes `Then` and `Else` (the `else` outcome exists even
/// when the branch body is empty — not taking the `then` path is an
/// observable behavior). A `case` contributes one outcome per arm plus
/// `Default` unless its labels exhaust the subject space.
pub fn branch_points(module: &Module) -> Vec<(StmtId, BranchOutcome)> {
    let mut out = Vec::new();
    for p in module.processes() {
        p.for_each_stmt(&mut |s: &Stmt| match &s.kind {
            StmtKind::If { .. } => {
                out.push((s.id, BranchOutcome::Then));
                out.push((s.id, BranchOutcome::Else));
            }
            StmtKind::Case {
                subject,
                arms,
                default,
            } => {
                for (i, _) in arms.iter().enumerate() {
                    out.push((s.id, BranchOutcome::Arm(i as u32)));
                }
                let w = subject.width_in(&|sig| module.signal_width(sig));
                let labels: u64 = arms.iter().map(|a| a.labels.len() as u64).sum();
                let exhaustive = default.is_none() && w < 64 && labels >= (1u64 << w);
                if !exhaustive {
                    out.push((s.id, BranchOutcome::Default));
                }
            }
            StmtKind::Assign { .. } => {}
        });
    }
    out
}

/// Enumerates the boolean (width-1, non-constant) subexpressions of
/// `expr`, pre-order. These are the points of condition and expression
/// coverage; the same walk at observation time yields matching indices.
pub fn boolean_nodes<'e>(expr: &'e Expr, module: &Module, out: &mut Vec<&'e Expr>) {
    let w = expr.width_in(&|s: SignalId| module.signal_width(s));
    if w == 1 && !matches!(expr, Expr::Const(_)) {
        out.push(expr);
    }
    match expr {
        Expr::Const(_) | Expr::Signal(_) => {}
        Expr::Unary(_, a) => boolean_nodes(a, module, out),
        Expr::Binary(_, a, b) => {
            boolean_nodes(a, module, out);
            boolean_nodes(b, module, out);
        }
        Expr::Mux {
            cond,
            then_val,
            else_val,
        } => {
            boolean_nodes(cond, module, out);
            boolean_nodes(then_val, module, out);
            boolean_nodes(else_val, module, out);
        }
        Expr::Index { base, .. } | Expr::Slice { base, .. } => {
            boolean_nodes(base, module, out);
        }
        Expr::Concat(parts) => {
            for p in parts {
                boolean_nodes(p, module, out);
            }
        }
    }
}

/// Evaluates each boolean node of `expr` against `values`, in the same
/// order as [`boolean_nodes`]. Calls `hit(index, value)` per node.
pub fn observe_boolean_nodes(
    expr: &Expr,
    module: &Module,
    values: &[Bv],
    hit: &mut impl FnMut(usize, bool),
) {
    let mut nodes = Vec::new();
    boolean_nodes(expr, module, &mut nodes);
    for (i, node) in nodes.iter().enumerate() {
        let v = node.eval(&|s: SignalId| values[s.index()]);
        hit(i, v.is_nonzero());
    }
}

/// Counts the boolean nodes of the expressions in a given statement role
/// across the whole module; used for denominators.
pub fn count_boolean_nodes(module: &Module, want_conditions: bool) -> usize {
    let mut total = 0usize;
    for p in module.processes() {
        p.for_each_stmt(&mut |s: &Stmt| {
            let expr = match (&s.kind, want_conditions) {
                (StmtKind::If { cond, .. }, true) => Some(cond),
                (StmtKind::Assign { rhs, .. }, false) => Some(rhs),
                _ => None,
            };
            if let Some(e) = expr {
                let mut nodes = Vec::new();
                boolean_nodes(e, module, &mut nodes);
                total += nodes.len();
            }
        });
    }
    total
}

/// The declared FSM state values for a register: the union of the labels
/// of every `case` on that register. Falls back to the full value space
/// when no labels exist.
pub fn declared_fsm_states(module: &Module, reg: SignalId) -> Vec<Bv> {
    let mut states: Vec<Bv> = Vec::new();
    for p in module.processes() {
        p.for_each_stmt(&mut |s: &Stmt| {
            if let StmtKind::Case { subject, arms, .. } = &s.kind {
                if *subject == Expr::Signal(reg) {
                    for arm in arms {
                        for l in &arm.labels {
                            if !states.contains(l) {
                                states.push(*l);
                            }
                        }
                    }
                }
            }
        });
    }
    if states.is_empty() {
        let w = module.signal_width(reg);
        if w <= 16 {
            states = (0..(1u64 << w)).map(|v| Bv::new(v, w)).collect();
        }
    }
    states.sort();
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::parse_verilog;

    #[test]
    fn branch_points_if_and_case() {
        let m = parse_verilog(
            "module m(input clk, input [1:0] s, input c, output reg y);
               always @(posedge clk) begin
                 if (c) y <= 0; else y <= 1;
                 case (s)
                   2'b00: y <= 0;
                   2'b01, 2'b10: y <= 1;
                   default: y <= y;
                 endcase
               end
             endmodule",
        )
        .unwrap();
        let pts = branch_points(&m);
        // if: 2 outcomes; case: 2 arms + default.
        assert_eq!(pts.len(), 5);
    }

    #[test]
    fn exhaustive_case_has_no_default_point() {
        let m = parse_verilog(
            "module m(input clk, input s, output reg y);
               always @(posedge clk)
                 case (s)
                   1'b0: y <= 0;
                   1'b1: y <= 1;
                 endcase
             endmodule",
        )
        .unwrap();
        let pts = branch_points(&m);
        assert_eq!(pts.len(), 2);
        assert!(pts
            .iter()
            .all(|(_, o)| !matches!(o, BranchOutcome::Default)));
    }

    #[test]
    fn boolean_nodes_skip_constants_and_multibit() {
        let m = parse_verilog(
            "module m(input a, input b, input [3:0] x, output y);
               assign y = (a & b) | (x == 4'd3);
             endmodule",
        )
        .unwrap();
        // Nodes: whole RHS, (a&b), a, b, (x==3). The constants and the
        // 4-bit x are not boolean nodes.
        assert_eq!(count_boolean_nodes(&m, false), 5);
        assert_eq!(count_boolean_nodes(&m, true), 0);
    }

    #[test]
    fn fsm_states_from_case_labels() {
        let m = parse_verilog(
            "module m(input clk, input rst, output reg o);
               localparam A = 2'd0; localparam B = 2'd1; localparam C = 2'd2;
               reg [1:0] st;
               always @(posedge clk)
                 if (rst) begin st <= A; o <= 0; end
                 else begin
                   case (st)
                     A: begin st <= B; o <= 0; end
                     B: begin st <= C; o <= 0; end
                     C: begin st <= A; o <= 1; end
                     default: begin st <= A; o <= 0; end
                   endcase
                 end
             endmodule",
        )
        .unwrap();
        let st = m.require("st").unwrap();
        assert!(m.fsm_regs().contains(&st));
        let states = declared_fsm_states(&m, st);
        assert_eq!(states, vec![Bv::new(0, 2), Bv::new(1, 2), Bv::new(2, 2)]);
    }
}
