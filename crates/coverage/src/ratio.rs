//! Coverage ratios and report formatting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A covered/total pair for one coverage metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    /// Number of points hit at least once.
    pub covered: usize,
    /// Number of points instrumented.
    pub total: usize,
}

impl Ratio {
    /// Creates a ratio.
    pub fn new(covered: usize, total: usize) -> Self {
        Ratio { covered, total }
    }

    /// Coverage percentage; 100 when there are no points to cover.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.covered as f64 / self.total as f64
        }
    }

    /// Whether every point was hit.
    pub fn is_full(&self) -> bool {
        self.covered >= self.total
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}% ({}/{})",
            self.percent(),
            self.covered,
            self.total
        )
    }
}

/// A full coverage report across all instrumented metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Statement (line) coverage.
    pub line: Ratio,
    /// Branch coverage (if/else outcomes, case arms).
    pub branch: Ratio,
    /// Condition coverage (boolean subterms of branch predicates).
    pub condition: Ratio,
    /// Expression coverage (boolean subterms of assignment RHSes).
    pub expression: Ratio,
    /// Toggle coverage (per-bit rise and fall).
    pub toggle: Ratio,
    /// FSM state coverage, when the design declares FSM registers.
    pub fsm: Option<Ratio>,
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {} | branch {} | cond {} | expr {} | toggle {}",
            self.line, self.branch, self.condition, self.expression, self.toggle
        )?;
        if let Some(fsm) = &self.fsm {
            write!(f, " | fsm {fsm}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_math() {
        assert_eq!(Ratio::new(1, 4).percent(), 25.0);
        assert_eq!(Ratio::new(0, 0).percent(), 100.0);
        assert!(Ratio::new(3, 3).is_full());
        assert!(!Ratio::new(2, 3).is_full());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Ratio::new(1, 3)), "33.33% (1/3)");
        let r = CoverageReport {
            fsm: Some(Ratio::new(2, 4)),
            ..CoverageReport::default()
        };
        assert!(format!("{r}").contains("fsm 50.00%"));
    }
}
