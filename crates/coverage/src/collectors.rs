//! The coverage collectors.
//!
//! Each collector implements [`SimObserver`] and measures one metric; the
//! [`CoverageSuite`] bundles all of them behind a single observer, which
//! is what the experiment harness attaches to simulation runs.

use crate::points::{
    branch_points, count_boolean_nodes, declared_fsm_states, observe_boolean_nodes,
};
use crate::ratio::{CoverageReport, Ratio};
use gm_rtl::{Bv, Expr, Module, SignalId, StmtId};
use gm_sim::{
    BatchObserver, BranchOutcome, ExprRole, LaneSet, LaneSnapshot, ProbeHits, SimObserver,
};
use std::collections::{HashMap, HashSet};

/// A tiny deterministic multiplicative hasher for the per-cycle
/// coverage sets. The batch observers sit on the compiled executor's
/// hot path (an insert attempt per statement/point per cycle), where
/// SipHash rounds dominate; ids and small state values mix in a couple
/// of arithmetic ops instead. The seed is fixed, so runs stay
/// reproducible.
#[derive(Clone, Copy, Debug, Default)]
struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_f9ad_32db_e727);
    }
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;
type FxSet<T> = HashSet<T, FxBuild>;
type FxMap<K, V> = HashMap<K, V, FxBuild>;

/// Statement (line) coverage: every statement executed at least once.
#[derive(Debug)]
pub struct LineCoverage {
    executed: FxSet<StmtId>,
    /// Dense first-hit guard by statement index: the common case (the
    /// statement already executed) costs one indexed load per event
    /// instead of a set insert.
    hit: Vec<bool>,
    total: usize,
}

impl LineCoverage {
    /// Instruments `module`.
    pub fn new(module: &Module) -> Self {
        let total = module.stmt_count() as usize;
        LineCoverage {
            executed: FxSet::default(),
            hit: vec![false; total],
            total,
        }
    }

    /// The current covered/total ratio.
    pub fn ratio(&self) -> Ratio {
        Ratio::new(self.executed.len(), self.total)
    }

    /// Statement ids never executed.
    pub fn uncovered(&self) -> Vec<StmtId> {
        (0..self.total as u32)
            .map(StmtId::from_raw)
            .filter(|id| !self.executed.contains(id))
            .collect()
    }
}

impl LineCoverage {
    #[inline]
    fn mark(&mut self, stmt: StmtId) {
        if !self.hit[stmt.index()] {
            self.hit[stmt.index()] = true;
            self.executed.insert(stmt);
        }
    }
}

impl SimObserver for LineCoverage {
    fn on_stmt(&mut self, stmt: StmtId) {
        self.mark(stmt);
    }
}

impl BatchObserver for LineCoverage {
    fn on_stmt(&mut self, stmt: StmtId, lanes: &LaneSet<'_>) {
        if lanes.any() {
            self.mark(stmt);
        }
    }
}

/// Branch coverage: every `if` outcome and `case` arm taken.
#[derive(Debug)]
pub struct BranchCoverage {
    universe: Vec<(StmtId, BranchOutcome)>,
    hit: FxSet<(StmtId, BranchOutcome)>,
}

impl BranchCoverage {
    /// Instruments `module`.
    pub fn new(module: &Module) -> Self {
        BranchCoverage {
            universe: branch_points(module),
            hit: FxSet::default(),
        }
    }

    /// The current covered/total ratio.
    pub fn ratio(&self) -> Ratio {
        let covered = self
            .universe
            .iter()
            .filter(|pt| self.hit.contains(pt))
            .count();
        Ratio::new(covered, self.universe.len())
    }

    /// Branch points never taken.
    pub fn uncovered(&self) -> Vec<(StmtId, BranchOutcome)> {
        self.universe
            .iter()
            .filter(|pt| !self.hit.contains(pt))
            .copied()
            .collect()
    }
}

impl SimObserver for BranchCoverage {
    fn on_branch(&mut self, stmt: StmtId, outcome: BranchOutcome) {
        self.hit.insert((stmt, outcome));
    }
}

impl BatchObserver for BranchCoverage {
    fn on_branch(&mut self, stmt: StmtId, outcome: BranchOutcome, lanes: &LaneSet<'_>) {
        if lanes.any() {
            self.hit.insert((stmt, outcome));
        }
    }
}

/// Both-polarity tracking for one boolean node.
#[derive(Clone, Copy, Debug, Default)]
struct Polarity {
    seen_false: bool,
    seen_true: bool,
}

impl Polarity {
    fn covered(&self) -> bool {
        self.seen_false && self.seen_true
    }
}

/// Shared machinery for condition and expression coverage: every boolean
/// (width-1, non-constant) subexpression of the watched expressions must
/// be observed at both 0 and 1.
#[derive(Debug)]
struct BoolNodeCoverage {
    seen: FxMap<(StmtId, usize), Polarity>,
    total: usize,
}

impl BoolNodeCoverage {
    fn new(module: &Module, watch_conditions: bool) -> Self {
        BoolNodeCoverage {
            seen: FxMap::default(),
            total: count_boolean_nodes(module, watch_conditions),
        }
    }

    fn ratio(&self) -> Ratio {
        let covered = self.seen.values().filter(|p| p.covered()).count();
        Ratio::new(covered, self.total)
    }

    fn observe(&mut self, module: &Module, stmt: StmtId, expr: &Expr, values: &[Bv]) {
        observe_boolean_nodes(expr, module, values, &mut |i, v| {
            let p = self.seen.entry((stmt, i)).or_default();
            if v {
                p.seen_true = true;
            } else {
                p.seen_false = true;
            }
        });
    }

    /// Lane-parallel observation of one boolean node: `values` carries
    /// the node's value per lane, `lanes` the lanes that executed the
    /// statement. The node index is the same pre-order enumeration
    /// [`crate::points::boolean_nodes`] produces, so the polarity sets
    /// end up identical to the interpreter path's.
    fn observe_lanes(&mut self, stmt: StmtId, node: u32, values: u64, lanes: u64) {
        if lanes == 0 {
            return;
        }
        let p = self.seen.entry((stmt, node as usize)).or_default();
        if values & lanes != 0 {
            p.seen_true = true;
        }
        if !values & lanes != 0 {
            p.seen_false = true;
        }
    }

    /// Applies one drained fused-probe hit: the node was seen at the
    /// given polarities in some active lane. Polarity is monotone, so
    /// applying a cumulative drain repeatedly is idempotent.
    fn apply_hit(&mut self, stmt: StmtId, node: u32, any_true: bool, any_false: bool) {
        let p = self.seen.entry((stmt, node as usize)).or_default();
        p.seen_true |= any_true;
        p.seen_false |= any_false;
    }
}

/// Condition coverage over `if` predicates.
///
/// Needs the module at observation time, so it borrows it for its
/// lifetime.
#[derive(Debug)]
pub struct ConditionCoverage<'m> {
    module: &'m Module,
    inner: BoolNodeCoverage,
}

impl<'m> ConditionCoverage<'m> {
    /// Instruments `module`.
    pub fn new(module: &'m Module) -> Self {
        ConditionCoverage {
            module,
            inner: BoolNodeCoverage::new(module, true),
        }
    }

    /// The current covered/total ratio.
    pub fn ratio(&self) -> Ratio {
        self.inner.ratio()
    }
}

impl SimObserver for ConditionCoverage<'_> {
    fn on_expr(&mut self, stmt: StmtId, role: ExprRole, expr: &Expr, values: &[Bv]) {
        if role == ExprRole::Condition {
            self.inner.observe(self.module, stmt, expr, values);
        }
    }
}

impl BatchObserver for ConditionCoverage<'_> {
    fn on_bool_node(&mut self, stmt: StmtId, role: ExprRole, node: u32, values: u64, lanes: u64) {
        if role == ExprRole::Condition {
            self.inner.observe_lanes(stmt, node, values, lanes);
        }
    }
    fn drain_probes(&mut self, hits: &ProbeHits<'_>) {
        hits.for_each(|stmt, role, node, t, f| {
            if role == ExprRole::Condition {
                self.inner.apply_hit(stmt, node, t, f);
            }
        });
    }
}

/// Expression coverage over assignment right-hand sides.
///
/// This is the metric the paper tracks per refinement iteration
/// (Figures 12 and 14): boolean subterms of the datapath expressions
/// observed at both polarities.
#[derive(Debug)]
pub struct ExpressionCoverage<'m> {
    module: &'m Module,
    inner: BoolNodeCoverage,
}

impl<'m> ExpressionCoverage<'m> {
    /// Instruments `module`.
    pub fn new(module: &'m Module) -> Self {
        ExpressionCoverage {
            module,
            inner: BoolNodeCoverage::new(module, false),
        }
    }

    /// The current covered/total ratio.
    pub fn ratio(&self) -> Ratio {
        self.inner.ratio()
    }
}

impl SimObserver for ExpressionCoverage<'_> {
    fn on_expr(&mut self, stmt: StmtId, role: ExprRole, expr: &Expr, values: &[Bv]) {
        if role == ExprRole::AssignRhs {
            self.inner.observe(self.module, stmt, expr, values);
        }
    }
}

impl BatchObserver for ExpressionCoverage<'_> {
    fn on_bool_node(&mut self, stmt: StmtId, role: ExprRole, node: u32, values: u64, lanes: u64) {
        if role == ExprRole::AssignRhs {
            self.inner.observe_lanes(stmt, node, values, lanes);
        }
    }
    fn drain_probes(&mut self, hits: &ProbeHits<'_>) {
        hits.for_each(|stmt, role, node, t, f| {
            if role == ExprRole::AssignRhs {
                self.inner.apply_hit(stmt, node, t, f);
            }
        });
    }
}

/// Toggle coverage: each bit of each signal (clock excluded) must rise
/// and fall across settled cycle snapshots.
#[derive(Debug)]
pub struct ToggleCoverage {
    watched: Vec<(SignalId, u32)>,
    rises: FxSet<(SignalId, u32)>,
    falls: FxSet<(SignalId, u32)>,
    prev: Option<Vec<Bv>>,
    /// Previous-cycle lane words per watched bit (batch path only).
    prev_words: Option<Vec<u64>>,
    /// Reused current-cycle scratch (batch path only).
    cur_words: Vec<u64>,
    /// Dense first-hit guards by watched index (batch path only): a
    /// settled bit costs one compare per cycle, not a set insert.
    rise_hit: Vec<bool>,
    fall_hit: Vec<bool>,
}

impl ToggleCoverage {
    /// Instruments `module`.
    pub fn new(module: &Module) -> Self {
        let watched: Vec<(SignalId, u32)> = module
            .signal_ids()
            .filter(|s| Some(*s) != module.clock())
            .flat_map(|s| (0..module.signal_width(s)).map(move |b| (s, b)))
            .collect();
        let points = watched.len();
        ToggleCoverage {
            watched,
            rises: FxSet::default(),
            falls: FxSet::default(),
            prev: None,
            prev_words: None,
            cur_words: Vec::new(),
            rise_hit: vec![false; points],
            fall_hit: vec![false; points],
        }
    }

    /// The current covered/total ratio (each bit counts a rise point and
    /// a fall point).
    pub fn ratio(&self) -> Ratio {
        let covered = self
            .watched
            .iter()
            .map(|pt| usize::from(self.rises.contains(pt)) + usize::from(self.falls.contains(pt)))
            .sum();
        Ratio::new(covered, self.watched.len() * 2)
    }

    /// The uncovered toggle points, in watched (declaration) order:
    /// `(signal, bit, rising)` where `rising` distinguishes the missing
    /// edge direction. Drives the refinement loop's uncovered-point
    /// scoring.
    pub fn uncovered(&self) -> Vec<(SignalId, u32, bool)> {
        let mut out = Vec::new();
        for &(sig, bit) in &self.watched {
            if !self.rises.contains(&(sig, bit)) {
                out.push((sig, bit, true));
            }
            if !self.falls.contains(&(sig, bit)) {
                out.push((sig, bit, false));
            }
        }
        out
    }
}

impl SimObserver for ToggleCoverage {
    fn on_cycle_end(&mut self, cycle: u64, values: &[Bv]) {
        if cycle == 0 {
            self.prev = None;
        }
        if let Some(prev) = &self.prev {
            for &(sig, bit) in &self.watched {
                let old = prev[sig.index()].bit(bit);
                let new = values[sig.index()].bit(bit);
                if !old && new {
                    self.rises.insert((sig, bit));
                } else if old && !new {
                    self.falls.insert((sig, bit));
                }
            }
        }
        self.prev = Some(values.to_vec());
    }
}

impl BatchObserver for ToggleCoverage {
    fn on_cycle_end(&mut self, cycle: u64, lanes: &LaneSet<'_>, snap: &LaneSnapshot<'_>) {
        if cycle == 0 {
            self.prev_words = None;
        }
        // One word per block word per watched bit, watched-major, into
        // the reused scratch (no per-cycle allocation).
        let block = snap.block();
        self.cur_words.clear();
        for &(sig, bit) in &self.watched {
            for j in 0..block {
                self.cur_words.push(snap.bit_word(sig, bit, j));
            }
        }
        if let Some(prev) = &self.prev_words {
            for (i, &pt) in self.watched.iter().enumerate() {
                if self.rise_hit[i] && self.fall_hit[i] {
                    continue;
                }
                for j in 0..block {
                    let idx = i * block + j;
                    let (p, c) = (prev[idx], self.cur_words[idx]);
                    if p == c {
                        continue;
                    }
                    let l = lanes.word(j);
                    if !self.rise_hit[i] && !p & c & l != 0 {
                        self.rise_hit[i] = true;
                        self.rises.insert(pt);
                    }
                    if !self.fall_hit[i] && p & !c & l != 0 {
                        self.fall_hit[i] = true;
                        self.falls.insert(pt);
                    }
                }
            }
        }
        // Current words become the previous cycle's, reusing both
        // buffers.
        match &mut self.prev_words {
            Some(prev) => std::mem::swap(prev, &mut self.cur_words),
            None => self.prev_words = Some(std::mem::take(&mut self.cur_words)),
        }
    }
}

/// FSM coverage: fraction of declared states visited, per FSM register.
#[derive(Debug)]
pub struct FsmCoverage {
    regs: Vec<(SignalId, Vec<Bv>)>,
    visited: FxMap<SignalId, FxSet<Bv>>,
    transitions: FxMap<SignalId, FxSet<(Bv, Bv)>>,
    prev: Option<Vec<Bv>>,
    /// Previous-cycle state bits per register, bit-major
    /// (`bit * block + j`), reused across cycles (batch path).
    prev_bits: Vec<Vec<u64>>,
    /// Whether `prev_bits` holds the previous cycle of this run.
    have_prev: bool,
    /// The previous cycle's active-lane words (batch path).
    prev_active: Vec<u64>,
    /// Reused current-cycle scratch (batch path).
    cur_bits: Vec<u64>,
}

impl FsmCoverage {
    /// Instruments the FSM registers declared by `module`.
    pub fn new(module: &Module) -> Self {
        let regs: Vec<(SignalId, Vec<Bv>)> = module
            .fsm_regs()
            .iter()
            .map(|&r| (r, declared_fsm_states(module, r)))
            .collect();
        let count = regs.len();
        FsmCoverage {
            regs,
            visited: FxMap::default(),
            transitions: FxMap::default(),
            prev: None,
            prev_bits: vec![Vec::new(); count],
            have_prev: false,
            prev_active: Vec::new(),
            cur_bits: Vec::new(),
        }
    }

    /// Whether the module declares any FSM registers.
    pub fn has_fsms(&self) -> bool {
        !self.regs.is_empty()
    }

    /// Visited-states / declared-states across all FSM registers.
    pub fn ratio(&self) -> Ratio {
        let mut covered = 0;
        let mut total = 0;
        for (reg, states) in &self.regs {
            total += states.len();
            if let Some(v) = self.visited.get(reg) {
                covered += states.iter().filter(|s| v.contains(s)).count();
            }
        }
        Ratio::new(covered, total)
    }

    /// The number of distinct state transitions observed on `reg`.
    pub fn transitions_observed(&self, reg: SignalId) -> usize {
        self.transitions.get(&reg).map_or(0, |t| t.len())
    }

    /// The declared-but-unvisited states, in declaration order:
    /// `(register, state)` pairs. Drives the refinement loop's
    /// uncovered-point scoring.
    pub fn unvisited(&self) -> Vec<(SignalId, Bv)> {
        let mut out = Vec::new();
        for (reg, states) in &self.regs {
            let visited = self.visited.get(reg);
            for s in states {
                if visited.is_none_or(|v| !v.contains(s)) {
                    out.push((*reg, *s));
                }
            }
        }
        out
    }
}

impl SimObserver for FsmCoverage {
    fn on_cycle_end(&mut self, cycle: u64, values: &[Bv]) {
        if cycle == 0 {
            self.prev = None;
        }
        for (reg, _) in &self.regs {
            let cur = values[reg.index()];
            self.visited.entry(*reg).or_default().insert(cur);
            if let Some(prev) = &self.prev {
                let old = prev[reg.index()];
                if old != cur {
                    self.transitions.entry(*reg).or_default().insert((old, cur));
                }
            }
        }
        self.prev = Some(values.to_vec());
    }
}

impl BatchObserver for FsmCoverage {
    fn on_cycle_end(&mut self, cycle: u64, lanes: &LaneSet<'_>, snap: &LaneSnapshot<'_>) {
        if cycle == 0 {
            self.have_prev = false;
        }
        if self.regs.is_empty() {
            return;
        }
        // A lane's state only needs recording when it *changes* (an
        // unchanged active lane recorded the same value last cycle —
        // lane activity is monotone within a run) or when the lane is
        // newly observed (first cycle, or newly active). Change shows
        // up as a word-level XOR across the state's bit slices, so the
        // common all-lanes-idle cycle costs a few word ops per
        // register instead of a per-lane value gather + set insert.
        let block = snap.block();
        let FsmCoverage {
            regs,
            visited,
            transitions,
            prev_bits,
            have_prev,
            prev_active,
            cur_bits,
            ..
        } = self;
        for (ri, (reg, _)) in regs.iter().enumerate() {
            let w = snap.width(*reg) as usize;
            cur_bits.clear();
            for i in 0..w {
                for j in 0..block {
                    cur_bits.push(snap.bit_word(*reg, i as u32, j));
                }
            }
            let prev = &prev_bits[ri];
            for j in 0..block {
                let active = lanes.word(j);
                if active == 0 {
                    continue;
                }
                // Lanes to record, and the subset with a valid
                // previous value (transition candidates).
                let (mut record, seen_before) = if *have_prev {
                    let mut changed = 0u64;
                    for i in 0..w {
                        changed |= prev[i * block + j] ^ cur_bits[i * block + j];
                    }
                    let newly = active & !prev_active.get(j).copied().unwrap_or(0);
                    ((changed & active) | newly, active & !newly)
                } else {
                    (active, 0)
                };
                while record != 0 {
                    let k = record.trailing_zeros();
                    record &= record - 1;
                    let mut v = 0u64;
                    for i in 0..w {
                        v |= ((cur_bits[i * block + j] >> k) & 1) << i;
                    }
                    let v = Bv::new(v, w as u32);
                    visited.entry(*reg).or_default().insert(v);
                    if seen_before >> k & 1 != 0 {
                        let mut o = 0u64;
                        for i in 0..w {
                            o |= ((prev[i * block + j] >> k) & 1) << i;
                        }
                        let o = Bv::new(o, w as u32);
                        if o != v {
                            transitions.entry(*reg).or_default().insert((o, v));
                        }
                    }
                }
            }
            // Current bits become the previous cycle's, reusing both
            // buffers.
            std::mem::swap(&mut prev_bits[ri], cur_bits);
        }
        prev_active.clear();
        prev_active.extend((0..block).map(|j| lanes.word(j)));
        self.have_prev = true;
    }
}

/// All collectors bundled behind one observer.
///
/// # Examples
///
/// ```
/// use gm_coverage::CoverageSuite;
/// use gm_sim::{Simulator, SimObserver};
/// use gm_rtl::Bv;
///
/// let m = gm_rtl::parse_verilog(
///     "module m(input a, input b, output y); assign y = a & b; endmodule")?;
/// let mut cov = CoverageSuite::new(&m);
/// let mut sim = Simulator::new(&m)?;
/// let (a, b) = (m.require("a")?, m.require("b")?);
/// for (va, vb) in [(0, 0), (1, 1)] {
///     sim.set_inputs(&[(a, Bv::new(va, 1)), (b, Bv::new(vb, 1))]);
///     sim.step_observed(&mut cov);
/// }
/// let report = cov.report();
/// assert!(report.line.is_full());
/// # Ok::<(), gm_rtl::RtlError>(())
/// ```
#[derive(Debug)]
pub struct CoverageSuite<'m> {
    line: LineCoverage,
    branch: BranchCoverage,
    condition: ConditionCoverage<'m>,
    expression: ExpressionCoverage<'m>,
    toggle: ToggleCoverage,
    fsm: FsmCoverage,
}

impl<'m> CoverageSuite<'m> {
    /// Instruments every metric on `module`.
    pub fn new(module: &'m Module) -> Self {
        CoverageSuite {
            line: LineCoverage::new(module),
            branch: BranchCoverage::new(module),
            condition: ConditionCoverage::new(module),
            expression: ExpressionCoverage::new(module),
            toggle: ToggleCoverage::new(module),
            fsm: FsmCoverage::new(module),
        }
    }

    /// Produces the current report.
    pub fn report(&self) -> CoverageReport {
        CoverageReport {
            line: self.line.ratio(),
            branch: self.branch.ratio(),
            condition: self.condition.ratio(),
            expression: self.expression.ratio(),
            toggle: self.toggle.ratio(),
            fsm: if self.fsm.has_fsms() {
                Some(self.fsm.ratio())
            } else {
                None
            },
        }
    }

    /// The line collector (for uncovered-point introspection).
    pub fn line(&self) -> &LineCoverage {
        &self.line
    }

    /// The branch collector.
    pub fn branch(&self) -> &BranchCoverage {
        &self.branch
    }

    /// The FSM collector.
    pub fn fsm(&self) -> &FsmCoverage {
        &self.fsm
    }

    /// The toggle collector.
    pub fn toggle(&self) -> &ToggleCoverage {
        &self.toggle
    }
}

impl SimObserver for CoverageSuite<'_> {
    fn on_stmt(&mut self, stmt: StmtId) {
        SimObserver::on_stmt(&mut self.line, stmt);
    }
    fn on_branch(&mut self, stmt: StmtId, outcome: BranchOutcome) {
        SimObserver::on_branch(&mut self.branch, stmt, outcome);
    }
    fn on_expr(&mut self, stmt: StmtId, role: ExprRole, expr: &Expr, values: &[Bv]) {
        self.condition.on_expr(stmt, role, expr, values);
        self.expression.on_expr(stmt, role, expr, values);
    }
    fn on_cycle_end(&mut self, cycle: u64, values: &[Bv]) {
        SimObserver::on_cycle_end(&mut self.toggle, cycle, values);
        SimObserver::on_cycle_end(&mut self.fsm, cycle, values);
    }
}

/// The lane-parallel face of the suite: attach it to the compiled
/// backend's executors and the resulting ratios and uncovered sets are
/// identical to an interpreter run over the same stimulus.
impl BatchObserver for CoverageSuite<'_> {
    fn on_stmt(&mut self, stmt: StmtId, lanes: &LaneSet<'_>) {
        BatchObserver::on_stmt(&mut self.line, stmt, lanes);
    }
    fn on_branch(&mut self, stmt: StmtId, outcome: BranchOutcome, lanes: &LaneSet<'_>) {
        BatchObserver::on_branch(&mut self.branch, stmt, outcome, lanes);
    }
    fn on_bool_node(&mut self, stmt: StmtId, role: ExprRole, node: u32, values: u64, lanes: u64) {
        self.condition.on_bool_node(stmt, role, node, values, lanes);
        self.expression
            .on_bool_node(stmt, role, node, values, lanes);
    }
    fn drain_probes(&mut self, hits: &ProbeHits<'_>) {
        self.condition.drain_probes(hits);
        self.expression.drain_probes(hits);
    }
    fn on_cycle_end(&mut self, cycle: u64, lanes: &LaneSet<'_>, snap: &LaneSnapshot<'_>) {
        BatchObserver::on_cycle_end(&mut self.toggle, cycle, lanes, snap);
        BatchObserver::on_cycle_end(&mut self.fsm, cycle, lanes, snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::parse_verilog;
    use gm_sim::Simulator;

    const MUX: &str = "
    module mux(input s, input a, input b, output y);
      assign y = s ? a : b;
    endmodule";

    #[test]
    fn expression_coverage_needs_both_polarities() {
        let m = parse_verilog(MUX).unwrap();
        let mut cov = ExpressionCoverage::new(&m);
        let mut sim = Simulator::new(&m).unwrap();
        let s = m.require("s").unwrap();
        // Nodes: y-rhs (mux), s, a, b. Drive only s=0 with a=b=0: every node
        // stuck at 0.
        sim.set_input(s, Bv::zero_bit());
        sim.step_observed(&mut cov);
        assert_eq!(cov.ratio().covered, 0);
        // Toggle everything.
        let a = m.require("a").unwrap();
        let b = m.require("b").unwrap();
        sim.set_inputs(&[(s, Bv::one_bit()), (a, Bv::one_bit()), (b, Bv::one_bit())]);
        sim.step_observed(&mut cov);
        assert!(cov.ratio().is_full(), "{:?}", cov.ratio());
    }

    #[test]
    fn branch_and_line_coverage_track_paths() {
        let m = parse_verilog(
            "module m(input clk, input c, output reg y);
               always @(posedge clk)
                 if (c) y <= 1;
                 else y <= 0;
             endmodule",
        )
        .unwrap();
        let mut line = LineCoverage::new(&m);
        let mut branch = BranchCoverage::new(&m);
        let mut sim = Simulator::new(&m).unwrap();
        let c = m.require("c").unwrap();
        sim.set_input(c, Bv::one_bit());
        let mut multi = gm_sim::MultiObserver::new();
        multi.push(&mut line);
        multi.push(&mut branch);
        sim.step_observed(&mut multi);
        drop(multi);
        assert_eq!(branch.ratio(), Ratio::new(1, 2));
        assert!(!line.ratio().is_full(), "else assign not yet run");
        assert_eq!(line.uncovered().len(), 1);

        let mut multi = gm_sim::MultiObserver::new();
        multi.push(&mut line);
        multi.push(&mut branch);
        sim.set_input(c, Bv::zero_bit());
        sim.step_observed(&mut multi);
        drop(multi);
        assert!(branch.ratio().is_full());
        assert!(line.ratio().is_full());
    }

    #[test]
    fn toggle_coverage_counts_rises_and_falls() {
        let m = parse_verilog(MUX).unwrap();
        let mut cov = ToggleCoverage::new(&m);
        let mut sim = Simulator::new(&m).unwrap();
        let s = m.require("s").unwrap();
        let a = m.require("a").unwrap();
        // Cycle 0: everything 0. Cycle 1: s,a rise (and y rises: s?a).
        sim.step_observed(&mut cov);
        sim.set_inputs(&[(s, Bv::one_bit()), (a, Bv::one_bit())]);
        sim.step_observed(&mut cov);
        let r1 = cov.ratio();
        assert_eq!(r1.covered, 3, "three rises: s, a, y");
        // Cycle 2: everything falls.
        sim.set_inputs(&[(s, Bv::zero_bit()), (a, Bv::zero_bit())]);
        sim.step_observed(&mut cov);
        let r2 = cov.ratio();
        assert_eq!(r2.covered, 6);
        // b never toggled: 8 points total (4 signals x 2), 6 covered.
        assert_eq!(r2.total, 8);
    }

    #[test]
    fn fsm_coverage_visits_states() {
        let m = parse_verilog(
            "module m(input clk, input rst, output reg done);
               localparam A = 2'd0; localparam B = 2'd1; localparam C = 2'd2;
               reg [1:0] st;
               always @(posedge clk)
                 if (rst) begin st <= A; done <= 0; end
                 else case (st)
                   A: begin st <= B; done <= 0; end
                   B: begin st <= C; done <= 0; end
                   C: begin st <= A; done <= 1; end
                   default: begin st <= A; done <= 0; end
                 endcase
             endmodule",
        )
        .unwrap();
        let mut cov = FsmCoverage::new(&m);
        assert!(cov.has_fsms());
        let mut sim = Simulator::new(&m).unwrap();
        let rst = m.require("rst").unwrap();
        sim.set_input(rst, Bv::one_bit());
        sim.step_observed(&mut cov);
        sim.set_input(rst, Bv::zero_bit());
        sim.step_observed(&mut cov); // st = A visible
        assert_eq!(cov.ratio(), Ratio::new(1, 3));
        sim.step_observed(&mut cov); // B
        sim.step_observed(&mut cov); // C
        assert!(cov.ratio().is_full());
        let st = m.require("st").unwrap();
        assert!(cov.transitions_observed(st) >= 2);
    }

    #[test]
    fn suite_reports_all_metrics() {
        let m = parse_verilog(MUX).unwrap();
        let mut cov = CoverageSuite::new(&m);
        let mut sim = Simulator::new(&m).unwrap();
        sim.step_observed(&mut cov);
        let r = cov.report();
        assert!(r.line.is_full(), "single assign always runs");
        assert_eq!(r.fsm, None, "no FSM registers declared");
        assert!(r.toggle.covered < r.toggle.total);
    }
}
