//! The coverage collectors.
//!
//! Each collector implements [`SimObserver`] and measures one metric; the
//! [`CoverageSuite`] bundles all of them behind a single observer, which
//! is what the experiment harness attaches to simulation runs.

use crate::points::{
    branch_points, count_boolean_nodes, declared_fsm_states, observe_boolean_nodes,
};
use crate::ratio::{CoverageReport, Ratio};
use gm_rtl::{Bv, Expr, Module, SignalId, StmtId};
use gm_sim::{BatchObserver, BranchOutcome, ExprRole, LaneSnapshot, SimObserver};
use std::collections::{HashMap, HashSet};

/// Statement (line) coverage: every statement executed at least once.
#[derive(Debug)]
pub struct LineCoverage {
    executed: HashSet<StmtId>,
    total: usize,
}

impl LineCoverage {
    /// Instruments `module`.
    pub fn new(module: &Module) -> Self {
        LineCoverage {
            executed: HashSet::new(),
            total: module.stmt_count() as usize,
        }
    }

    /// The current covered/total ratio.
    pub fn ratio(&self) -> Ratio {
        Ratio::new(self.executed.len(), self.total)
    }

    /// Statement ids never executed.
    pub fn uncovered(&self) -> Vec<StmtId> {
        (0..self.total as u32)
            .map(StmtId::from_raw)
            .filter(|id| !self.executed.contains(id))
            .collect()
    }
}

impl SimObserver for LineCoverage {
    fn on_stmt(&mut self, stmt: StmtId) {
        self.executed.insert(stmt);
    }
}

impl BatchObserver for LineCoverage {
    fn on_stmt(&mut self, stmt: StmtId, lanes: u64) {
        if lanes != 0 {
            self.executed.insert(stmt);
        }
    }
}

/// Branch coverage: every `if` outcome and `case` arm taken.
#[derive(Debug)]
pub struct BranchCoverage {
    universe: Vec<(StmtId, BranchOutcome)>,
    hit: HashSet<(StmtId, BranchOutcome)>,
}

impl BranchCoverage {
    /// Instruments `module`.
    pub fn new(module: &Module) -> Self {
        BranchCoverage {
            universe: branch_points(module),
            hit: HashSet::new(),
        }
    }

    /// The current covered/total ratio.
    pub fn ratio(&self) -> Ratio {
        let covered = self
            .universe
            .iter()
            .filter(|pt| self.hit.contains(pt))
            .count();
        Ratio::new(covered, self.universe.len())
    }

    /// Branch points never taken.
    pub fn uncovered(&self) -> Vec<(StmtId, BranchOutcome)> {
        self.universe
            .iter()
            .filter(|pt| !self.hit.contains(pt))
            .copied()
            .collect()
    }
}

impl SimObserver for BranchCoverage {
    fn on_branch(&mut self, stmt: StmtId, outcome: BranchOutcome) {
        self.hit.insert((stmt, outcome));
    }
}

impl BatchObserver for BranchCoverage {
    fn on_branch(&mut self, stmt: StmtId, outcome: BranchOutcome, lanes: u64) {
        if lanes != 0 {
            self.hit.insert((stmt, outcome));
        }
    }
}

/// Both-polarity tracking for one boolean node.
#[derive(Clone, Copy, Debug, Default)]
struct Polarity {
    seen_false: bool,
    seen_true: bool,
}

impl Polarity {
    fn covered(&self) -> bool {
        self.seen_false && self.seen_true
    }
}

/// Shared machinery for condition and expression coverage: every boolean
/// (width-1, non-constant) subexpression of the watched expressions must
/// be observed at both 0 and 1.
#[derive(Debug)]
struct BoolNodeCoverage {
    seen: HashMap<(StmtId, usize), Polarity>,
    total: usize,
}

impl BoolNodeCoverage {
    fn new(module: &Module, watch_conditions: bool) -> Self {
        BoolNodeCoverage {
            seen: HashMap::new(),
            total: count_boolean_nodes(module, watch_conditions),
        }
    }

    fn ratio(&self) -> Ratio {
        let covered = self.seen.values().filter(|p| p.covered()).count();
        Ratio::new(covered, self.total)
    }

    fn observe(&mut self, module: &Module, stmt: StmtId, expr: &Expr, values: &[Bv]) {
        observe_boolean_nodes(expr, module, values, &mut |i, v| {
            let p = self.seen.entry((stmt, i)).or_default();
            if v {
                p.seen_true = true;
            } else {
                p.seen_false = true;
            }
        });
    }

    /// Lane-parallel observation of one boolean node: `values` carries
    /// the node's value per lane, `lanes` the lanes that executed the
    /// statement. The node index is the same pre-order enumeration
    /// [`crate::points::boolean_nodes`] produces, so the polarity sets
    /// end up identical to the interpreter path's.
    fn observe_lanes(&mut self, stmt: StmtId, node: u32, values: u64, lanes: u64) {
        if lanes == 0 {
            return;
        }
        let p = self.seen.entry((stmt, node as usize)).or_default();
        if values & lanes != 0 {
            p.seen_true = true;
        }
        if !values & lanes != 0 {
            p.seen_false = true;
        }
    }
}

/// Condition coverage over `if` predicates.
///
/// Needs the module at observation time, so it borrows it for its
/// lifetime.
#[derive(Debug)]
pub struct ConditionCoverage<'m> {
    module: &'m Module,
    inner: BoolNodeCoverage,
}

impl<'m> ConditionCoverage<'m> {
    /// Instruments `module`.
    pub fn new(module: &'m Module) -> Self {
        ConditionCoverage {
            module,
            inner: BoolNodeCoverage::new(module, true),
        }
    }

    /// The current covered/total ratio.
    pub fn ratio(&self) -> Ratio {
        self.inner.ratio()
    }
}

impl SimObserver for ConditionCoverage<'_> {
    fn on_expr(&mut self, stmt: StmtId, role: ExprRole, expr: &Expr, values: &[Bv]) {
        if role == ExprRole::Condition {
            self.inner.observe(self.module, stmt, expr, values);
        }
    }
}

impl BatchObserver for ConditionCoverage<'_> {
    fn on_bool_node(&mut self, stmt: StmtId, role: ExprRole, node: u32, values: u64, lanes: u64) {
        if role == ExprRole::Condition {
            self.inner.observe_lanes(stmt, node, values, lanes);
        }
    }
}

/// Expression coverage over assignment right-hand sides.
///
/// This is the metric the paper tracks per refinement iteration
/// (Figures 12 and 14): boolean subterms of the datapath expressions
/// observed at both polarities.
#[derive(Debug)]
pub struct ExpressionCoverage<'m> {
    module: &'m Module,
    inner: BoolNodeCoverage,
}

impl<'m> ExpressionCoverage<'m> {
    /// Instruments `module`.
    pub fn new(module: &'m Module) -> Self {
        ExpressionCoverage {
            module,
            inner: BoolNodeCoverage::new(module, false),
        }
    }

    /// The current covered/total ratio.
    pub fn ratio(&self) -> Ratio {
        self.inner.ratio()
    }
}

impl SimObserver for ExpressionCoverage<'_> {
    fn on_expr(&mut self, stmt: StmtId, role: ExprRole, expr: &Expr, values: &[Bv]) {
        if role == ExprRole::AssignRhs {
            self.inner.observe(self.module, stmt, expr, values);
        }
    }
}

impl BatchObserver for ExpressionCoverage<'_> {
    fn on_bool_node(&mut self, stmt: StmtId, role: ExprRole, node: u32, values: u64, lanes: u64) {
        if role == ExprRole::AssignRhs {
            self.inner.observe_lanes(stmt, node, values, lanes);
        }
    }
}

/// Toggle coverage: each bit of each signal (clock excluded) must rise
/// and fall across settled cycle snapshots.
#[derive(Debug)]
pub struct ToggleCoverage {
    watched: Vec<(SignalId, u32)>,
    rises: HashSet<(SignalId, u32)>,
    falls: HashSet<(SignalId, u32)>,
    prev: Option<Vec<Bv>>,
    /// Previous-cycle lane words per watched bit (batch path only).
    prev_words: Option<Vec<u64>>,
}

impl ToggleCoverage {
    /// Instruments `module`.
    pub fn new(module: &Module) -> Self {
        let watched = module
            .signal_ids()
            .filter(|s| Some(*s) != module.clock())
            .flat_map(|s| (0..module.signal_width(s)).map(move |b| (s, b)))
            .collect();
        ToggleCoverage {
            watched,
            rises: HashSet::new(),
            falls: HashSet::new(),
            prev: None,
            prev_words: None,
        }
    }

    /// The current covered/total ratio (each bit counts a rise point and
    /// a fall point).
    pub fn ratio(&self) -> Ratio {
        let covered = self
            .watched
            .iter()
            .map(|pt| usize::from(self.rises.contains(pt)) + usize::from(self.falls.contains(pt)))
            .sum();
        Ratio::new(covered, self.watched.len() * 2)
    }
}

impl SimObserver for ToggleCoverage {
    fn on_cycle_end(&mut self, cycle: u64, values: &[Bv]) {
        if cycle == 0 {
            self.prev = None;
        }
        if let Some(prev) = &self.prev {
            for &(sig, bit) in &self.watched {
                let old = prev[sig.index()].bit(bit);
                let new = values[sig.index()].bit(bit);
                if !old && new {
                    self.rises.insert((sig, bit));
                } else if old && !new {
                    self.falls.insert((sig, bit));
                }
            }
        }
        self.prev = Some(values.to_vec());
    }
}

impl BatchObserver for ToggleCoverage {
    fn on_cycle_end(&mut self, cycle: u64, lanes: u64, snap: &LaneSnapshot<'_>) {
        if cycle == 0 {
            self.prev_words = None;
        }
        let cur: Vec<u64> = self
            .watched
            .iter()
            .map(|&(sig, bit)| snap.bit_word(sig, bit))
            .collect();
        if let Some(prev) = &self.prev_words {
            for (i, &pt) in self.watched.iter().enumerate() {
                if !prev[i] & cur[i] & lanes != 0 {
                    self.rises.insert(pt);
                }
                if prev[i] & !cur[i] & lanes != 0 {
                    self.falls.insert(pt);
                }
            }
        }
        self.prev_words = Some(cur);
    }
}

/// FSM coverage: fraction of declared states visited, per FSM register.
#[derive(Debug)]
pub struct FsmCoverage {
    regs: Vec<(SignalId, Vec<Bv>)>,
    visited: HashMap<SignalId, HashSet<Bv>>,
    transitions: HashMap<SignalId, HashSet<(Bv, Bv)>>,
    prev: Option<Vec<Bv>>,
    /// Previous-cycle per-lane values per FSM register (batch path).
    prev_lanes: Option<Vec<Vec<Bv>>>,
}

impl FsmCoverage {
    /// Instruments the FSM registers declared by `module`.
    pub fn new(module: &Module) -> Self {
        let regs = module
            .fsm_regs()
            .iter()
            .map(|&r| (r, declared_fsm_states(module, r)))
            .collect();
        FsmCoverage {
            regs,
            visited: HashMap::new(),
            transitions: HashMap::new(),
            prev: None,
            prev_lanes: None,
        }
    }

    /// Whether the module declares any FSM registers.
    pub fn has_fsms(&self) -> bool {
        !self.regs.is_empty()
    }

    /// Visited-states / declared-states across all FSM registers.
    pub fn ratio(&self) -> Ratio {
        let mut covered = 0;
        let mut total = 0;
        for (reg, states) in &self.regs {
            total += states.len();
            if let Some(v) = self.visited.get(reg) {
                covered += states.iter().filter(|s| v.contains(s)).count();
            }
        }
        Ratio::new(covered, total)
    }

    /// The number of distinct state transitions observed on `reg`.
    pub fn transitions_observed(&self, reg: SignalId) -> usize {
        self.transitions.get(&reg).map_or(0, |t| t.len())
    }
}

impl SimObserver for FsmCoverage {
    fn on_cycle_end(&mut self, cycle: u64, values: &[Bv]) {
        if cycle == 0 {
            self.prev = None;
        }
        for (reg, _) in &self.regs {
            let cur = values[reg.index()];
            self.visited.entry(*reg).or_default().insert(cur);
            if let Some(prev) = &self.prev {
                let old = prev[reg.index()];
                if old != cur {
                    self.transitions.entry(*reg).or_default().insert((old, cur));
                }
            }
        }
        self.prev = Some(values.to_vec());
    }
}

impl BatchObserver for FsmCoverage {
    fn on_cycle_end(&mut self, cycle: u64, lanes: u64, snap: &LaneSnapshot<'_>) {
        if cycle == 0 {
            self.prev_lanes = None;
        }
        if self.regs.is_empty() {
            return;
        }
        let mut cur_all = Vec::with_capacity(self.regs.len());
        for (ri, (reg, _)) in self.regs.iter().enumerate() {
            let cur: Vec<Bv> = (0..snap.lane_count())
                .map(|k| snap.value(*reg, k))
                .collect();
            for (k, &v) in cur.iter().enumerate() {
                if lanes >> k & 1 == 1 {
                    self.visited.entry(*reg).or_default().insert(v);
                    if let Some(prev) = &self.prev_lanes {
                        let old = prev[ri][k];
                        if old != v {
                            self.transitions.entry(*reg).or_default().insert((old, v));
                        }
                    }
                }
            }
            cur_all.push(cur);
        }
        self.prev_lanes = Some(cur_all);
    }
}

/// All collectors bundled behind one observer.
///
/// # Examples
///
/// ```
/// use gm_coverage::CoverageSuite;
/// use gm_sim::{Simulator, SimObserver};
/// use gm_rtl::Bv;
///
/// let m = gm_rtl::parse_verilog(
///     "module m(input a, input b, output y); assign y = a & b; endmodule")?;
/// let mut cov = CoverageSuite::new(&m);
/// let mut sim = Simulator::new(&m)?;
/// let (a, b) = (m.require("a")?, m.require("b")?);
/// for (va, vb) in [(0, 0), (1, 1)] {
///     sim.set_inputs(&[(a, Bv::new(va, 1)), (b, Bv::new(vb, 1))]);
///     sim.step_observed(&mut cov);
/// }
/// let report = cov.report();
/// assert!(report.line.is_full());
/// # Ok::<(), gm_rtl::RtlError>(())
/// ```
#[derive(Debug)]
pub struct CoverageSuite<'m> {
    line: LineCoverage,
    branch: BranchCoverage,
    condition: ConditionCoverage<'m>,
    expression: ExpressionCoverage<'m>,
    toggle: ToggleCoverage,
    fsm: FsmCoverage,
}

impl<'m> CoverageSuite<'m> {
    /// Instruments every metric on `module`.
    pub fn new(module: &'m Module) -> Self {
        CoverageSuite {
            line: LineCoverage::new(module),
            branch: BranchCoverage::new(module),
            condition: ConditionCoverage::new(module),
            expression: ExpressionCoverage::new(module),
            toggle: ToggleCoverage::new(module),
            fsm: FsmCoverage::new(module),
        }
    }

    /// Produces the current report.
    pub fn report(&self) -> CoverageReport {
        CoverageReport {
            line: self.line.ratio(),
            branch: self.branch.ratio(),
            condition: self.condition.ratio(),
            expression: self.expression.ratio(),
            toggle: self.toggle.ratio(),
            fsm: if self.fsm.has_fsms() {
                Some(self.fsm.ratio())
            } else {
                None
            },
        }
    }

    /// The line collector (for uncovered-point introspection).
    pub fn line(&self) -> &LineCoverage {
        &self.line
    }

    /// The branch collector.
    pub fn branch(&self) -> &BranchCoverage {
        &self.branch
    }

    /// The FSM collector.
    pub fn fsm(&self) -> &FsmCoverage {
        &self.fsm
    }
}

impl SimObserver for CoverageSuite<'_> {
    fn on_stmt(&mut self, stmt: StmtId) {
        SimObserver::on_stmt(&mut self.line, stmt);
    }
    fn on_branch(&mut self, stmt: StmtId, outcome: BranchOutcome) {
        SimObserver::on_branch(&mut self.branch, stmt, outcome);
    }
    fn on_expr(&mut self, stmt: StmtId, role: ExprRole, expr: &Expr, values: &[Bv]) {
        self.condition.on_expr(stmt, role, expr, values);
        self.expression.on_expr(stmt, role, expr, values);
    }
    fn on_cycle_end(&mut self, cycle: u64, values: &[Bv]) {
        SimObserver::on_cycle_end(&mut self.toggle, cycle, values);
        SimObserver::on_cycle_end(&mut self.fsm, cycle, values);
    }
}

/// The lane-parallel face of the suite: attach it to the compiled
/// backend's executors and the resulting ratios and uncovered sets are
/// identical to an interpreter run over the same stimulus.
impl BatchObserver for CoverageSuite<'_> {
    fn on_stmt(&mut self, stmt: StmtId, lanes: u64) {
        BatchObserver::on_stmt(&mut self.line, stmt, lanes);
    }
    fn on_branch(&mut self, stmt: StmtId, outcome: BranchOutcome, lanes: u64) {
        BatchObserver::on_branch(&mut self.branch, stmt, outcome, lanes);
    }
    fn on_bool_node(&mut self, stmt: StmtId, role: ExprRole, node: u32, values: u64, lanes: u64) {
        self.condition.on_bool_node(stmt, role, node, values, lanes);
        self.expression
            .on_bool_node(stmt, role, node, values, lanes);
    }
    fn on_cycle_end(&mut self, cycle: u64, lanes: u64, snap: &LaneSnapshot<'_>) {
        BatchObserver::on_cycle_end(&mut self.toggle, cycle, lanes, snap);
        BatchObserver::on_cycle_end(&mut self.fsm, cycle, lanes, snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::parse_verilog;
    use gm_sim::Simulator;

    const MUX: &str = "
    module mux(input s, input a, input b, output y);
      assign y = s ? a : b;
    endmodule";

    #[test]
    fn expression_coverage_needs_both_polarities() {
        let m = parse_verilog(MUX).unwrap();
        let mut cov = ExpressionCoverage::new(&m);
        let mut sim = Simulator::new(&m).unwrap();
        let s = m.require("s").unwrap();
        // Nodes: y-rhs (mux), s, a, b. Drive only s=0 with a=b=0: every node
        // stuck at 0.
        sim.set_input(s, Bv::zero_bit());
        sim.step_observed(&mut cov);
        assert_eq!(cov.ratio().covered, 0);
        // Toggle everything.
        let a = m.require("a").unwrap();
        let b = m.require("b").unwrap();
        sim.set_inputs(&[(s, Bv::one_bit()), (a, Bv::one_bit()), (b, Bv::one_bit())]);
        sim.step_observed(&mut cov);
        assert!(cov.ratio().is_full(), "{:?}", cov.ratio());
    }

    #[test]
    fn branch_and_line_coverage_track_paths() {
        let m = parse_verilog(
            "module m(input clk, input c, output reg y);
               always @(posedge clk)
                 if (c) y <= 1;
                 else y <= 0;
             endmodule",
        )
        .unwrap();
        let mut line = LineCoverage::new(&m);
        let mut branch = BranchCoverage::new(&m);
        let mut sim = Simulator::new(&m).unwrap();
        let c = m.require("c").unwrap();
        sim.set_input(c, Bv::one_bit());
        let mut multi = gm_sim::MultiObserver::new();
        multi.push(&mut line);
        multi.push(&mut branch);
        sim.step_observed(&mut multi);
        drop(multi);
        assert_eq!(branch.ratio(), Ratio::new(1, 2));
        assert!(!line.ratio().is_full(), "else assign not yet run");
        assert_eq!(line.uncovered().len(), 1);

        let mut multi = gm_sim::MultiObserver::new();
        multi.push(&mut line);
        multi.push(&mut branch);
        sim.set_input(c, Bv::zero_bit());
        sim.step_observed(&mut multi);
        drop(multi);
        assert!(branch.ratio().is_full());
        assert!(line.ratio().is_full());
    }

    #[test]
    fn toggle_coverage_counts_rises_and_falls() {
        let m = parse_verilog(MUX).unwrap();
        let mut cov = ToggleCoverage::new(&m);
        let mut sim = Simulator::new(&m).unwrap();
        let s = m.require("s").unwrap();
        let a = m.require("a").unwrap();
        // Cycle 0: everything 0. Cycle 1: s,a rise (and y rises: s?a).
        sim.step_observed(&mut cov);
        sim.set_inputs(&[(s, Bv::one_bit()), (a, Bv::one_bit())]);
        sim.step_observed(&mut cov);
        let r1 = cov.ratio();
        assert_eq!(r1.covered, 3, "three rises: s, a, y");
        // Cycle 2: everything falls.
        sim.set_inputs(&[(s, Bv::zero_bit()), (a, Bv::zero_bit())]);
        sim.step_observed(&mut cov);
        let r2 = cov.ratio();
        assert_eq!(r2.covered, 6);
        // b never toggled: 8 points total (4 signals x 2), 6 covered.
        assert_eq!(r2.total, 8);
    }

    #[test]
    fn fsm_coverage_visits_states() {
        let m = parse_verilog(
            "module m(input clk, input rst, output reg done);
               localparam A = 2'd0; localparam B = 2'd1; localparam C = 2'd2;
               reg [1:0] st;
               always @(posedge clk)
                 if (rst) begin st <= A; done <= 0; end
                 else case (st)
                   A: begin st <= B; done <= 0; end
                   B: begin st <= C; done <= 0; end
                   C: begin st <= A; done <= 1; end
                   default: begin st <= A; done <= 0; end
                 endcase
             endmodule",
        )
        .unwrap();
        let mut cov = FsmCoverage::new(&m);
        assert!(cov.has_fsms());
        let mut sim = Simulator::new(&m).unwrap();
        let rst = m.require("rst").unwrap();
        sim.set_input(rst, Bv::one_bit());
        sim.step_observed(&mut cov);
        sim.set_input(rst, Bv::zero_bit());
        sim.step_observed(&mut cov); // st = A visible
        assert_eq!(cov.ratio(), Ratio::new(1, 3));
        sim.step_observed(&mut cov); // B
        sim.step_observed(&mut cov); // C
        assert!(cov.ratio().is_full());
        let st = m.require("st").unwrap();
        assert!(cov.transitions_observed(st) >= 2);
    }

    #[test]
    fn suite_reports_all_metrics() {
        let m = parse_verilog(MUX).unwrap();
        let mut cov = CoverageSuite::new(&m);
        let mut sim = Simulator::new(&m).unwrap();
        sim.step_observed(&mut cov);
        let r = cov.report();
        assert!(r.line.is_full(), "single assign always runs");
        assert_eq!(r.fsm, None, "no FSM registers declared");
        assert!(r.toggle.covered < r.toggle.total);
    }
}
