//! Uncovered-point index for coverage-directed stimulus ranking.
//!
//! The refinement loop (gm-core) needs to ask, for each candidate
//! stimulus it could absorb next, *how many currently-uncovered points
//! would this trace newly hit?* — without mutating the live collectors.
//! [`UncoveredIndex`] snapshots the open toggle points and unvisited
//! FSM states out of a [`CoverageSuite`] and scores candidate traces
//! against that frozen set.
//!
//! Only toggle and FSM points are indexed: they are the two metrics
//! whose points are directly expressible as predicates over trace
//! snapshots (a bit edge between consecutive settled cycles; a register
//! equalling a declared state). Line/branch/condition/expression points
//! need the evaluator's internal probes and are deliberately out of
//! scope — the ranking is a heuristic gain estimate, not a replay.

use crate::collectors::CoverageSuite;
use gm_rtl::{Bv, SignalId};
use gm_sim::Trace;

/// A frozen snapshot of the uncovered toggle points and unvisited FSM
/// states of a [`CoverageSuite`], with a trace-scoring query.
///
/// Construction order is deterministic (watched-declaration order for
/// toggles, register-declaration order for FSM states), so scores and
/// tie-breaks are reproducible across runs and backends.
#[derive(Debug, Clone, Default)]
pub struct UncoveredIndex {
    /// Uncovered toggle points: `(signal, bit, rising)`.
    toggles: Vec<(SignalId, u32, bool)>,
    /// Declared-but-unvisited FSM states: `(register, state)`.
    fsm_states: Vec<(SignalId, Bv)>,
}

impl UncoveredIndex {
    /// Snapshots the uncovered points of `suite`.
    pub fn from_suite(suite: &CoverageSuite) -> Self {
        Self {
            toggles: suite.toggle().uncovered(),
            fsm_states: suite.fsm().unvisited(),
        }
    }

    /// Whether there is nothing left to cover in the indexed metrics.
    pub fn is_empty(&self) -> bool {
        self.toggles.is_empty() && self.fsm_states.is_empty()
    }

    /// The number of open points in the index.
    pub fn len(&self) -> usize {
        self.toggles.len() + self.fsm_states.len()
    }

    /// The number of open points that live on `sig` (toggle edges of
    /// any bit, plus unvisited FSM states when `sig` is a state
    /// register). The worklist ranker uses this as a cheap distance
    /// query: a candidate whose literals mention high-residue signals
    /// is more likely to yield coverage-advancing stimulus when
    /// refuted.
    pub fn signal_gain(&self, sig: SignalId) -> usize {
        self.toggles.iter().filter(|&&(s, _, _)| s == sig).count()
            + self.fsm_states.iter().filter(|&&(s, _)| s == sig).count()
    }

    /// The number of indexed points `trace` would newly cover.
    ///
    /// Each open point counts at most once no matter how often the
    /// trace hits it, matching how the live collectors would absorb it.
    /// Toggle points follow the collector's edge semantics: an edge is
    /// a bit change between *consecutive* settled cycles of this trace
    /// (cross-trace seams are not edges).
    pub fn trace_gain(&self, trace: &Trace) -> usize {
        let mut gain = 0;
        for &(sig, bit, rising) in &self.toggles {
            if (1..trace.len()).any(|c| {
                let old = trace.bit(c - 1, sig, bit);
                let new = trace.bit(c, sig, bit);
                old != new && new == rising
            }) {
                gain += 1;
            }
        }
        for &(reg, state) in &self.fsm_states {
            if (0..trace.len()).any(|c| trace.value(c, reg) == state) {
                gain += 1;
            }
        }
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::parse_verilog;
    use gm_sim::Simulator;

    const DFF: &str = "module dff(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule";

    fn trace_for<'m>(module: &'m gm_rtl::Module, d_vals: &[u64]) -> (CoverageSuite<'m>, Trace) {
        let mut suite = CoverageSuite::new(module);
        let mut sim = Simulator::new(module).unwrap();
        let d = module.require("d").unwrap();
        let vectors: Vec<Vec<(SignalId, Bv)>> =
            d_vals.iter().map(|&v| vec![(d, Bv::new(v, 1))]).collect();
        let trace = sim.run_vectors(&vectors, &mut suite);
        (suite, trace)
    }

    #[test]
    fn gain_counts_only_open_points_once() {
        // Hold d low: d and q never move, so their rise/fall points
        // stay open.
        let m = parse_verilog(DFF).unwrap();
        let (suite, _) = trace_for(&m, &[0, 0, 0]);
        let idx = UncoveredIndex::from_suite(&suite);
        assert!(!idx.is_empty());
        let before = idx.len();

        // A trace that toggles d (and hence q) repeatedly covers each
        // open toggle point exactly once regardless of repetition.
        let (_, busy) = trace_for(&m, &[0, 1, 0, 1, 0, 1]);
        let gain = idx.trace_gain(&busy);
        assert!(gain > 0, "toggling trace must gain over an idle baseline");
        assert!(gain <= before);

        // The idle trace itself gains nothing new.
        let (_, idle) = trace_for(&m, &[0, 0, 0]);
        assert_eq!(idx.trace_gain(&idle), 0);
    }

    #[test]
    fn full_closure_empties_the_index() {
        let m = parse_verilog(DFF).unwrap();
        let (suite, _) = trace_for(&m, &[0, 1, 0, 1, 0]);
        let idx = UncoveredIndex::from_suite(&suite);
        assert!(idx.is_empty(), "open points left: {:?}", idx);
        assert_eq!(idx.len(), 0);
        let (_, t) = trace_for(&m, &[0, 1]);
        assert_eq!(idx.trace_gain(&t), 0);
    }
}
