//! Trace and coverage determinism: the same seed must produce the same
//! stimulus, the same traces, and the same coverage ratios — run to
//! run, on every bundled design. The closure loop's convergence
//! arguments (and the paper's reported coverage numbers) assume exactly
//! this reproducibility.

use gm_coverage::CoverageSuite;
use gm_designs::catalog;
use gm_sim::{collect_vectors, RandomStimulus, TestSuite};

/// Builds the same two-segment suite from a seed.
fn suite_for(module: &gm_rtl::Module, seed: u64) -> TestSuite {
    let mut suite = TestSuite::new();
    suite.push(
        "seed",
        collect_vectors(&mut RandomStimulus::new(module, seed, 150)),
    );
    suite.push(
        "tail",
        collect_vectors(&mut RandomStimulus::new(module, seed ^ 0xABCD, 50)),
    );
    suite
}

#[test]
fn same_seed_same_traces_same_coverage() {
    for d in catalog() {
        let m = d.module();
        let run = |seed: u64| {
            let suite = suite_for(&m, seed);
            let mut cov = CoverageSuite::new(&m);
            let traces = suite.run(&m, &mut cov).unwrap();
            (traces, cov.report())
        };
        let (traces_a, report_a) = run(7);
        let (traces_b, report_b) = run(7);
        assert_eq!(
            traces_a, traces_b,
            "{}: traces diverged across runs",
            d.name
        );
        assert_eq!(
            report_a, report_b,
            "{}: coverage ratios diverged across runs",
            d.name
        );
    }
}

#[test]
fn different_seeds_change_the_stimulus() {
    // Not a determinism property per se, but guards against a
    // degenerate RNG that ignores its seed (which would make the
    // determinism test above vacuous).
    let m = gm_designs::by_name("arbiter4").unwrap().module();
    let a = collect_vectors(&mut RandomStimulus::new(&m, 1, 100));
    let b = collect_vectors(&mut RandomStimulus::new(&m, 2, 100));
    assert_ne!(a, b, "seed must matter");
}

#[test]
fn coverage_report_is_insensitive_to_rebuild() {
    // Fresh CoverageSuite instances over identical traces agree: no
    // hidden global state in the collectors.
    let m = gm_designs::by_name("b02").unwrap().module();
    let suite = suite_for(&m, 99);
    let mut cov1 = CoverageSuite::new(&m);
    suite.run(&m, &mut cov1).unwrap();
    let mut cov2 = CoverageSuite::new(&m);
    suite.run(&m, &mut cov2).unwrap();
    assert_eq!(cov1.report(), cov2.report());
}
