//! The engine's determinism contract under sharding: same seed + same
//! config ⇒ byte-identical [`ClosureOutcome`] across every
//! [`ShardPolicy`] and across repeated runs.
//!
//! "Byte-identical" is checked on the outcome's full `Debug` rendering —
//! suite labels and vectors, iteration reports, assertion order,
//! per-target summaries. Across *policies* the verification work
//! counters are normalized out first (frame/solver work legitimately
//! moves between sessions when the partition changes); across *repeated
//! runs of one policy* nothing is normalized: even the stats must
//! reproduce exactly.

use gm_mc::{Backend, SessionStats};
use gm_rtl::SignalId;
use goldmine::{
    ClosureOutcome, Engine, EngineConfig, SeedStimulus, ShardPolicy, TargetSelection, UnknownPolicy,
};

const POLICIES: [ShardPolicy; 3] = [
    ShardPolicy::Off,
    ShardPolicy::Fixed(3),
    ShardPolicy::PerCore,
];

fn one_bit_targets(m: &gm_rtl::Module) -> Vec<(SignalId, u32)> {
    m.outputs()
        .into_iter()
        .filter(|&s| m.signal_width(s) == 1)
        .map(|s| (s, 0))
        .collect()
}

/// The outcome's full `Debug` rendering (the byte-identity witness).
fn full_fingerprint(outcome: &ClosureOutcome) -> String {
    format!("{outcome:?}")
}

/// The `Debug` rendering with the per-iteration verification work
/// counters normalized out — everything the closure run *produced*
/// (labels, traces, reports, assertions, targets) stays in.
fn work_normalized_fingerprint(outcome: &ClosureOutcome) -> String {
    let mut o = outcome.clone();
    for it in &mut o.iterations {
        it.verification = SessionStats::default();
    }
    format!("{o:?}")
}

fn run_with(
    mut config: EngineConfig,
    module: &gm_rtl::Module,
    policy: ShardPolicy,
) -> ClosureOutcome {
    config.shards = policy;
    Engine::new(module, config).unwrap().run().unwrap()
}

fn assert_deterministic(name: &str, module: &gm_rtl::Module, config: EngineConfig) {
    let mut normalized: Vec<(ShardPolicy, String)> = Vec::new();
    for policy in POLICIES {
        let first = run_with(config.clone(), module, policy);
        let second = run_with(config.clone(), module, policy);
        assert_eq!(
            full_fingerprint(&first),
            full_fingerprint(&second),
            "{name}: repeated {policy:?} runs differ (stats included)"
        );
        normalized.push((policy, work_normalized_fingerprint(&first)));
    }
    let (_, reference) = &normalized[0];
    for (policy, fp) in &normalized[1..] {
        assert_eq!(
            fp, reference,
            "{name}: {policy:?} produced a different outcome than {:?}",
            POLICIES[0]
        );
    }
}

#[test]
fn arbiter_outcome_is_identical_across_policies_and_runs() {
    // Explicit-engine-dominated closure with counterexample feedback.
    let module = gm_designs::arbiter2();
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Random { cycles: 32 },
        record_coverage: false,
        ..EngineConfig::default()
    };
    assert_deterministic("arbiter2", &module, config);
}

#[test]
fn sat_backend_outcome_is_identical_across_policies_and_runs() {
    // Force the SAT engines so violated candidates exercise canonical
    // counterexample extraction — the determinism keystone.
    let module = gm_designs::b09();
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Random { cycles: 32 },
        targets: TargetSelection::Bits(one_bit_targets(&module)),
        backend: Backend::KInduction { max_k: 4 },
        unknown: UnknownPolicy::AssumeTrue,
        max_iterations: 12,
        record_coverage: false,
        ..EngineConfig::default()
    };
    assert_deterministic("b09/k-induction", &module, config);
}

#[test]
fn zero_seed_bootstrap_is_identical_across_policies_and_runs() {
    // The §7.2 zero-pattern mode builds its whole suite from
    // counterexample traces, so any trace nondeterminism explodes here.
    let module = gm_designs::arbiter2();
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::None,
        record_coverage: false,
        ..EngineConfig::default()
    };
    assert_deterministic("arbiter2/zero-seed", &module, config);
}

#[test]
fn racing_runs_reproduce_their_outcome() {
    // Racing keeps verdicts and traces deterministic; only the stats
    // attribution depends on which engine answered first, so repeated
    // runs compare work-normalized.
    let module = gm_designs::arbiter2();
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Random { cycles: 32 },
        shards: ShardPolicy::Fixed(2),
        racing: true,
        record_coverage: false,
        ..EngineConfig::default()
    };
    let first = Engine::new(&module, config.clone()).unwrap().run().unwrap();
    let second = Engine::new(&module, config).unwrap().run().unwrap();
    assert_eq!(
        work_normalized_fingerprint(&first),
        work_normalized_fingerprint(&second),
        "racing perturbed the outcome"
    );
    // And racing never changes what the non-racing engine concludes.
    let plain = run_with(
        EngineConfig {
            window: 1,
            stimulus: SeedStimulus::Random { cycles: 32 },
            record_coverage: false,
            ..EngineConfig::default()
        },
        &module,
        ShardPolicy::Fixed(2),
    );
    assert_eq!(first.converged, plain.converged);
    assert_eq!(first.assertions.len(), plain.assertions.len());
}

/// Stress/soak on the largest catalog design with per-core sharding:
/// a deep engine run cross-checked for session-stat drift, then a
/// 100-round sharded-batch budget hammering one persistent session
/// pool. Run by the CI release job only
/// (`cargo test --release -- --ignored`).
#[test]
#[ignore = "soak test: run in release CI (cargo test --release -- --ignored)"]
fn soak_b18_lite_100_iterations_per_core_no_drift() {
    let module = gm_designs::b18_lite();
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Random { cycles: 48 },
        // One target bit and a bounded refinement depth: on b18_lite the
        // miner's candidate set grows geometrically with iterations
        // (~18k live candidates by iteration 6 — window-1 trees over 22
        // features cannot represent the datapath compactly, the paper's
        // own large-design caveat), so the 100-round budget below goes
        // to the verification sessions, which are what this soak
        // stresses.
        targets: TargetSelection::Bits(vec![one_bit_targets(&module)[0]]),
        backend: Backend::KInduction { max_k: 1 },
        unknown: UnknownPolicy::AssumeTrue,
        max_iterations: 4,
        record_coverage: false,
        ..EngineConfig::default()
    };
    let single = run_with(config.clone(), &module, ShardPolicy::Fixed(1));
    let sharded = run_with(config.clone(), &module, ShardPolicy::PerCore);
    // Identical artifacts...
    assert_eq!(
        work_normalized_fingerprint(&single),
        work_normalized_fingerprint(&sharded),
        "per-core soak outcome drifted from single-shard"
    );
    // ...and no drift in the decision counters: sharding moves work
    // between sessions but never changes how much deciding happens.
    let s1 = single.verification_total();
    let sn = sharded.verification_total();
    assert_eq!(s1.engine_queries(), sn.engine_queries(), "query drift");
    assert_eq!(s1.memo_hits, sn.memo_hits, "memo drift");
    assert_eq!(s1.sat_decided, sn.sat_decided, "SAT attribution drift");
    assert_eq!(
        s1.cex_canonicalized, sn.cex_canonicalized,
        "canonicalization drift"
    );

    // The 100-round sharded budget: hammering one checker's persistent
    // per-core session pool with the same worklist for 100 rounds must
    // keep the memo at the unique-property count (bounded growth) and
    // do no engine work after round one.
    let mut checker = gm_mc::Checker::new(&module)
        .unwrap()
        .with_backend(Backend::KInduction { max_k: 1 });
    let props: Vec<gm_mc::WindowProperty> = single
        .assertions
        .iter()
        .take(16)
        .map(goldmine::assertion_property)
        .collect();
    assert!(!props.is_empty(), "soak needs a non-trivial worklist");
    let shards = ShardPolicy::PerCore.shard_count();
    let first = checker.check_batch_sharded(&props, shards).unwrap();
    let memo_after_first = checker.memo_len();
    let queries_after_first = checker.session_stats().engine_queries();
    for _ in 0..99 {
        let again = checker.check_batch_sharded(&props, shards).unwrap();
        assert_eq!(first, again, "soak round diverged");
    }
    assert_eq!(checker.memo_len(), memo_after_first, "memo grew unbounded");
    assert_eq!(
        checker.session_stats().engine_queries(),
        queries_after_first,
        "soak rounds re-did engine work"
    );
}

/// The work-stealing shard dispatch ([`goldmine::StealPolicy::Stealing`])
/// produces the identical closure artifacts as the static round-robin
/// deal: everything except the per-iteration verification work counters
/// (which legitimately depend on which session claimed which property,
/// like racing's attribution counters) must match byte-for-byte, and it
/// must do so across repeated runs.
#[test]
fn stealing_dispatch_is_artifact_identical_to_round_robin() {
    let module = gm_designs::b09();
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Random { cycles: 48 },
        targets: TargetSelection::Bits(one_bit_targets(&module)),
        unknown: UnknownPolicy::AssumeTrue,
        shards: ShardPolicy::Fixed(3),
        record_coverage: false,
        ..EngineConfig::default()
    };
    let round_robin = Engine::new(&module, config.clone()).unwrap().run().unwrap();
    let baseline = work_normalized_fingerprint(&round_robin);
    for run in 0..2 {
        let stealing = Engine::new(
            &module,
            EngineConfig {
                steal: goldmine::StealPolicy::Stealing,
                ..config.clone()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(
            work_normalized_fingerprint(&stealing),
            baseline,
            "stealing run {run} changed the closure artifacts"
        );
        assert_eq!(
            stealing.verification_total().engine_queries(),
            round_robin.verification_total().engine_queries(),
            "stealing run {run} changed the total engine work"
        );
    }
}
