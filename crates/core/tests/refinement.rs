//! Effectiveness of the coverage-ranked refinement loop: directed
//! stimulus synthesized from counterexample prefixes and ranked against
//! the uncovered-point index must beat random-only stimulus — closure
//! in fewer engine iterations, or strictly more simulation coverage —
//! on the catalog designs.

use gm_designs::catalog;
use goldmine::{ClosureOutcome, Engine, EngineConfig, RefineConfig, SeedStimulus, SimBackend};

/// Toggle + FSM points covered by the final report (the two metrics the
/// uncovered index ranks against), plus the iterations used.
fn score(outcome: &ClosureOutcome) -> (usize, u32) {
    let r = outcome.iterations.last().unwrap().coverage.unwrap();
    let fsm = r.fsm.map_or(0, |f| f.covered);
    (r.toggle.covered + fsm, outcome.iteration_count())
}

fn run(name: &str, refine: RefineConfig) -> ClosureOutcome {
    let design = catalog()
        .into_iter()
        .find(|d| d.name == name)
        .expect("design in catalog");
    let m = design.module();
    let config = EngineConfig {
        window: design.window,
        // A deliberately thin seed: random-only stimulus leaves
        // coverage on the table, giving refinement room to matter.
        stimulus: SeedStimulus::Random { cycles: 4 },
        record_coverage: true,
        refine,
        ..EngineConfig::default()
    };
    Engine::new(&m, config).unwrap().run().unwrap()
}

#[test]
fn ranked_refinement_beats_random_only_stimulus() {
    let refine = RefineConfig {
        variants: 4,
        extra_cycles: 16,
        max_absorb: 2,
    };
    let mut strictly_better = 0usize;
    for name in ["b01", "b02", "b09"] {
        let base = run(name, RefineConfig::default());
        let refined = run(name, refine);
        assert!(base.converged, "{name}: random-only run must converge");
        assert!(refined.converged, "{name}: refined run must converge");
        let (base_cov, base_iters) = score(&base);
        let (ref_cov, ref_iters) = score(&refined);
        // Refinement must never cost coverage...
        assert!(
            ref_cov >= base_cov,
            "{name}: refined covered {ref_cov} < random-only {base_cov}"
        );
        // ...and must win outright on iterations or coverage.
        if ref_iters < base_iters || ref_cov > base_cov {
            strictly_better += 1;
        }
        // The win is attributable: directed segments were absorbed and
        // reported.
        let dir_segments = refined
            .suite
            .segments()
            .iter()
            .filter(|s| s.label.starts_with("dir-"))
            .count();
        let reported: usize = refined.iterations.iter().map(|r| r.directed_absorbed).sum();
        assert_eq!(dir_segments, reported, "{name}: dir-* bookkeeping");
    }
    assert!(
        strictly_better >= 2,
        "refinement must strictly beat random-only on at least two designs, won {strictly_better}"
    );
}

#[test]
fn refinement_disabled_is_byte_identical_to_the_old_engine() {
    // variants: 0 (the default) must not perturb anything — same
    // outcome debug render as a config that never heard of refinement.
    let design = catalog().into_iter().find(|d| d.name == "b02").unwrap();
    let m = design.module();
    let base = EngineConfig {
        window: design.window,
        stimulus: SeedStimulus::Random { cycles: 4 },
        record_coverage: true,
        ..EngineConfig::default()
    };
    let with_knob = EngineConfig {
        refine: RefineConfig {
            variants: 0,
            extra_cycles: 99,
            max_absorb: 7,
        },
        ..base.clone()
    };
    let a = format!("{:?}", Engine::new(&m, base).unwrap().run().unwrap());
    let b = format!("{:?}", Engine::new(&m, with_knob).unwrap().run().unwrap());
    assert_eq!(a, b);
}

#[test]
fn refined_outcomes_byte_identical_across_sim_backends() {
    // The refinement pass simulates and ranks through the configured
    // backend; the outcome must not depend on which one.
    let design = catalog().into_iter().find(|d| d.name == "b09").unwrap();
    let m = design.module();
    let backends = [
        SimBackend::Interpreter,
        SimBackend::CompiledScalar,
        SimBackend::CompiledBatch,
        SimBackend::CompiledBatchWide(4),
    ];
    let outcomes: Vec<String> = backends
        .into_iter()
        .map(|sim_backend| {
            let config = EngineConfig {
                window: design.window,
                stimulus: SeedStimulus::Random { cycles: 4 },
                record_coverage: true,
                refine: RefineConfig {
                    variants: 4,
                    extra_cycles: 16,
                    max_absorb: 2,
                },
                sim_backend,
                ..EngineConfig::default()
            };
            format!("{:?}", Engine::new(&m, config).unwrap().run().unwrap())
        })
        .collect();
    for (backend, outcome) in backends.iter().zip(&outcomes).skip(1) {
        assert_eq!(&outcomes[0], outcome, "{backend:?} diverged");
    }
}
