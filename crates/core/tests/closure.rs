//! End-to-end tests of the refinement loop on the paper's examples.

use gm_mc::{CheckResult, Checker};
use gm_rtl::parse_verilog;
use gm_sim::DirectedStimulus;
use goldmine::{
    assertion_property, fault_campaign, Engine, EngineConfig, SeedStimulus, TargetSelection,
};

const ARBITER2: &str = "
module arbiter2(input clk, input rst, input req0, input req1,
                output reg gnt0, output reg gnt1);
  always @(posedge clk)
    if (rst) begin
      gnt0 <= 0; gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule";

const CEX_SMALL: &str = "
module cex_small(input a, input b, input c, output z);
  assign z = (a & b) | (~a & c);
endmodule";

#[test]
fn arbiter_converges_and_assertions_are_sound() {
    let m = parse_verilog(ARBITER2).unwrap();
    let gnt0 = m.require("gnt0").unwrap();
    let config = EngineConfig {
        targets: TargetSelection::Bits(vec![(gnt0, 0)]),
        stimulus: SeedStimulus::Random { cycles: 32 },
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&m, config).unwrap().run().unwrap();
    assert!(outcome.converged, "targets: {:?}", outcome.targets);
    assert!(
        outcome.unknown_assumed == 0,
        "explicit engine is exact here"
    );
    assert!(!outcome.assertions.is_empty());

    // Every reported assertion must independently re-verify.
    let mut checker = Checker::new(&m).unwrap();
    for a in &outcome.assertions {
        let res = checker.check(&assertion_property(a)).unwrap();
        assert_eq!(
            res,
            CheckResult::Proved,
            "unsound assertion {}",
            a.to_ltl(&m)
        );
    }

    // At convergence the paper's input-space coverage is exactly 100%.
    let last = outcome.iterations.last().unwrap();
    assert!(
        (last.input_space_coverage - 1.0).abs() < 1e-9,
        "coverage closure reached, got {}",
        last.input_space_coverage
    );

    // The full functionality needs gnt0(t-1): the tree must have extended
    // (the paper's third-iteration move in §6).
    assert!(outcome.targets[0].extended, "state extension used");
}

#[test]
fn input_space_coverage_is_monotonic() {
    // The paper's core claim: every iteration increases coverage; no
    // plateaus (§5).
    let m = parse_verilog(ARBITER2).unwrap();
    let outcome = Engine::new(&m, EngineConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let series: Vec<f64> = outcome
        .iterations
        .iter()
        .map(|r| r.input_space_coverage)
        .collect();
    for w in series.windows(2) {
        assert!(w[1] >= w[0] - 1e-12, "coverage decreased: {series:?}");
    }
    assert!(outcome.converged);
}

#[test]
fn zero_seed_mode_matches_table1_shape() {
    // §7.2: starting from no patterns at all, the loop bootstraps itself
    // from the "output always 0" hypothesis and still converges to 100%.
    let m = parse_verilog(ARBITER2).unwrap();
    let gnt0 = m.require("gnt0").unwrap();
    let config = EngineConfig {
        stimulus: SeedStimulus::None,
        targets: TargetSelection::Bits(vec![(gnt0, 0)]),
        record_coverage: false,
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&m, config).unwrap().run().unwrap();
    assert!(outcome.converged);
    let series: Vec<f64> = outcome
        .iterations
        .iter()
        .map(|r| r.input_space_coverage)
        .collect();
    assert_eq!(series[0], 0.0, "iteration 0 has no proved assertions");
    assert!((series.last().unwrap() - 1.0).abs() < 1e-9);
    // The suite was built entirely from counterexamples.
    assert!(!outcome.suite.is_empty());
    assert!(outcome
        .suite
        .segments()
        .iter()
        .all(|s| s.label.starts_with("cex-")));
}

#[test]
fn combinational_block_closes_with_window_zero() {
    let m = parse_verilog(CEX_SMALL).unwrap();
    let config = EngineConfig {
        window: 0,
        stimulus: SeedStimulus::Random { cycles: 4 },
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&m, config).unwrap().run().unwrap();
    assert!(outcome.converged);
    // The final tree predicts the output function exactly; verify via
    // the proved assertions' disjoint input-space sum.
    assert!((outcome.final_input_space_coverage() - 1.0).abs() < 1e-9);
}

#[test]
fn directed_seed_reproduces_paper_walkthrough() {
    // §6: seed the arbiter with the paper's 4-row directed test and
    // confirm convergence plus the A11/A12-style state-extended
    // assertions.
    let m = parse_verilog(ARBITER2).unwrap();
    let gnt0 = m.require("gnt0").unwrap();
    let directed = DirectedStimulus::from_named(
        &m,
        &[
            &[("req0", 0), ("req1", 0)],
            &[("req0", 1), ("req1", 0)],
            &[("req0", 1), ("req1", 1)],
            &[("req0", 0), ("req1", 1)],
            &[("req0", 1), ("req1", 1)],
        ],
    )
    .unwrap();
    let config = EngineConfig {
        stimulus: SeedStimulus::Directed(directed.vectors().to_vec()),
        targets: TargetSelection::Bits(vec![(gnt0, 0)]),
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&m, config).unwrap().run().unwrap();
    assert!(outcome.converged);
    let ltl: Vec<String> = outcome.assertions.iter().map(|a| a.to_ltl(&m)).collect();
    // A2 family: two idle request cycles keep the grant low.
    assert!(
        ltl.iter()
            .any(|s| s.contains("!req0") && s.contains("!gnt0")),
        "expected an idle-implies-no-grant assertion, got {ltl:#?}"
    );
    // Some assertion must reference the extended state feature gnt0@0.
    assert!(
        outcome
            .assertions
            .iter()
            .any(|a| a.literals.iter().any(|(f, _)| f.signal == gnt0)),
        "expected a gnt0(t-1)-style literal, got {ltl:#?}"
    );
}

#[test]
fn coverage_report_improves_with_iterations() {
    let m = parse_verilog(ARBITER2).unwrap();
    let config = EngineConfig {
        stimulus: SeedStimulus::None,
        record_coverage: true,
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&m, config).unwrap().run().unwrap();
    let first = outcome.iterations.first().unwrap().coverage.unwrap();
    let last = outcome.iterations.last().unwrap().coverage.unwrap();
    assert!(last.expression.covered >= first.expression.covered);
    assert!(last.toggle.covered >= first.toggle.covered);
    assert!(last.line.covered >= first.line.covered);
}

#[test]
fn fault_campaign_detects_stuck_grants() {
    let m = parse_verilog(ARBITER2).unwrap();
    let outcome = Engine::new(&m, EngineConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert!(outcome.converged);
    let gnt0 = m.require("gnt0").unwrap();
    let req0 = m.require("req0").unwrap();
    let reports = fault_campaign(&m, &outcome.assertions, &[gnt0, req0]).unwrap();
    assert_eq!(reports.len(), 4);
    for r in &reports {
        assert!(
            r.is_detected(),
            "fault {:?} {} escaped {} assertions",
            m.signal(r.signal).name(),
            r.fault,
            r.checked
        );
    }
}

#[test]
fn generated_suite_detects_faults_by_simulation() {
    // §7.4's closing remark: the generated vector suite itself is an
    // effective regression vehicle, without any assertion checking.
    let m = parse_verilog(ARBITER2).unwrap();
    let outcome = Engine::new(&m, EngineConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert!(outcome.converged);
    let req0 = m.require("req0").unwrap();
    let gnt0 = m.require("gnt0").unwrap();
    for (sig, fault) in [
        (req0, goldmine::FaultKind::StuckAt0),
        (req0, goldmine::FaultKind::StuckAt1),
        (gnt0, goldmine::FaultKind::StuckAt0),
        (gnt0, goldmine::FaultKind::StuckAt1),
    ] {
        let hit = goldmine::suite_detects_fault(&m, &outcome.suite, sig, fault).unwrap();
        assert!(
            hit.is_some(),
            "suite missed {} {fault}",
            m.signal(sig).name()
        );
    }
}

#[test]
fn iteration_reports_carry_session_stats() {
    // Acceptance: a multi-iteration closure run attributes non-zero
    // verification-session work to its iteration reports.
    let m = parse_verilog(ARBITER2).unwrap();
    let config = EngineConfig {
        stimulus: SeedStimulus::None,
        record_coverage: false,
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&m, config).unwrap().run().unwrap();
    assert!(outcome.converged);
    assert!(outcome.iteration_count() >= 2, "multi-iteration run");
    let total = outcome.verification_total();
    assert!(
        total.engine_queries() > 0,
        "no queries attributed: {total:?}"
    );
    // arbiter2 fits the explicit engine, so Auto decides everything there.
    assert!(total.explicit_queries > 0);
    // At least one post-seed iteration did verification work.
    assert!(outcome
        .iterations
        .iter()
        .skip(1)
        .any(|r| r.verification.engine_queries() > 0));
}

#[test]
fn sat_backend_session_reuses_unrollings_across_iterations() {
    // Force the SAT engines: the whole run must share at most one
    // reset-rooted and one free-init unrolling, reusing frames.
    let m = parse_verilog(ARBITER2).unwrap();
    let gnt0 = m.require("gnt0").unwrap();
    let config = EngineConfig {
        backend: gm_mc::Backend::KInduction { max_k: 8 },
        targets: TargetSelection::Bits(vec![(gnt0, 0)]),
        record_coverage: false,
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&m, config).unwrap().run().unwrap();
    let total = outcome.verification_total();
    assert!(total.sat_queries > 0);
    assert!(total.solver.propagations > 0);
    assert!(
        total.unrollers_built <= 2,
        "session rebuilt unrollings: {total:?}"
    );
    assert!(total.frames_reused > 0, "no frame reuse: {total:?}");
}

#[test]
fn closure_outcomes_byte_identical_across_sim_backends() {
    // The simulation backend feeds every layer of the loop (seed
    // traces, counterexample replay, per-iteration coverage), so this
    // is the outcome-level face of the `sim/compiled_agree` contract:
    // the full ClosureOutcome debug render — suite vectors, iteration
    // reports including coverage, assertions, target summaries — must
    // not depend on the engine.
    for src in [ARBITER2, CEX_SMALL] {
        let m = parse_verilog(src).unwrap();
        let backends = [
            goldmine::SimBackend::Interpreter,
            goldmine::SimBackend::CompiledScalar,
            goldmine::SimBackend::CompiledBatch,
            goldmine::SimBackend::CompiledBatchWide(2),
            goldmine::SimBackend::CompiledBatchWide(4),
            goldmine::SimBackend::CompiledBatchWide(8),
        ];
        let outcomes: Vec<String> = backends
            .into_iter()
            .map(|sim_backend| {
                let config = EngineConfig {
                    window: if src == CEX_SMALL { 0 } else { 1 },
                    record_coverage: true,
                    sim_backend,
                    ..EngineConfig::default()
                };
                format!("{:?}", Engine::new(&m, config).unwrap().run().unwrap())
            })
            .collect();
        for (backend, outcome) in backends.iter().zip(&outcomes).skip(1) {
            assert_eq!(&outcomes[0], outcome, "{backend:?} diverged");
        }
    }
}

#[test]
fn unbatched_mode_also_converges() {
    let m = parse_verilog(ARBITER2).unwrap();
    let config = EngineConfig {
        batched: false,
        record_coverage: false,
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&m, config).unwrap().run().unwrap();
    assert!(outcome.converged);
}
