//! Temporal mining end-to-end: mined next/eventuality/stability
//! templates are proved or falsified by the k-induction/BMC path, and
//! the outcome is byte-identical across every simulation backend.

use gm_mc::{CheckResult, Checker};
use gm_rtl::parse_verilog;
use goldmine::{temporal_property, Engine, EngineConfig, SeedStimulus, SimBackend, TemporalConfig};

/// A sticky bit: once `set` pulses, `q` holds 1 forever — the cleanest
/// source of provable stability windows (`set |-> q & Xq & XXq`).
const STICKY: &str = "
module sticky(input clk, input rst, input set, output reg q);
  always @(posedge clk)
    if (rst) q <= 0;
    else if (set) q <= 1;
endmodule";

const ARBITER2: &str = "
module arbiter2(input clk, input rst, input req0, input req1,
                output reg gnt0, output reg gnt1);
  always @(posedge clk)
    if (rst) begin
      gnt0 <= 0; gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule";

fn temporal_config(horizon: u32) -> EngineConfig {
    EngineConfig {
        stimulus: SeedStimulus::Random { cycles: 32 },
        temporal: TemporalConfig { horizon },
        ..EngineConfig::default()
    }
}

#[test]
fn sticky_bit_yields_proved_stability_windows() {
    let m = parse_verilog(STICKY).unwrap();
    let outcome = Engine::new(&m, temporal_config(2)).unwrap().run().unwrap();
    assert!(outcome.converged, "targets: {:?}", outcome.targets);
    assert_eq!(outcome.unknown_assumed, 0, "small design decides exactly");
    assert!(
        !outcome.temporal.is_empty(),
        "sticky bit must yield at least one temporal assertion"
    );
    // The signature claim: some proved assertion keeps q high past the
    // target cycle (a stability or next template on q = 1).
    assert!(
        outcome
            .temporal
            .iter()
            .any(|a| a.value && *a.consequent_offsets().end() > a.target.offset),
        "expected a multi-cycle q-stays-high claim, got {:#?}",
        outcome
            .temporal
            .iter()
            .map(|a| a.to_ltl(&m))
            .collect::<Vec<_>>()
    );
}

#[test]
fn proved_temporal_assertions_reverify_on_a_fresh_checker() {
    for src in [STICKY, ARBITER2] {
        let m = parse_verilog(src).unwrap();
        let outcome = Engine::new(&m, temporal_config(2)).unwrap().run().unwrap();
        assert_eq!(outcome.unknown_assumed, 0);
        let mut checker = Checker::new(&m).unwrap();
        for a in &outcome.temporal {
            let res = checker.check_temporal(&temporal_property(a)).unwrap();
            assert_eq!(
                res,
                CheckResult::Proved,
                "unsound temporal assertion {}",
                a.to_ltl(&m)
            );
        }
    }
}

#[test]
fn refuted_temporal_candidates_feed_the_suite() {
    // The arbiter's grants flip as requests change, so stability
    // candidates mined from a short window get refuted — their
    // counterexamples must land in the suite as tcex-* segments and be
    // dispatched exactly once (the decided-set contract).
    let m = parse_verilog(ARBITER2).unwrap();
    let config = EngineConfig {
        // Sparse seed data: the miner overgeneralizes stability from
        // few samples, guaranteeing refutable temporal candidates.
        stimulus: SeedStimulus::Random { cycles: 16 },
        ..temporal_config(2)
    };
    let outcome = Engine::new(&m, config).unwrap().run().unwrap();
    let total_refuted: usize = outcome.iterations.iter().map(|r| r.temporal_refuted).sum();
    let tcex_segments = outcome
        .suite
        .segments()
        .iter()
        .filter(|s| s.label.starts_with("tcex-"))
        .count();
    assert_eq!(total_refuted, tcex_segments);
    assert!(
        total_refuted > 0,
        "arbiter grants are unstable; some temporal candidate must refute"
    );
    // Counters stay coherent: the cumulative proved count in the last
    // report equals the outcome list.
    let last = outcome.iterations.last().unwrap();
    assert_eq!(last.temporal_proved, outcome.temporal.len());
}

#[test]
fn temporal_outcomes_byte_identical_across_sim_backends() {
    for src in [STICKY, ARBITER2] {
        let m = parse_verilog(src).unwrap();
        let backends = [
            SimBackend::Interpreter,
            SimBackend::CompiledScalar,
            SimBackend::CompiledBatch,
            SimBackend::CompiledBatchWide(4),
        ];
        let outcomes: Vec<String> = backends
            .into_iter()
            .map(|sim_backend| {
                let config = EngineConfig {
                    sim_backend,
                    ..temporal_config(2)
                };
                format!("{:?}", Engine::new(&m, config).unwrap().run().unwrap())
            })
            .collect();
        for (backend, outcome) in backends.iter().zip(&outcomes).skip(1) {
            assert_eq!(&outcomes[0], outcome, "{backend:?} diverged on {src}");
        }
    }
}

#[test]
fn horizon_zero_reproduces_the_combinational_engine() {
    // The new knobs must default to the old behavior: horizon 0 and
    // the default EngineConfig produce byte-identical outcomes.
    let m = parse_verilog(ARBITER2).unwrap();
    let explicit_zero = format!(
        "{:?}",
        Engine::new(&m, temporal_config(0)).unwrap().run().unwrap()
    );
    // The same run through the old config surface (temporal knob left
    // at its default), with the stimulus matched for fairness.
    let plain = format!(
        "{:?}",
        Engine::new(
            &m,
            EngineConfig {
                stimulus: SeedStimulus::Random { cycles: 32 },
                ..EngineConfig::default()
            }
        )
        .unwrap()
        .run()
        .unwrap()
    );
    assert_eq!(explicit_zero, plain);
}
