//! Flight-recorder inertness: the span recorder must never change an
//! engine outcome. The `Debug` render of a [`goldmine::ClosureOutcome`]
//! is the repo's byte-identity artifact (shard/backend/serve agreement
//! all diff it), so these tests run the same closure with the recorder
//! off and on — across every simulation backend — and require identical
//! renders, while also checking the recording itself is structurally
//! sound (nested spans, well-formed Chrome export).

use gm_rtl::parse_verilog;
use goldmine::{Engine, EngineConfig, RefineConfig, SeedStimulus, SimBackend, TemporalConfig};

const STICKY: &str = "
module sticky(input clk, input rst, input set, output reg q);
  always @(posedge clk)
    if (rst) q <= 0;
    else if (set) q <= 1;
endmodule";

const ARBITER2: &str = "
module arbiter2(input clk, input rst, input req0, input req1,
                output reg gnt0, output reg gnt1);
  always @(posedge clk)
    if (rst) begin
      gnt0 <= 0; gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule";

/// Every optional engine pass enabled, so the recording exercises the
/// full span vocabulary (verify, temporal, refine, coverage).
fn full_config(sim_backend: SimBackend) -> EngineConfig {
    EngineConfig {
        stimulus: SeedStimulus::Random { cycles: 24 },
        record_coverage: true,
        temporal: TemporalConfig { horizon: 2 },
        refine: RefineConfig {
            variants: 4,
            extra_cycles: 8,
            max_absorb: 2,
        },
        sim_backend,
        ..EngineConfig::default()
    }
}

fn run_debug(src: &str, config: EngineConfig) -> String {
    let m = parse_verilog(src).unwrap();
    format!("{:?}", Engine::new(&m, config).unwrap().run().unwrap())
}

#[test]
fn outcomes_byte_identical_recorder_on_and_off_across_backends() {
    for src in [STICKY, ARBITER2] {
        for sim_backend in [
            SimBackend::Interpreter,
            SimBackend::CompiledScalar,
            SimBackend::CompiledBatch,
            SimBackend::CompiledBatchWide(4),
        ] {
            let off = run_debug(src, full_config(sim_backend));
            let sink = gm_trace::TraceSink::new();
            let on = {
                let _guard = gm_trace::push_thread_sink(sink.clone());
                run_debug(src, full_config(sim_backend))
            };
            assert_eq!(off, on, "recorder changed the outcome ({sim_backend:?})");
            assert!(
                !sink.is_empty(),
                "the traced run must actually record ({sim_backend:?})"
            );
        }
    }
}

#[test]
fn recorder_captures_nested_engine_spans() {
    let sink = gm_trace::TraceSink::new();
    {
        let _guard = gm_trace::push_thread_sink(sink.clone());
        run_debug(ARBITER2, full_config(SimBackend::CompiledBatch));
    }
    let events = sink.events();
    let find = |name: &str| events.iter().filter(|e| e.name == name).collect::<Vec<_>>();
    // The root engine span plus one span per iteration and pass.
    let runs = find("engine.run");
    assert_eq!(runs.len(), 1, "exactly one engine.run root");
    for name in [
        "engine.seed",
        "engine.iteration",
        "engine.verify",
        "engine.temporal",
        "engine.refine",
        "engine.coverage",
        "mc.check_batch",
        "mc.sat_query",
        "sim.batch",
    ] {
        assert!(!find(name).is_empty(), "missing span {name}");
    }
    // Nesting: every iteration span lies inside the root span's window,
    // and every verify pass inside some iteration.
    let root = runs[0];
    let contains = |outer: &gm_trace::TraceEvent, inner: &gm_trace::TraceEvent| {
        outer.ts_ns <= inner.ts_ns && inner.ts_ns + inner.dur_ns() <= outer.ts_ns + outer.dur_ns()
    };
    let iterations = find("engine.iteration");
    for iter in &iterations {
        assert!(contains(root, iter), "iteration span escapes the run span");
    }
    for verify in find("engine.verify") {
        assert!(
            iterations.iter().any(|iter| contains(iter, verify)),
            "verify span outside every iteration span"
        );
    }
}

#[test]
fn chrome_export_is_well_formed() {
    let sink = gm_trace::TraceSink::new();
    {
        let _guard = gm_trace::push_thread_sink(sink.clone());
        run_debug(STICKY, full_config(SimBackend::CompiledBatch));
    }
    let json = sink.export_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.ends_with('}'), "{json}");
    assert!(json.contains("\"ph\":\"M\""), "process metadata event");
    assert!(json.contains("\"ph\":\"X\""), "complete events");
    // Delimiters balance outside string literals — the cheap structural
    // check a Perfetto load would fail loudly on.
    let (mut braces, mut brackets) = (0i64, 0i64);
    let mut in_str = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_str {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => braces += 1,
            '}' => braces -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
        assert!(braces >= 0 && brackets >= 0, "unbalanced export");
    }
    assert_eq!(
        (braces, brackets, in_str),
        (0, 0, false),
        "unbalanced export"
    );
}

#[test]
fn timing_breakdown_is_measured_without_the_recorder() {
    // IterTiming rides in the outcome whether or not a sink exists; it
    // is excluded from the Debug/PartialEq identity oracles instead.
    let m = parse_verilog(ARBITER2).unwrap();
    let outcome = Engine::new(&m, full_config(SimBackend::CompiledBatch))
        .unwrap()
        .run()
        .unwrap();
    let total = outcome.timing_total();
    assert!(total.total_ns > 0, "iteration wall time must be measured");
    assert!(
        total.verify_ns > 0,
        "verification happened, its phase time must be non-zero"
    );
    assert!(total.coverage_ns > 0, "coverage was recorded");
    for report in &outcome.iterations {
        assert!(
            report.timing.total_ns
                >= report
                    .timing
                    .verify_ns
                    .saturating_add(report.timing.temporal_ns)
                    .saturating_add(report.timing.refine_ns),
            "pass times exceed the iteration wall time"
        );
    }
}
