//! Engine errors.

use gm_mc::McError;
use gm_rtl::RtlError;
use std::error::Error as StdError;
use std::fmt;

/// Fatal errors from an engine run.
///
/// Per-target mining failures (contradictory windows) are *not* fatal;
/// they surface as [`crate::TargetSummary::stuck`] in the outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Elaboration or simulation failed.
    Rtl(RtlError),
    /// Model checking failed (limits exceeded on a forced backend).
    Mc(McError),
}

impl EngineError {
    /// Whether a fresh identical run could plausibly succeed — the
    /// classification the closure service's retry loop consults.
    /// Elaboration/simulation errors and model-checking resource limits
    /// are deterministic (a retry reproduces them); only injected
    /// transient faults ([`McError::retryable`]) are worth a retry.
    pub fn retryable(&self) -> bool {
        match self {
            EngineError::Rtl(_) => false,
            EngineError::Mc(e) => e.retryable(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Rtl(e) => write!(f, "rtl: {e}"),
            EngineError::Mc(e) => write!(f, "model checking: {e}"),
        }
    }
}

impl StdError for EngineError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            EngineError::Rtl(e) => Some(e),
            EngineError::Mc(e) => Some(e),
        }
    }
}

impl From<RtlError> for EngineError {
    fn from(e: RtlError) -> Self {
        EngineError::Rtl(e)
    }
}

impl From<McError> for EngineError {
    fn from(e: McError) -> Self {
        EngineError::Mc(e)
    }
}
