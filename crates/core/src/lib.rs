//! # goldmine — counterexample-guided stimulus generation
//!
//! A from-scratch reproduction of *"Towards Coverage Closure: Using
//! GoldMine Assertions for Generating Design Validation Stimulus"*
//! (Liu, Sheridan, Tuohy, Vasudevan — DATE 2011): the closed loop that
//! mines candidate assertions from simulation traces with an incremental
//! decision tree, model-checks every 100%-confidence candidate, and
//! feeds counterexample traces back into the stimulus until every leaf
//! assertion is formally true.
//!
//! At convergence the per-output decision tree is the paper's *final
//! decision tree*: it captures the output's complete reachable function,
//! the accumulated [`gm_sim::TestSuite`] is the coverage-closing
//! validation stimulus, and the proved [`gm_mine::Assertion`]s are a
//! regression suite (exercised by [`fault_campaign`]).
//!
//! Quick start:
//!
//! ```
//! use goldmine::{Engine, EngineConfig};
//!
//! let m = gm_rtl::parse_verilog(
//!     "module m(input a, input b, output z); assign z = a & b; endmodule")?;
//! let outcome = Engine::new(&m, EngineConfig::default())?.run()?;
//! assert!(outcome.converged);
//! for a in &outcome.assertions {
//!     println!("{}", a.to_ltl(&m));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod campaign;
mod config;
mod engine;
mod error;
mod mutation;
mod report;

pub use campaign::{Campaign, CampaignJob, CampaignRun, CampaignSummary};
pub use config::{
    EngineConfig, RefineConfig, SeedStimulus, ShardPolicy, StealPolicy, TargetSelection,
    TemporalConfig, UnknownPolicy,
};
pub use engine::{assertion_property, temporal_property, Engine};
pub use error::EngineError;
pub use gm_sim::{CompileOptions, CompiledModule, SimBackend, MAX_LANE_BLOCK};
pub use mutation::{check_fault, fault_campaign, suite_detects_fault, FaultKind, FaultReport};
pub use report::{ClosureOutcome, IterTiming, IterationReport, TargetSummary};
