//! Mutation-based fault injection (the paper's §7.4, Table 2).
//!
//! After a run has mined a set of proved assertions, stuck-at faults are
//! injected on internal signals and every assertion is re-checked on the
//! mutant. Assertions that fail on the mutant "cover" the fault — the
//! paper's systematic measure of the assertion suite's bug-detection
//! strength.

use crate::engine::assertion_property;
use crate::error::EngineError;
use gm_mc::{CheckResult, Checker, WindowProperty};
use gm_mine::Assertion;
use gm_rtl::{Bv, Module, SignalId};

/// A stuck-at fault on a signal's fanout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Every read of the signal sees constant 0.
    StuckAt0,
    /// Every read of the signal sees constant all-ones.
    StuckAt1,
}

impl FaultKind {
    /// The value the faulty net is stuck at, for a signal of `width` bits.
    pub fn stuck_value(self, width: u32) -> Bv {
        match self {
            FaultKind::StuckAt0 => Bv::zeros(width),
            FaultKind::StuckAt1 => Bv::ones(width),
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::StuckAt0 => write!(f, "stuck-at-0"),
            FaultKind::StuckAt1 => write!(f, "stuck-at-1"),
        }
    }
}

/// The outcome of checking an assertion suite against one fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultReport {
    /// The mutated signal.
    pub signal: SignalId,
    /// The injected fault.
    pub fault: FaultKind,
    /// Indices (into the input slice) of assertions that failed on the
    /// mutant — the assertions covering this fault.
    pub detecting: Vec<usize>,
    /// The number of assertions checked.
    pub checked: usize,
}

impl FaultReport {
    /// Whether at least one assertion detects the fault.
    pub fn is_detected(&self) -> bool {
        !self.detecting.is_empty()
    }
}

/// Checks `assertions` (previously proved on the golden `module`) against
/// a mutant with `fault` injected on `signal`.
///
/// An assertion "detects" the fault when it no longer holds on the
/// mutant (either refuted outright or undecidable where it was proved
/// before — the paper's formal regression treats both as failures; we
/// count only definite refutations).
///
/// # Errors
///
/// Propagates elaboration/blasting failures on the mutant.
pub fn check_fault(
    module: &Module,
    assertions: &[Assertion],
    signal: SignalId,
    fault: FaultKind,
) -> Result<FaultReport, EngineError> {
    let width = module.signal_width(signal);
    let mutant = module.with_stuck_signal(signal, fault.stuck_value(width));
    let mut checker = Checker::new(&mutant)?;
    // One batch against the mutant: the whole suite shares a single
    // unrolling session instead of one per assertion.
    let props: Vec<WindowProperty> = assertions.iter().map(assertion_property).collect();
    let detecting = checker
        .check_batch(&props)?
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, CheckResult::Violated(_)))
        .map(|(i, _)| i)
        .collect();
    Ok(FaultReport {
        signal,
        fault,
        detecting,
        checked: assertions.len(),
    })
}

/// Runs a full stuck-at campaign over the given signals (both polarities
/// each), as in the paper's Table 2.
///
/// # Errors
///
/// Propagates mutant elaboration failures.
pub fn fault_campaign(
    module: &Module,
    assertions: &[Assertion],
    signals: &[SignalId],
) -> Result<Vec<FaultReport>, EngineError> {
    let mut out = Vec::with_capacity(signals.len() * 2);
    for &sig in signals {
        for fault in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
            out.push(check_fault(module, assertions, sig, fault)?);
        }
    }
    Ok(out)
}

/// Checks whether the *test vector suite* (rather than the assertions)
/// detects a fault: the suite is replayed on the golden design and the
/// mutant, and any primary-output difference at any cycle is a
/// detection. The paper's §7.4 notes the generated vector suite "would
/// also be an effective regression suite" — this is that experiment.
///
/// Returns the first differing `(segment index, cycle, output)` or
/// `None` if the fault escapes the suite.
///
/// # Errors
///
/// Propagates elaboration failures on either design.
pub fn suite_detects_fault(
    module: &Module,
    suite: &gm_sim::TestSuite,
    signal: SignalId,
    fault: FaultKind,
) -> Result<Option<(usize, usize, SignalId)>, EngineError> {
    let width = module.signal_width(signal);
    let mutant = module.with_stuck_signal(signal, fault.stuck_value(width));
    let golden_traces = suite.run(module, &mut gm_sim::NopObserver)?;
    let mutant_traces = suite.run(&mutant, &mut gm_sim::NopObserver)?;
    let outputs = module.outputs();
    for (si, (g, m)) in golden_traces.iter().zip(&mutant_traces).enumerate() {
        for cycle in 0..g.len().min(m.len()) {
            for &out in &outputs {
                if g.value(cycle, out) != m.value(cycle, out) {
                    return Ok(Some((si, cycle, out)));
                }
            }
        }
    }
    Ok(None)
}
