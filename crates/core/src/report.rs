//! Run reports: per-iteration progress and final outcomes.

use gm_coverage::CoverageReport;
use gm_mc::SessionStats;
use gm_mine::{Assertion, MineError, TemporalAssertion};
use gm_rtl::SignalId;
use gm_sim::TestSuite;

/// Progress metrics captured after each counterexample iteration.
///
/// `iteration 0` describes the state after mining the seed data, before
/// any counterexample feedback — matching the paper's iteration axis in
/// Figures 12–14 and Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationReport {
    /// The iteration number (0 = seed only).
    pub iteration: u32,
    /// Candidate assertions pending at the start of the iteration.
    pub candidates: usize,
    /// Total proved assertions across all targets so far.
    pub proved_total: usize,
    /// Candidates refuted (counterexamples generated) in this iteration.
    pub refuted: usize,
    /// The paper's input-space coverage of the proved assertions
    /// (Σ 2^-depth over input literals), averaged across targets.
    pub input_space_coverage: f64,
    /// Simulation coverage of the accumulated test suite (present when
    /// the engine records coverage).
    pub coverage: Option<CoverageReport>,
    /// Total stimulus cycles in the accumulated suite.
    pub suite_cycles: usize,
    /// Cumulative `(target, trace)` pairs dropped because the trace was
    /// shorter than the target's mining span — stimulus the miner never
    /// saw. A persistently non-zero count under directed seeding means
    /// the configured window outruns the supplied tests.
    pub short_traces: usize,
    /// Temporal candidates dispatched to the checker this iteration
    /// (zero when temporal mining is disabled).
    pub temporal_candidates: usize,
    /// Cumulative proved (or assumed) temporal assertions so far.
    pub temporal_proved: usize,
    /// Temporal candidates refuted this iteration; their counterexample
    /// traces joined the suite as `tcex-*` segments.
    pub temporal_refuted: usize,
    /// Directed `dir-*` segments absorbed by the coverage-ranked
    /// refinement pass this iteration (zero when refinement is
    /// disabled).
    pub directed_absorbed: usize,
    /// Verification-session work done during this iteration: queries by
    /// engine, memo hits, solver conflicts/propagations, unrolling
    /// frames encoded vs reused.
    pub verification: SessionStats,
}

/// Final state of one mining target.
#[derive(Clone, Debug, PartialEq)]
pub struct TargetSummary {
    /// The mined output signal.
    pub signal: SignalId,
    /// The mined bit.
    pub bit: u32,
    /// Whether every leaf of the target's tree is proved.
    pub converged: bool,
    /// Proved assertions for this target.
    pub proved: usize,
    /// Nodes in the final (incremental) decision tree.
    pub tree_nodes: usize,
    /// Whether mining had to extend to farthest-back state features.
    pub extended: bool,
    /// A mining failure, if the target got stuck.
    pub stuck: Option<MineError>,
}

/// The outcome of a refinement run.
#[derive(Clone, Debug)]
pub struct ClosureOutcome {
    /// Whether every target's tree converged (all assertions true): the
    /// paper's coverage-closure condition.
    pub converged: bool,
    /// Per-iteration progress, starting at iteration 0.
    pub iterations: Vec<IterationReport>,
    /// All proved assertions across targets.
    pub assertions: Vec<Assertion>,
    /// Proved (or assumed-true) temporal assertions, in the
    /// deterministic order they were decided. Empty unless
    /// [`crate::TemporalConfig`] enables temporal mining.
    pub temporal: Vec<TemporalAssertion>,
    /// The accumulated validation stimulus: seed patterns plus one
    /// segment per counterexample.
    pub suite: TestSuite,
    /// Per-target summaries.
    pub targets: Vec<TargetSummary>,
    /// Candidates assumed true under [`crate::UnknownPolicy::AssumeTrue`].
    pub unknown_assumed: usize,
    /// Whether a cooperative cancel token cut the run short
    /// *mid-iteration* (see [`crate::Engine::with_cancel`]). The outcome
    /// is still valid — proved assertions are sound, the suite replays —
    /// it just reflects only the work completed before the cancel
    /// landed. Iteration-boundary stops via `run_observed`'s observer
    /// leave this `false`.
    pub interrupted: bool,
}

impl ClosureOutcome {
    /// The final input-space coverage (from the last iteration report).
    pub fn final_input_space_coverage(&self) -> f64 {
        self.iterations
            .last()
            .map(|r| r.input_space_coverage)
            .unwrap_or(0.0)
    }

    /// The final simulation coverage report, if recorded.
    pub fn final_coverage(&self) -> Option<CoverageReport> {
        self.iterations.last().and_then(|r| r.coverage)
    }

    /// The number of counterexample iterations performed.
    pub fn iteration_count(&self) -> u32 {
        self.iterations.last().map(|r| r.iteration).unwrap_or(0)
    }

    /// Total verification-session work across the whole run (the sum of
    /// each iteration's [`IterationReport::verification`] delta).
    pub fn verification_total(&self) -> SessionStats {
        self.iterations
            .iter()
            .fold(SessionStats::default(), |acc, r| acc + r.verification)
    }
}
