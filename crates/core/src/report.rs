//! Run reports: per-iteration progress and final outcomes.

use gm_coverage::CoverageReport;
use gm_mc::SessionStats;
use gm_mine::{Assertion, MineError, TemporalAssertion};
use gm_rtl::SignalId;
use gm_sim::TestSuite;

/// Wall-clock phase breakdown of one engine iteration, in nanoseconds.
///
/// Measured unconditionally (a handful of `Instant` reads per
/// iteration), independent of whether the trace recorder is on.
/// Timings are inherently non-deterministic, so this struct is
/// deliberately **excluded** from [`IterationReport`]'s `Debug` and
/// `PartialEq` — the byte-identity oracles (`serve_agree`,
/// `trace_agree`, shard/backend agreement) compare outcomes through
/// those and must not see wall clocks.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterTiming {
    /// Combinational verification pass (worklist build + batch
    /// dispatch + counterexample simulation/absorption).
    pub verify_ns: u64,
    /// Temporal-candidate pass (zero when temporal mining is off).
    pub temporal_ns: u64,
    /// Coverage-ranked refinement pass (zero when refinement is off).
    pub refine_ns: u64,
    /// Coverage snapshot pass over the accumulated suite (zero when
    /// coverage recording is off).
    pub coverage_ns: u64,
    /// Whole iteration wall time (pass + snapshot + bookkeeping).
    pub total_ns: u64,
}

impl IterTiming {
    /// Element-wise sum (for whole-run aggregation).
    #[must_use]
    pub fn saturating_add(self, rhs: IterTiming) -> IterTiming {
        IterTiming {
            verify_ns: self.verify_ns.saturating_add(rhs.verify_ns),
            temporal_ns: self.temporal_ns.saturating_add(rhs.temporal_ns),
            refine_ns: self.refine_ns.saturating_add(rhs.refine_ns),
            coverage_ns: self.coverage_ns.saturating_add(rhs.coverage_ns),
            total_ns: self.total_ns.saturating_add(rhs.total_ns),
        }
    }
}

/// Progress metrics captured after each counterexample iteration.
///
/// `iteration 0` describes the state after mining the seed data, before
/// any counterexample feedback — matching the paper's iteration axis in
/// Figures 12–14 and Table 1.
///
/// `Debug` and `PartialEq` are implemented manually to cover every
/// field **except** [`IterationReport::timing`]: the rendered report is
/// the byte-identity artifact the agreement suites diff, and wall-clock
/// noise must not break determinism contracts.
#[derive(Clone)]
pub struct IterationReport {
    /// The iteration number (0 = seed only).
    pub iteration: u32,
    /// Candidate assertions pending at the start of the iteration.
    pub candidates: usize,
    /// Total proved assertions across all targets so far.
    pub proved_total: usize,
    /// Candidates refuted (counterexamples generated) in this iteration.
    pub refuted: usize,
    /// The paper's input-space coverage of the proved assertions
    /// (Σ 2^-depth over input literals), averaged across targets.
    pub input_space_coverage: f64,
    /// Simulation coverage of the accumulated test suite (present when
    /// the engine records coverage).
    pub coverage: Option<CoverageReport>,
    /// Total stimulus cycles in the accumulated suite.
    pub suite_cycles: usize,
    /// Cumulative `(target, trace)` pairs dropped because the trace was
    /// shorter than the target's mining span — stimulus the miner never
    /// saw. A persistently non-zero count under directed seeding means
    /// the configured window outruns the supplied tests.
    pub short_traces: usize,
    /// Temporal candidates dispatched to the checker this iteration
    /// (zero when temporal mining is disabled).
    pub temporal_candidates: usize,
    /// Cumulative proved (or assumed) temporal assertions so far.
    pub temporal_proved: usize,
    /// Temporal candidates refuted this iteration; their counterexample
    /// traces joined the suite as `tcex-*` segments.
    pub temporal_refuted: usize,
    /// Directed `dir-*` segments absorbed by the coverage-ranked
    /// refinement pass this iteration (zero when refinement is
    /// disabled).
    pub directed_absorbed: usize,
    /// Verification-session work done during this iteration: queries by
    /// engine, memo hits, solver conflicts/propagations, unrolling
    /// frames encoded vs reused.
    pub verification: SessionStats,
    /// Wall-clock phase breakdown of this iteration (excluded from
    /// `Debug`/`PartialEq`; see [`IterTiming`]).
    pub timing: IterTiming,
}

impl std::fmt::Debug for IterationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Mirrors the derived layout, minus `timing` (see struct docs).
        f.debug_struct("IterationReport")
            .field("iteration", &self.iteration)
            .field("candidates", &self.candidates)
            .field("proved_total", &self.proved_total)
            .field("refuted", &self.refuted)
            .field("input_space_coverage", &self.input_space_coverage)
            .field("coverage", &self.coverage)
            .field("suite_cycles", &self.suite_cycles)
            .field("short_traces", &self.short_traces)
            .field("temporal_candidates", &self.temporal_candidates)
            .field("temporal_proved", &self.temporal_proved)
            .field("temporal_refuted", &self.temporal_refuted)
            .field("directed_absorbed", &self.directed_absorbed)
            .field("verification", &self.verification)
            .finish()
    }
}

impl PartialEq for IterationReport {
    fn eq(&self, other: &Self) -> bool {
        // Every field except `timing` (see struct docs).
        self.iteration == other.iteration
            && self.candidates == other.candidates
            && self.proved_total == other.proved_total
            && self.refuted == other.refuted
            && self.input_space_coverage == other.input_space_coverage
            && self.coverage == other.coverage
            && self.suite_cycles == other.suite_cycles
            && self.short_traces == other.short_traces
            && self.temporal_candidates == other.temporal_candidates
            && self.temporal_proved == other.temporal_proved
            && self.temporal_refuted == other.temporal_refuted
            && self.directed_absorbed == other.directed_absorbed
            && self.verification == other.verification
    }
}

/// Final state of one mining target.
#[derive(Clone, Debug, PartialEq)]
pub struct TargetSummary {
    /// The mined output signal.
    pub signal: SignalId,
    /// The mined bit.
    pub bit: u32,
    /// Whether every leaf of the target's tree is proved.
    pub converged: bool,
    /// Proved assertions for this target.
    pub proved: usize,
    /// Nodes in the final (incremental) decision tree.
    pub tree_nodes: usize,
    /// Whether mining had to extend to farthest-back state features.
    pub extended: bool,
    /// A mining failure, if the target got stuck.
    pub stuck: Option<MineError>,
}

/// The outcome of a refinement run.
#[derive(Clone, Debug)]
pub struct ClosureOutcome {
    /// Whether every target's tree converged (all assertions true): the
    /// paper's coverage-closure condition.
    pub converged: bool,
    /// Per-iteration progress, starting at iteration 0.
    pub iterations: Vec<IterationReport>,
    /// All proved assertions across targets.
    pub assertions: Vec<Assertion>,
    /// Proved (or assumed-true) temporal assertions, in the
    /// deterministic order they were decided. Empty unless
    /// [`crate::TemporalConfig`] enables temporal mining.
    pub temporal: Vec<TemporalAssertion>,
    /// The accumulated validation stimulus: seed patterns plus one
    /// segment per counterexample.
    pub suite: TestSuite,
    /// Per-target summaries.
    pub targets: Vec<TargetSummary>,
    /// Candidates assumed true under [`crate::UnknownPolicy::AssumeTrue`].
    pub unknown_assumed: usize,
    /// Whether a cooperative cancel token cut the run short
    /// *mid-iteration* (see [`crate::Engine::with_cancel`]). The outcome
    /// is still valid — proved assertions are sound, the suite replays —
    /// it just reflects only the work completed before the cancel
    /// landed. Iteration-boundary stops via `run_observed`'s observer
    /// leave this `false`.
    pub interrupted: bool,
}

impl ClosureOutcome {
    /// The final input-space coverage (from the last iteration report).
    pub fn final_input_space_coverage(&self) -> f64 {
        self.iterations
            .last()
            .map(|r| r.input_space_coverage)
            .unwrap_or(0.0)
    }

    /// The final simulation coverage report, if recorded.
    pub fn final_coverage(&self) -> Option<CoverageReport> {
        self.iterations.last().and_then(|r| r.coverage)
    }

    /// The number of counterexample iterations performed.
    pub fn iteration_count(&self) -> u32 {
        self.iterations.last().map(|r| r.iteration).unwrap_or(0)
    }

    /// Total verification-session work across the whole run (the sum of
    /// each iteration's [`IterationReport::verification`] delta).
    pub fn verification_total(&self) -> SessionStats {
        self.iterations
            .iter()
            .fold(SessionStats::default(), |acc, r| acc + r.verification)
    }

    /// Whole-run wall-clock phase breakdown (the sum of each
    /// iteration's [`IterationReport::timing`]): where the run spent
    /// its time, without needing the trace recorder on.
    pub fn timing_total(&self) -> IterTiming {
        self.iterations
            .iter()
            .fold(IterTiming::default(), |acc, r| acc.saturating_add(r.timing))
    }
}
