//! The counterexample-guided refinement engine (the paper's Figure 3).
//!
//! One [`Engine`] run executes the full loop:
//!
//! 1. **Data generator** — simulate the seed stimulus (random, directed,
//!    or none) into traces;
//! 2. **Static analyzer** — compute each target output's logic cone and
//!    build its feature space;
//! 3. **A-Miner** — fit one incremental decision tree per output bit;
//! 4. **Formal verification** — collect every 100%-confidence candidate
//!    across all targets into one worklist, dedupe identical properties
//!    (distinct target bits often mine the same implication), and
//!    dispatch the whole batch through the checker's persistent
//!    verification session ([`gm_mc::Checker::check_batch`]): one shared
//!    unrolling per iteration, memoized repeats free. Proved leaves
//!    freeze, refuted ones yield counterexample traces;
//! 5. **Ctx_simulation** — replay each counterexample from reset, append
//!    it to the test suite, extend every target's dataset in bulk, and
//!    re-split only the refuted leaves;
//! 6. repeat until every leaf is proved (*coverage closure*) or the
//!    iteration budget runs out.
//!
//! Each [`IterationReport`] carries the verification session's stats
//! delta ([`gm_mc::SessionStats`]): queries by engine, memo hits,
//! solver conflicts/propagations, and unrolling frames reused.
//!
//! ## Sharded verification and the determinism contract
//!
//! The batched verification step is embarrassingly parallel across the
//! deduped worklist, and [`crate::ShardPolicy`] splits it across a pool
//! of persistent shard sessions (one scoped worker thread each, all
//! over the same bit-blasted design — blasting happens once per run).
//! The shard lifecycle: sessions are created lazily on the first
//! sharded batch, move into their workers for each iteration's
//! dispatch, and return — with their unrollings and learnt clauses —
//! when the workers join, so shard k sees the same incremental-session
//! benefits across iterations that the single session does.
//!
//! **Determinism contract:** the [`ClosureOutcome`] — suite segment
//! labels and vectors, iteration reports, assertion order, per-target
//! summaries — is bit-identical for every shard policy and across
//! repeated runs with the same seed and config. This is engineered, not
//! hoped for: verdicts are solver-state-independent, counterexample
//! traces are canonically re-extracted by `gm_mc` (never taken from a
//! shard-history-dependent solver model), the worklist partition is a
//! deterministic round-robin, and shard results are merged back in
//! worklist order before any tree is touched. The only fields that may
//! differ between shard policies are the [`gm_mc::SessionStats`] work
//! counters inside [`IterationReport::verification`] (frame/solver work
//! moves between sessions); those stay deterministic for a fixed policy
//! — except under `racing`, where the explicit-vs-SAT attribution
//! counters record whichever engine actually won each race and so may
//! vary between runs (the outcome artifacts still never do).

use crate::config::{
    EngineConfig, SeedStimulus, ShardPolicy, StealPolicy, TargetSelection, UnknownPolicy,
};
use crate::error::EngineError;
use crate::report::{ClosureOutcome, IterTiming, IterationReport, TargetSummary};
use gm_coverage::{CoverageSuite, UncoveredIndex};
use gm_mc::{
    BitAtom, CheckResult, Checker, ConsequentKind, McError, SessionStats, TemporalProperty,
    WindowProperty,
};
use gm_mine::{
    assertion_at, input_space_coverage, proved_assertions, temporal_candidates, Assertion, Dataset,
    DecisionTree, LeafStatus, MiningSpec, TemporalAssertion, TemporalTemplate,
};
use gm_rtl::{cone_of, elaborate, Module, SignalId};
use gm_sim::{
    collect_vectors, run_segment, synthesize_directed, CompileOptions, CompiledModule, InputVector,
    NopBatchObserver, NopObserver, RandomStimulus, SimBackend, TestSuite, Trace,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Converts a mined assertion into the model checker's property form.
pub fn assertion_property(a: &Assertion) -> WindowProperty {
    WindowProperty {
        antecedent: a
            .literals
            .iter()
            .map(|(f, v)| BitAtom::new(f.signal, f.bit, f.offset, *v))
            .collect(),
        consequent: BitAtom::new(a.target.signal, a.target.bit, a.target.offset, a.value),
    }
}

/// Converts a mined temporal assertion into the model checker's
/// multi-consequent property form: `Next`/`Stability` templates demand
/// the value at every consequent offset (conjunctive,
/// [`ConsequentKind::All`]), bounded eventuality demands it at *some*
/// offset (disjunctive, [`ConsequentKind::Any`]).
pub fn temporal_property(a: &TemporalAssertion) -> TemporalProperty {
    let antecedent = a
        .literals
        .iter()
        .map(|(f, v)| BitAtom::new(f.signal, f.bit, f.offset, *v))
        .collect();
    let consequents = a
        .consequent_offsets()
        .map(|off| BitAtom::new(a.target.signal, a.target.bit, off, a.value))
        .collect();
    let kind = match a.template {
        TemporalTemplate::Eventually { .. } => ConsequentKind::Any,
        TemporalTemplate::Next { .. } | TemporalTemplate::Stability { .. } => ConsequentKind::All,
    };
    TemporalProperty {
        antecedent,
        consequents,
        kind,
    }
}

/// Per-iteration progress counters produced by one `iteration_pass`.
#[derive(Clone, Copy, Default)]
struct PassCounts {
    refuted: usize,
    temporal_candidates: usize,
    temporal_refuted: usize,
    directed_absorbed: usize,
    /// Phase wall clocks gathered along the way (verify/temporal/refine
    /// here, coverage and total filled in around the snapshot).
    timing: IterTiming,
}

impl PassCounts {
    /// Whether the iteration moved the run forward: new counterexample
    /// rows (combinational or temporal) or new coverage-gaining
    /// directed stimulus. Zero means the loop cannot make progress.
    fn progress(&self) -> usize {
        self.refuted + self.temporal_refuted + self.directed_absorbed
    }
}

struct TargetState {
    signal: SignalId,
    bit: u32,
    spec: MiningSpec,
    dataset: Dataset,
    tree: DecisionTree,
    stuck: Option<gm_mine::MineError>,
}

/// The GoldMine coverage-closure engine.
///
/// # Examples
///
/// ```
/// use goldmine::{Engine, EngineConfig, SeedStimulus};
///
/// let m = gm_rtl::parse_verilog("
///     module arbiter2(input clk, input rst, input req0, input req1,
///                     output reg gnt0, output reg gnt1);
///       always @(posedge clk)
///         if (rst) begin gnt0 <= 0; gnt1 <= 0; end
///         else begin
///           gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
///           gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
///         end
///     endmodule")?;
/// let config = EngineConfig {
///     stimulus: SeedStimulus::Random { cycles: 16 },
///     ..EngineConfig::default()
/// };
/// let outcome = Engine::new(&m, config)?.run()?;
/// assert!(outcome.converged, "arbiter closes coverage");
/// assert!(!outcome.assertions.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Engine<'m> {
    module: &'m Module,
    config: EngineConfig,
    checker: Checker,
    targets: Vec<TargetState>,
    suite: TestSuite,
    unknown_assumed: usize,
    /// Session stats already attributed to earlier iteration reports.
    reported_stats: SessionStats,
    /// The lowered instruction tape for the compiled simulation
    /// backends (`None` when the interpreter is configured). Trace- and
    /// coverage-identical to the interpreter, so the choice never shows
    /// in the outcome. Shared (`Arc`) so a design cache can park one
    /// tape per canonical design and hand it to every engine instead of
    /// recompiling (see [`Engine::with_artifacts_compiled`]).
    compiled: Option<Arc<CompiledModule>>,
    /// Cooperative cancel token (see [`Engine::with_cancel`]).
    cancel: Option<Arc<AtomicBool>>,
    /// Cumulative `(target, trace)` pairs dropped as too short to mine
    /// (see [`IterationReport::short_traces`]).
    short_traces: usize,
    /// Temporal properties already decided this run, so a candidate the
    /// tree keeps re-proposing is dispatched (and its counterexample
    /// absorbed) exactly once.
    temporal_decided: HashSet<TemporalProperty>,
    /// Proved (or assumed-true) temporal assertions, in decision order.
    temporal_proved: Vec<TemporalAssertion>,
    /// The uncovered-point index of the latest coverage snapshot, kept
    /// for the refinement pass's gain ranking (only populated when
    /// refinement is enabled).
    last_uncovered: Option<UncoveredIndex>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine({}, {} targets, {} segments)",
            self.module.name(),
            self.targets.len(),
            self.suite.len()
        )
    }
}

impl<'m> Engine<'m> {
    /// Prepares an engine: elaborates the module once (shared between
    /// mining and the checker's bit-blaster), and builds the mining spec
    /// for every target bit.
    ///
    /// # Errors
    ///
    /// Propagates elaboration and blasting failures.
    pub fn new(module: &'m Module, config: EngineConfig) -> Result<Self, EngineError> {
        let elab = elaborate(module)?;
        let checker = Checker::from_elab(module, &elab)?;
        Engine::with_artifacts(module, &elab, checker, config)
    }

    /// Prepares an engine from pre-built design artifacts: an
    /// elaboration and a checker that already owns the bit-blasted
    /// design (and possibly a warm reachable set / explicit-engine
    /// cache). This is the constructor a long-lived service uses to
    /// amortize elaboration, blasting and reachability across repeated
    /// closure requests for the same design — everything a recycled
    /// checker keeps is stats-invisible, so the run's
    /// [`ClosureOutcome`] is byte-identical to one built by
    /// [`Engine::new`] (see [`Checker::reset_for_reuse`]).
    ///
    /// The engine re-applies `config`'s backend/racing settings to the
    /// checker and starts its per-iteration stats attribution from the
    /// checker's current counters, so carried-over sessions never leak
    /// old work into the first iteration report.
    ///
    /// # Errors
    ///
    /// Propagates mining-spec construction failures.
    pub fn with_artifacts(
        module: &'m Module,
        elab: &gm_rtl::Elab,
        checker: Checker,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Engine::with_artifacts_compiled(module, elab, checker, None, config)
    }

    /// [`Engine::with_artifacts`] that additionally accepts a
    /// pre-compiled instruction tape for the same design, so a design
    /// cache that parks a [`CompiledModule`] alongside its checker can
    /// skip the per-engine recompilation. `None` (or an interpreter
    /// backend) falls back to the usual lazy compile; the tape is shared
    /// by `Arc`, never cloned. Compilation is deterministic, so reusing
    /// a tape never changes the outcome.
    ///
    /// # Errors
    ///
    /// Propagates mining-spec construction failures.
    pub fn with_artifacts_compiled(
        module: &'m Module,
        elab: &gm_rtl::Elab,
        checker: Checker,
        compiled: Option<Arc<CompiledModule>>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let mut checker = checker
            .with_backend(config.backend)
            .with_racing(config.racing);
        // A parked checker must never carry a previous request's raised
        // cancel token into this run.
        checker.set_cancel(None);
        let target_bits: Vec<(SignalId, u32)> = match &config.targets {
            TargetSelection::AllOutputs => module
                .outputs()
                .into_iter()
                .flat_map(|s| (0..module.signal_width(s)).map(move |b| (s, b)))
                .collect(),
            TargetSelection::Signals(sigs) => sigs
                .iter()
                .flat_map(|&s| (0..module.signal_width(s)).map(move |b| (s, b)))
                .collect(),
            TargetSelection::Bits(bits) => bits.clone(),
        };
        let targets = target_bits
            .into_iter()
            .map(|(signal, bit)| {
                let cone = cone_of(module, elab, signal);
                let spec = MiningSpec::for_output(module, elab, &cone, bit, config.window);
                let tree = DecisionTree::new(&spec);
                TargetState {
                    signal,
                    bit,
                    spec,
                    dataset: Dataset::with_horizon(config.temporal.horizon),
                    tree,
                    stuck: None,
                }
            })
            .collect();
        // Attribute only work done *during this run* to its iteration
        // reports: a warm checker may arrive with non-zero counters.
        let reported_stats = checker.session_stats();
        // Coverage-recording runs need the fused probes compiled in;
        // trace-only runs take the probe-free tape and pay nothing for
        // observation. A supplied (cached) probed tape also serves a
        // probe-free run — probes are a superset — but never the other
        // way around.
        let want = CompileOptions {
            probes: config.record_coverage,
        };
        let compiled = if config.sim_backend == SimBackend::Interpreter {
            None
        } else {
            Some(match compiled {
                Some(c) if c.has_probes() || !want.probes => c,
                _ => Arc::new(CompiledModule::with_elab_opts(module, elab, want)),
            })
        };
        Ok(Engine {
            module,
            config,
            checker,
            targets,
            suite: TestSuite::new(),
            unknown_assumed: 0,
            reported_stats,
            compiled,
            cancel: None,
            short_traces: 0,
            temporal_decided: HashSet::new(),
            temporal_proved: Vec::new(),
            last_uncovered: None,
        })
    }

    /// Installs a cooperative cancel token for the run. Unlike the
    /// iteration-boundary stop of [`Engine::run_observed`]'s observer, a
    /// raised token takes effect *mid-iteration*: it is polled between
    /// SAT queries inside the checker's unrolling loops and once per
    /// simulated cycle of the coverage passes. The run then ends with a
    /// valid outcome of the work completed so far, marked
    /// [`ClosureOutcome::interrupted`] — an in-flight verification batch
    /// or coverage pass is discarded whole, never half-applied, so
    /// proved assertions stay sound and the suite still replays.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.checker.set_cancel(Some(cancel.clone()));
        self.cancel = Some(cancel);
        self
    }

    /// Simulates one reset-rooted segment through the configured
    /// simulation backend. Trace-identical across backends.
    fn simulate_segment(&self, vectors: &[InputVector]) -> Result<Trace, EngineError> {
        match &self.compiled {
            None => Ok(run_segment(self.module, vectors, &mut NopObserver)?),
            Some(c) => Ok(c.run_segment(self.module, vectors, &mut NopBatchObserver)),
        }
    }

    /// The accumulated test suite (useful mid-run from examples).
    pub fn suite(&self) -> &TestSuite {
        &self.suite
    }

    /// Runs the refinement loop to convergence or budget exhaustion.
    ///
    /// # Errors
    ///
    /// Propagates simulation and model-checking failures. Mining
    /// failures (contradictory windows) are per-target and reported in
    /// the outcome's [`TargetSummary::stuck`] instead.
    pub fn run(self) -> Result<ClosureOutcome, EngineError> {
        self.run_observed(|_| true)
    }

    /// Runs the loop, invoking `on_iteration` after every recorded
    /// [`IterationReport`] (including the iteration-0 seed snapshot).
    /// Returning `false` stops the run cooperatively at that iteration
    /// boundary — the closure-service cancel path — yielding a valid
    /// (if unconverged) outcome of the work done so far. Observers that
    /// always return `true` leave the outcome exactly as [`Engine::run`]
    /// produces it.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run`].
    pub fn run_observed(
        mut self,
        on_iteration: impl FnMut(&IterationReport) -> bool,
    ) -> Result<ClosureOutcome, EngineError> {
        self.run_inner(on_iteration)
    }

    /// Like [`Engine::run_observed`], but also hands the checker back —
    /// with its design artifacts (bit-blasted AIG, reachable set,
    /// explicit-engine caches) and session state intact — so a design
    /// cache can park it for the next request of the same design. The
    /// checker is returned on the error path too.
    pub fn run_reclaim(
        mut self,
        on_iteration: impl FnMut(&IterationReport) -> bool,
    ) -> (Result<ClosureOutcome, EngineError>, Checker) {
        let outcome = self.run_inner(on_iteration);
        (outcome, self.checker)
    }

    fn run_inner(
        &mut self,
        mut on_iteration: impl FnMut(&IterationReport) -> bool,
    ) -> Result<ClosureOutcome, EngineError> {
        let mut run_span = gm_trace::span("engine", "engine.run");
        if run_span.is_active() {
            run_span.arg("module", self.module.name());
            run_span.arg("targets", self.targets.len());
        }
        // Phase 1: seed data.
        let seed_start = std::time::Instant::now();
        let seed_span = gm_trace::span("engine", "engine.seed");
        let seed_vectors = match &self.config.stimulus {
            SeedStimulus::Random { cycles } => {
                let mut stim = RandomStimulus::new(self.module, self.config.seed, *cycles);
                collect_vectors(&mut stim)
            }
            SeedStimulus::Directed(v) => v.clone(),
            SeedStimulus::None => Vec::new(),
        };
        if !seed_vectors.is_empty() {
            self.suite.push("seed", seed_vectors.clone());
            let trace = self.simulate_segment(&seed_vectors)?;
            let mut short = 0usize;
            for t in &mut self.targets {
                let rows = t.dataset.add_trace(&t.spec, &trace);
                // The extraction report tells short traces apart from
                // (impossible here) zero-row long traces.
                debug_assert!(!rows.rows.is_empty() || rows.short_traces > 0);
                short += rows.short_traces;
            }
            self.short_traces += short;
        }
        for t in &mut self.targets {
            if let Err(e) = t.tree.fit(&t.dataset) {
                t.stuck = Some(e);
            }
        }
        drop(seed_span);

        // A raised cancel token surfaces as `McError::Cancelled` from
        // the checker or the coverage pass. The interrupted pass's
        // results are discarded whole — a failed batch never touches the
        // trees (see `iteration_pass`), and a failed snapshot pushes no
        // report — so the outcome stays valid, just truncated.
        let mut interrupted = false;
        let mut history: Vec<IterationReport> = Vec::new();
        let mut go = match self.snapshot_report(0, PassCounts::default()) {
            Ok(mut report) => {
                // Iteration 0's wall time covers seeding + the snapshot.
                report.timing.total_ns = seed_start.elapsed().as_nanos() as u64;
                history.push(report);
                on_iteration(&history[0])
            }
            Err(EngineError::Mc(McError::Cancelled)) => {
                interrupted = true;
                false
            }
            Err(e) => return Err(e),
        };

        // Phase 2: counterexample iterations.
        let mut iteration = 0;
        while go && iteration < self.config.max_iterations {
            iteration += 1;
            let iter_start = std::time::Instant::now();
            let mut iter_span = gm_trace::span("engine", "engine.iteration");
            iter_span.arg("iteration", iteration);
            let counts = match self.iteration_pass(iteration) {
                Ok(counts) => counts,
                Err(EngineError::Mc(McError::Cancelled)) => {
                    interrupted = true;
                    break;
                }
                Err(e) => return Err(e),
            };
            match self.snapshot_report(iteration, counts) {
                Ok(mut report) => {
                    report.timing.total_ns = iter_start.elapsed().as_nanos() as u64;
                    history.push(report);
                }
                Err(EngineError::Mc(McError::Cancelled)) => {
                    interrupted = true;
                    break;
                }
                Err(e) => return Err(e),
            }
            drop(iter_span);
            go = on_iteration(history.last().expect("just pushed"));
            if self.all_converged() && counts.directed_absorbed == 0 {
                break;
            }
            if counts.progress() == 0 {
                // No forward progress possible: remaining leaves are
                // stuck or unknown-open, and (when refinement is on) no
                // directed variant gains coverage anymore.
                break;
            }
        }

        let assertions: Vec<Assertion> = self
            .targets
            .iter()
            .flat_map(|t| proved_assertions(&t.tree, &t.spec))
            .collect();
        let targets = self
            .targets
            .iter()
            .map(|t| TargetSummary {
                signal: t.signal,
                bit: t.bit,
                converged: t.stuck.is_none() && t.tree.converged(),
                proved: proved_assertions(&t.tree, &t.spec).len(),
                tree_nodes: t.tree.node_count(),
                extended: t.tree.is_extended(),
                stuck: t.stuck.clone(),
            })
            .collect();
        Ok(ClosureOutcome {
            converged: self.all_converged(),
            iterations: history,
            assertions,
            temporal: std::mem::take(&mut self.temporal_proved),
            suite: std::mem::replace(&mut self.suite, TestSuite::new()),
            targets,
            unknown_assumed: self.unknown_assumed,
            interrupted,
        })
    }

    fn all_converged(&self) -> bool {
        self.targets
            .iter()
            .all(|t| t.stuck.is_none() && t.tree.converged())
    }

    /// Collects the full cross-target worklist of pure open leaves.
    /// Trees are stable while the worklist is pending in batched mode
    /// (counterexample absorption is deferred past the dispatch).
    ///
    /// When refinement is enabled and an uncovered-point index is
    /// available, the worklist is coverage-ranked: candidates whose
    /// literals mention signals with more open coverage points come
    /// first, so their counterexamples — the prefixes the directed
    /// synthesizer extends — steer toward uncovered logic. The sort is
    /// stable with the collection order as tie-break, so ranking is
    /// deterministic; with refinement off the order is untouched.
    fn open_candidates(&self) -> Vec<(usize, usize)> {
        let mut worklist: Vec<(usize, usize)> = Vec::new();
        for (ti, t) in self.targets.iter().enumerate() {
            if t.stuck.is_some() {
                continue;
            }
            for leaf in t.tree.leaves() {
                if t.tree.leaf_status(leaf) == LeafStatus::Open && t.tree.is_pure(leaf) {
                    worklist.push((ti, leaf));
                }
            }
        }
        if self.config.refine.enabled() {
            if let Some(index) = &self.last_uncovered {
                let gain_of = |&(ti, leaf): &(usize, usize)| -> usize {
                    let t = &self.targets[ti];
                    let a = assertion_at(&t.tree, &t.spec, leaf);
                    let mut sigs: Vec<SignalId> =
                        a.literals.iter().map(|(f, _)| f.signal).collect();
                    sigs.push(a.target.signal);
                    sigs.sort_unstable();
                    sigs.dedup();
                    sigs.into_iter().map(|s| index.signal_gain(s)).sum()
                };
                worklist.sort_by_key(|cand| std::cmp::Reverse(gain_of(cand)));
            }
        }
        worklist
    }

    /// One verification pass over all open candidates; returns the number
    /// of refuted candidates.
    ///
    /// Batched mode (the default): the whole worklist becomes one
    /// deduped property batch dispatched through the checker's shared
    /// verification session, and every counterexample trace is absorbed
    /// in bulk afterwards. Unbatched mode checks candidates one at a
    /// time and feeds each counterexample back immediately.
    fn iteration_pass(&mut self, iteration: u32) -> Result<PassCounts, EngineError> {
        // Counterexample input sequences discovered this iteration, in
        // decision order: the refinement pass extends them toward
        // uncovered logic.
        let mut prefixes: Vec<Vec<InputVector>> = Vec::new();
        let verify_start = std::time::Instant::now();
        let mut verify_span = gm_trace::span("engine", "engine.verify");
        let mut counts = if self.config.batched {
            self.window_pass_batched(iteration, &mut prefixes)?
        } else {
            self.window_pass_sequential(iteration, &mut prefixes)?
        };
        verify_span.arg("refuted", counts.refuted);
        drop(verify_span);
        counts.timing.verify_ns = verify_start.elapsed().as_nanos() as u64;
        if self.config.temporal.enabled() {
            let temporal_start = std::time::Instant::now();
            let mut span = gm_trace::span("engine", "engine.temporal");
            let (dispatched, refuted) = self.temporal_pass(iteration, &mut prefixes)?;
            span.arg("candidates", dispatched);
            span.arg("refuted", refuted);
            drop(span);
            counts.temporal_candidates = dispatched;
            counts.temporal_refuted = refuted;
            counts.timing.temporal_ns = temporal_start.elapsed().as_nanos() as u64;
        }
        if self.config.refine.enabled() {
            let refine_start = std::time::Instant::now();
            let mut span = gm_trace::span("engine", "engine.refine");
            counts.directed_absorbed = self.refinement_pass(iteration, &prefixes)?;
            span.arg("absorbed", counts.directed_absorbed);
            drop(span);
            counts.timing.refine_ns = refine_start.elapsed().as_nanos() as u64;
        }
        Ok(counts)
    }

    /// The batched combinational pass (see [`Engine::iteration_pass`]).
    fn window_pass_batched(
        &mut self,
        iteration: u32,
        prefixes: &mut Vec<Vec<InputVector>>,
    ) -> Result<PassCounts, EngineError> {
        let worklist = self.open_candidates();
        // Dedupe identical properties across targets: distinct target
        // bits often mine the same implication, which must cost one
        // query, not one per leaf.
        let mut unique: Vec<WindowProperty> = Vec::new();
        let mut index_of: HashMap<WindowProperty, usize> = HashMap::new();
        let mut prop_leaves: Vec<Vec<(usize, usize)>> = Vec::new();
        for &(ti, leaf) in &worklist {
            let t = &self.targets[ti];
            let prop = assertion_property(&assertion_at(&t.tree, &t.spec, leaf));
            let idx = *index_of.entry(prop.clone()).or_insert_with(|| {
                unique.push(prop);
                prop_leaves.push(Vec::new());
                unique.len() - 1
            });
            prop_leaves[idx].push((ti, leaf));
        }
        // One batched dispatch for the whole iteration, split across the
        // configured shard sessions (identical results either way — see
        // the module docs' determinism contract).
        let results = match (self.config.shards, self.config.steal) {
            (ShardPolicy::Off, _) => self.checker.check_batch(&unique)?,
            (policy, StealPolicy::RoundRobin) => self
                .checker
                .check_batch_sharded(&unique, policy.shard_count())?,
            (policy, StealPolicy::Stealing) => self
                .checker
                .check_batch_stealing(&unique, policy.shard_count())?,
        };
        let mut refuted = 0usize;
        let mut pending_traces: Vec<Trace> = Vec::new();
        let mut cex_count = 0usize;
        for (idx, res) in results.into_iter().enumerate() {
            match res {
                CheckResult::Proved => {
                    for &(ti, leaf) in &prop_leaves[idx] {
                        self.targets[ti].tree.set_proved(leaf);
                    }
                }
                CheckResult::Violated(cex) => {
                    refuted += prop_leaves[idx].len();
                    cex_count += 1;
                    let label = format!("cex-{iteration}-{cex_count}");
                    self.suite.push(label, cex.inputs.clone());
                    pending_traces.push(self.simulate_segment(&cex.inputs)?);
                    prefixes.push(cex.inputs);
                }
                CheckResult::Unknown { .. } => match self.config.unknown {
                    UnknownPolicy::AssumeTrue => {
                        for &(ti, leaf) in &prop_leaves[idx] {
                            self.unknown_assumed += 1;
                            self.targets[ti].tree.set_proved(leaf);
                        }
                    }
                    UnknownPolicy::LeaveOpen => {}
                },
            }
        }
        // Absorb all counterexample traces in bulk.
        for trace in &pending_traces {
            self.absorb_trace(trace);
        }
        Ok(PassCounts {
            refuted,
            ..PassCounts::default()
        })
    }

    /// The unbatched pass: each candidate is checked and its
    /// counterexample absorbed immediately, so later candidates see the
    /// refined trees. Leaves are re-validated because the tree may morph
    /// under us as counterexample rows arrive.
    fn window_pass_sequential(
        &mut self,
        iteration: u32,
        prefixes: &mut Vec<Vec<InputVector>>,
    ) -> Result<PassCounts, EngineError> {
        let worklist = self.open_candidates();
        let mut refuted = 0usize;
        let mut cex_count = 0usize;
        for (ti, leaf) in worklist {
            let assertion = {
                let t = &self.targets[ti];
                if t.stuck.is_some()
                    || !t.tree.is_leaf(leaf)
                    || t.tree.leaf_status(leaf) != LeafStatus::Open
                    || !t.tree.is_pure(leaf)
                {
                    continue;
                }
                assertion_at(&t.tree, &t.spec, leaf)
            };
            let prop = assertion_property(&assertion);
            match self.checker.check(&prop)? {
                CheckResult::Proved => {
                    self.targets[ti].tree.set_proved(leaf);
                }
                CheckResult::Violated(cex) => {
                    refuted += 1;
                    cex_count += 1;
                    let label = format!("cex-{iteration}-{cex_count}");
                    self.suite.push(label, cex.inputs.clone());
                    let trace = self.simulate_segment(&cex.inputs)?;
                    self.absorb_trace(&trace);
                    prefixes.push(cex.inputs);
                }
                CheckResult::Unknown { .. } => match self.config.unknown {
                    UnknownPolicy::AssumeTrue => {
                        self.unknown_assumed += 1;
                        self.targets[ti].tree.set_proved(leaf);
                    }
                    UnknownPolicy::LeaveOpen => {}
                },
            }
        }
        Ok(PassCounts {
            refuted,
            ..PassCounts::default()
        })
    }

    /// One temporal-template pass: collect the undecided temporal
    /// candidates across all targets (deduped by property), dispatch
    /// them through the checker's temporal path, accumulate proved ones
    /// into the run's temporal assertion list, and absorb refuted ones'
    /// counterexamples as `tcex-*` segments. Returns `(dispatched,
    /// refuted)`.
    ///
    /// Unlike combinational candidates, temporal verdicts never touch
    /// leaf statuses — a refuted stability window says nothing about
    /// the leaf's single-cycle implication. Decided properties are
    /// remembered so a candidate the (stable) leaf keeps re-proposing
    /// costs one query and one counterexample total, which also
    /// guarantees the pass converges.
    fn temporal_pass(
        &mut self,
        iteration: u32,
        prefixes: &mut Vec<Vec<InputVector>>,
    ) -> Result<(usize, usize), EngineError> {
        let mut unique: Vec<TemporalProperty> = Vec::new();
        let mut mined: Vec<TemporalAssertion> = Vec::new();
        let mut seen: HashSet<TemporalProperty> = HashSet::new();
        for t in &self.targets {
            if t.stuck.is_some() {
                continue;
            }
            for (_leaf, ta) in temporal_candidates(&t.tree, &t.spec, &t.dataset) {
                let prop = temporal_property(&ta);
                if self.temporal_decided.contains(&prop) || !seen.insert(prop.clone()) {
                    continue;
                }
                unique.push(prop);
                mined.push(ta);
            }
        }
        let results = self.checker.check_temporal_batch(&unique)?;
        let mut refuted = 0usize;
        let mut tcex_count = 0usize;
        for ((prop, ta), res) in unique.into_iter().zip(mined).zip(results) {
            match res {
                CheckResult::Proved => {
                    self.temporal_decided.insert(prop);
                    self.temporal_proved.push(ta);
                }
                CheckResult::Violated(cex) => {
                    self.temporal_decided.insert(prop);
                    refuted += 1;
                    tcex_count += 1;
                    let label = format!("tcex-{iteration}-{tcex_count}");
                    self.suite.push(label, cex.inputs.clone());
                    let trace = self.simulate_segment(&cex.inputs)?;
                    self.absorb_trace(&trace);
                    prefixes.push(cex.inputs);
                }
                CheckResult::Unknown { .. } => {
                    // Decided either way: the verdict is deterministic,
                    // so re-asking next iteration cannot improve it.
                    self.temporal_decided.insert(prop);
                    if self.config.unknown == UnknownPolicy::AssumeTrue {
                        self.unknown_assumed += 1;
                        self.temporal_proved.push(ta);
                    }
                }
            }
        }
        Ok((seen.len(), refuted))
    }

    /// One coverage-ranked refinement pass: extend this iteration's
    /// counterexample prefixes with deterministic random suffixes
    /// ([`gm_sim::synthesize_directed`]), score every variant's trace
    /// against the last coverage snapshot's uncovered-point index, and
    /// absorb the top gainers as `dir-*` suite segments (and mining
    /// rows). Returns the number of segments absorbed.
    ///
    /// Scores are computed against the frozen snapshot index, not
    /// re-queried between absorptions; only strictly-positive gains are
    /// absorbed, so total absorptions over a run are bounded by the
    /// design's coverage-point count and the loop cannot spin.
    fn refinement_pass(
        &mut self,
        iteration: u32,
        prefixes: &[Vec<InputVector>],
    ) -> Result<usize, EngineError> {
        let Some(index) = self.last_uncovered.clone() else {
            return Ok(0);
        };
        if index.is_empty() {
            return Ok(0);
        }
        let rc = self.config.refine;
        // Iteration-distinct but run-deterministic seeds; with no
        // counterexamples this iteration, probe outward from reset.
        let base_seed = self
            .config
            .seed
            .wrapping_add((iteration as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let empty_prefix = [Vec::new()];
        let prefixes: &[Vec<InputVector>] = if prefixes.is_empty() {
            &empty_prefix
        } else {
            prefixes
        };
        let mut variants: Vec<Vec<InputVector>> = Vec::new();
        for (pi, prefix) in prefixes.iter().enumerate() {
            variants.extend(synthesize_directed(
                self.module,
                prefix,
                base_seed.wrapping_add(pi as u64),
                rc.extra_cycles,
                rc.variants,
            ));
        }
        let cancelled = || {
            self.cancel
                .as_deref()
                .is_some_and(|c| c.load(Ordering::Acquire))
        };
        let mut scored: Vec<(usize, usize)> = Vec::with_capacity(variants.len());
        let mut traces: Vec<Trace> = Vec::with_capacity(variants.len());
        for (i, vectors) in variants.iter().enumerate() {
            if cancelled() {
                // Nothing has been absorbed yet: the pass is discarded
                // whole, keeping the interrupted-outcome contract.
                return Err(McError::Cancelled.into());
            }
            let trace = self.simulate_segment(vectors)?;
            scored.push((i, index.trace_gain(&trace)));
            traces.push(trace);
        }
        // Rank by gain, stable on synthesis order for ties.
        scored.sort_by_key(|&(_, gain)| std::cmp::Reverse(gain));
        let mut absorbed = 0usize;
        for &(i, gain) in scored.iter().take(rc.max_absorb) {
            if gain == 0 {
                break;
            }
            absorbed += 1;
            let label = format!("dir-{iteration}-{absorbed}");
            self.suite.push(label, variants[i].clone());
            self.absorb_trace(&traces[i]);
        }
        Ok(absorbed)
    }

    /// Feeds a counterexample trace into every target's dataset and tree
    /// (the shared test suite improves all outputs, §3).
    fn absorb_trace(&mut self, trace: &Trace) {
        let mut short = 0usize;
        for t in &mut self.targets {
            if t.stuck.is_some() {
                continue;
            }
            let rows = t.dataset.add_trace(&t.spec, trace);
            short += rows.short_traces;
            if let Err(e) = t.tree.add_rows(&t.dataset, &rows.rows) {
                t.stuck = Some(e);
            }
        }
        self.short_traces += short;
    }

    fn snapshot_report(
        &mut self,
        iteration: u32,
        counts: PassCounts,
    ) -> Result<IterationReport, EngineError> {
        let mut proved_total = 0usize;
        let mut candidates = 0usize;
        let mut isc_sum = 0.0f64;
        for t in &self.targets {
            let proved = proved_assertions(&t.tree, &t.spec);
            proved_total += proved.len();
            isc_sum += input_space_coverage(&proved, self.module);
            candidates += t
                .tree
                .leaves()
                .into_iter()
                .filter(|&l| t.tree.leaf_status(l) == LeafStatus::Open && t.tree.is_pure(l))
                .count();
        }
        let input_space = if self.targets.is_empty() {
            0.0
        } else {
            isc_sum / self.targets.len() as f64
        };
        let mut timing = counts.timing;
        let coverage = if self.config.record_coverage {
            let coverage_start = std::time::Instant::now();
            let mut coverage_span = gm_trace::span("engine", "engine.coverage");
            coverage_span.arg("segments", self.suite.len());
            let cancel = self.cancel.as_deref();
            let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Acquire));
            let mut cov = CoverageSuite::new(self.module);
            match (&self.compiled, self.config.sim_backend) {
                (None, _) => {
                    // Per-segment walk (identical to `TestSuite::run`)
                    // so the cancel token is polled between segments.
                    for seg in self.suite.segments() {
                        if cancelled() {
                            return Err(McError::Cancelled.into());
                        }
                        run_segment(self.module, &seg.vectors, &mut cov)?;
                    }
                }
                (Some(c), SimBackend::CompiledScalar) => {
                    for seg in self.suite.segments() {
                        if cancelled() {
                            return Err(McError::Cancelled.into());
                        }
                        c.run_segment(self.module, &seg.vectors, &mut cov);
                    }
                }
                // 64·block segments per pass; no traces are
                // materialized. The token is polled once per simulated
                // cycle inside.
                (Some(c), backend) => {
                    if !self.suite.observe_compiled_cancellable(
                        self.module,
                        c,
                        &mut cov,
                        cancel,
                        backend.lane_block(),
                    ) {
                        return Err(McError::Cancelled.into());
                    }
                }
            }
            // Freeze this snapshot's uncovered points for the next
            // refinement pass's gain ranking.
            if self.config.refine.enabled() {
                self.last_uncovered = Some(UncoveredIndex::from_suite(&cov));
            }
            drop(coverage_span);
            timing.coverage_ns = coverage_start.elapsed().as_nanos() as u64;
            Some(cov.report())
        } else {
            None
        };
        // Attribute the session work done since the last report to this
        // iteration.
        let cumulative = self.checker.session_stats();
        let verification = cumulative - self.reported_stats;
        self.reported_stats = cumulative;
        Ok(IterationReport {
            iteration,
            candidates,
            proved_total,
            refuted: counts.refuted,
            input_space_coverage: input_space,
            coverage,
            suite_cycles: self.suite.total_cycles(),
            short_traces: self.short_traces,
            temporal_candidates: counts.temporal_candidates,
            temporal_proved: self.temporal_proved.len(),
            temporal_refuted: counts.temporal_refuted,
            directed_absorbed: counts.directed_absorbed,
            verification,
            timing,
        })
    }
}
