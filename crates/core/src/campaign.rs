//! Multi-design campaigns: close coverage on a whole catalog at once.
//!
//! A [`Campaign`] holds a list of independent closure jobs (one module +
//! [`EngineConfig`] each) and runs them on a pool of worker threads —
//! the design-level analogue of the per-iteration shard dispatch inside
//! one engine. Each worker owns its job's [`Engine`] for the duration
//! of the run, so jobs never share mutable state; results are collected
//! back in submission order, making the [`CampaignSummary`]
//! deterministic regardless of which worker finished first.

use crate::config::EngineConfig;
use crate::engine::Engine;
use crate::error::EngineError;
use crate::report::ClosureOutcome;
use gm_mc::SessionStats;
use gm_rtl::Module;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independent closure job.
#[derive(Clone, Debug)]
pub struct CampaignJob {
    /// A label for reports (typically the design name).
    pub name: String,
    /// The design to close.
    pub module: Module,
    /// The engine configuration for this job.
    pub config: EngineConfig,
}

/// A set of closure jobs executed on a bounded worker pool.
///
/// # Examples
///
/// ```
/// use goldmine::{Campaign, EngineConfig, SeedStimulus};
///
/// let mut campaign = Campaign::new();
/// for src in [
///     "module a(input x, output y); assign y = x; endmodule",
///     "module b(input x, output y); assign y = ~x; endmodule",
/// ] {
///     let module = gm_rtl::parse_verilog(src)?;
///     let config = EngineConfig {
///         window: 0,
///         stimulus: SeedStimulus::Random { cycles: 8 },
///         record_coverage: false,
///         ..EngineConfig::default()
///     };
///     campaign.push(module.name().to_string(), module, config);
/// }
/// let summary = campaign.run();
/// assert_eq!(summary.runs.len(), 2);
/// assert!(summary.all_converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Campaign {
    jobs: Vec<CampaignJob>,
    workers: Option<usize>,
}

impl Campaign {
    /// An empty campaign with one worker per available core.
    pub fn new() -> Self {
        Campaign {
            jobs: Vec::new(),
            workers: None,
        }
    }

    /// Overrides the worker-pool size (clamped to at least 1; the pool
    /// never exceeds the number of jobs).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Queues a job.
    pub fn push(&mut self, name: impl Into<String>, module: Module, config: EngineConfig) {
        self.jobs.push(CampaignJob {
            name: name.into(),
            module,
            config,
        });
    }

    /// The number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Consumes the campaign, yielding its jobs in submission order —
    /// for alternative executors (like `gm_serve`'s work-stealing
    /// scheduler) that run the same jobs under their own pool.
    pub fn into_jobs(self) -> Vec<CampaignJob> {
        self.jobs
    }

    /// Whether the campaign has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job to completion and returns the merged summary.
    ///
    /// This built-in executor keeps `goldmine` dependency-free; the
    /// closure service's scheduler (`gm_serve::run_campaign`, fed by
    /// [`Campaign::into_jobs`]) runs the same jobs on its persistent
    /// work-stealing pool with a policy knob and steal counters — the
    /// two produce identical summaries by the engine's determinism
    /// contract.
    ///
    /// Workers pull jobs from a shared cursor (so a slow design does not
    /// serialize the rest behind it) and deposit results by job index:
    /// the summary lists runs in submission order, and each run's
    /// [`ClosureOutcome`] is identical to what a standalone
    /// [`Engine::run`] with the same module/config/seed would produce.
    pub fn run(self) -> CampaignSummary {
        let workers = self
            .workers
            .unwrap_or_else(|| crate::config::ShardPolicy::PerCore.shard_count())
            .min(self.jobs.len())
            .max(1);
        let jobs = self.jobs;
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<CampaignRun>>> =
            Mutex::new((0..jobs.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let outcome = Engine::new(&job.module, job.config.clone())
                        .and_then(|engine| engine.run());
                    let run = CampaignRun {
                        name: job.name.clone(),
                        outcome,
                    };
                    results.lock().expect("campaign results poisoned")[i] = Some(run);
                });
            }
        });
        CampaignSummary {
            runs: results
                .into_inner()
                .expect("campaign results poisoned")
                .into_iter()
                .map(|r| r.expect("every job produced a run"))
                .collect(),
        }
    }
}

/// The result of one campaign job.
#[derive(Debug)]
pub struct CampaignRun {
    /// The job label.
    pub name: String,
    /// The closure outcome, or the engine error that aborted the job
    /// (one failing job never takes down its siblings).
    pub outcome: Result<ClosureOutcome, EngineError>,
}

/// Merged results of a whole campaign, in job-submission order.
#[derive(Debug)]
pub struct CampaignSummary {
    /// One entry per job.
    pub runs: Vec<CampaignRun>,
}

impl CampaignSummary {
    /// Whether every job completed without an engine error.
    pub fn all_ok(&self) -> bool {
        self.runs.iter().all(|r| r.outcome.is_ok())
    }

    /// Whether every job reached full coverage closure.
    pub fn all_converged(&self) -> bool {
        self.runs
            .iter()
            .all(|r| r.outcome.as_ref().map(|o| o.converged).unwrap_or(false))
    }

    /// The jobs that reached closure.
    pub fn converged_count(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.outcome.as_ref().map(|o| o.converged).unwrap_or(false))
            .count()
    }

    /// Total proved assertions across all successful jobs.
    pub fn total_assertions(&self) -> usize {
        self.runs
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(|o| o.assertions.len())
            .sum()
    }

    /// Total stimulus cycles generated across all successful jobs.
    pub fn total_suite_cycles(&self) -> usize {
        self.runs
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(|o| o.suite.total_cycles())
            .sum()
    }

    /// Merged verification-session work across all successful jobs.
    pub fn verification_total(&self) -> SessionStats {
        self.runs
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .fold(SessionStats::default(), |acc, o| {
                acc + o.verification_total()
            })
    }

    /// A one-line-per-design text report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            match &r.outcome {
                Ok(o) => {
                    let last = o.iterations.last();
                    out.push_str(&format!(
                        "{:<14} converged={:<5} iterations={:<3} proved={:<4} coverage={:.1}% cycles={}\n",
                        r.name,
                        o.converged,
                        o.iteration_count(),
                        o.assertions.len(),
                        100.0 * last.map(|l| l.input_space_coverage).unwrap_or(0.0),
                        o.suite.total_cycles(),
                    ));
                }
                Err(e) => out.push_str(&format!("{:<14} error: {e}\n", r.name)),
            }
        }
        let v = self.verification_total();
        out.push_str(&format!(
            "total: {}/{} converged, {} assertions, {} queries ({} explicit, {} SAT), {} memo hits\n",
            self.converged_count(),
            self.runs.len(),
            self.total_assertions(),
            v.engine_queries(),
            v.explicit_queries,
            v.sat_decided,
            v.memo_hits,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SeedStimulus, ShardPolicy};

    fn tiny_job(src: &str) -> (String, Module, EngineConfig) {
        let module = gm_rtl::parse_verilog(src).unwrap();
        let config = EngineConfig {
            window: 0,
            stimulus: SeedStimulus::Random { cycles: 8 },
            record_coverage: false,
            ..EngineConfig::default()
        };
        (module.name().to_string(), module, config)
    }

    #[test]
    fn campaign_runs_jobs_in_submission_order_and_matches_standalone() {
        let sources = [
            "module andg(input a, input b, output y); assign y = a & b; endmodule",
            "module org(input a, input b, output y); assign y = a | b; endmodule",
            "module xorg(input a, input b, output y); assign y = a ^ b; endmodule",
        ];
        let mut campaign = Campaign::new().with_workers(3);
        for src in sources {
            let (name, module, config) = tiny_job(src);
            campaign.push(name, module, config);
        }
        let summary = campaign.run();
        assert_eq!(summary.runs.len(), 3);
        assert!(summary.all_ok());
        assert!(summary.all_converged());
        assert_eq!(
            summary
                .runs
                .iter()
                .map(|r| r.name.as_str())
                .collect::<Vec<_>>(),
            vec!["andg", "org", "xorg"],
            "results keep submission order"
        );
        // Concurrency must not perturb any job's outcome.
        for (src, run) in sources.iter().zip(&summary.runs) {
            let (_, module, config) = tiny_job(src);
            let standalone = Engine::new(&module, config).unwrap().run().unwrap();
            let got = run.outcome.as_ref().unwrap();
            assert_eq!(format!("{standalone:?}"), format!("{got:?}"));
        }
        assert!(summary.report().contains("3/3 converged"));
    }

    #[test]
    fn campaign_jobs_may_shard_internally() {
        let (name, module, mut config) = tiny_job(
            "module maj(input a, input b, input c, output y);
               assign y = (a & b) | (b & c) | (a & c); endmodule",
        );
        config.shards = ShardPolicy::Fixed(2);
        let mut campaign = Campaign::new();
        campaign.push(name, module, config);
        let summary = campaign.run();
        assert!(summary.all_converged());
        assert!(summary.total_assertions() > 0);
        assert!(summary.verification_total().engine_queries() > 0);
    }
}
