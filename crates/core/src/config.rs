//! Engine configuration.

use gm_mc::Backend;
use gm_rtl::SignalId;
use gm_sim::{InputVector, SimBackend};

/// How the initial test data is produced (the paper's data generator).
#[derive(Clone, Debug, PartialEq)]
pub enum SeedStimulus {
    /// Random input patterns for the given number of cycles (§2.1: the
    /// design "is simulated for a fixed number of cycles using random
    /// input patterns").
    Random {
        /// Number of random cycles.
        cycles: u64,
    },
    /// An existing directed/regression test.
    Directed(Vec<InputVector>),
    /// No initial patterns — the §7.2 zero-pattern limit study. Mining
    /// starts from the trivial "output is always 0" hypothesis.
    None,
}

/// What to do when the formal engines answer `Unknown`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknownPolicy {
    /// Treat the candidate as proved but count it in
    /// [`crate::ClosureOutcome::unknown_assumed`]. Matches the paper's
    /// bounded-unrolling pragmatics.
    AssumeTrue,
    /// Leave the leaf open; the run reports non-convergence.
    LeaveOpen,
}

/// How the engine splits each iteration's verification worklist across
/// concurrent sessions.
///
/// Sharding never changes results: the engine's determinism contract
/// (see [`crate::Engine`]) guarantees a bit-identical
/// [`crate::ClosureOutcome`] — suite labels, iteration reports,
/// assertion order, counterexample traces — for every policy; only the
/// [`gm_mc::SessionStats`] work counters reflect how the work was
/// distributed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// One persistent session, dispatched on the engine thread (PR 2
    /// behavior). The default.
    #[default]
    Off,
    /// A fixed number of shard sessions (clamped to at least 1).
    Fixed(usize),
    /// One shard session per available core
    /// ([`std::thread::available_parallelism`]).
    PerCore,
}

impl ShardPolicy {
    /// The number of shard sessions this policy resolves to on the
    /// current host. `Off` resolves to 1 (but dispatches without the
    /// worker pool).
    pub fn shard_count(&self) -> usize {
        match self {
            ShardPolicy::Off => 1,
            ShardPolicy::Fixed(n) => (*n).max(1),
            ShardPolicy::PerCore => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// How a sharded verification worklist is *dealt* onto the shard
/// sessions (only meaningful when [`EngineConfig::shards`] enables a
/// pool).
///
/// Both policies produce the identical [`crate::ClosureOutcome`]
/// artifacts — verdicts, counterexample traces, suite, assertion order
/// — because property decisions are partition-independent (see
/// [`crate::Engine`]'s determinism contract). They differ in *work
/// placement*: `RoundRobin` is a static deal whose per-session
/// [`gm_mc::SessionStats`] are reproducible run to run but can leave
/// shards idle behind a skewed worklist; `Stealing` is work-conserving
/// (idle shards pull the next undecided property from a shared cursor),
/// at the price of run-to-run variation in *where* the frame/solver
/// work counters land — exactly the trade [`EngineConfig::racing`]
/// already makes for its attribution counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// Static round-robin deal (the PR 3 behavior). The default.
    #[default]
    RoundRobin,
    /// Work-conserving shared-cursor dispatch
    /// ([`gm_mc::Checker::check_batch_stealing`]).
    Stealing,
}

/// Temporal-template mining: next-cycle implication, bounded
/// eventuality, and stability windows proposed from per-row lookahead
/// (see [`gm_mine::temporal_candidates`]).
///
/// The default (`horizon: 0`) disables the pass entirely and reproduces
/// the combinational-only engine byte for byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TemporalConfig {
    /// Post-window lookahead cycles recorded per dataset row — the
    /// maximum `shift`/`bound` a mined template can use. `0` disables
    /// temporal mining.
    pub horizon: u32,
}

impl TemporalConfig {
    /// Whether the temporal pass runs.
    pub fn enabled(&self) -> bool {
        self.horizon > 0
    }
}

/// Coverage-ranked directed refinement: counterexample prefixes are
/// extended with deterministic random suffixes
/// ([`gm_sim::synthesize_directed`]), scored against the uncovered-point
/// index of the previous iteration's coverage snapshot, and the
/// top-ranked variants are absorbed as `dir-*` suite segments.
///
/// The default (`variants: 0`) disables the pass entirely and
/// reproduces the unrefined engine byte for byte. The pass also
/// requires [`EngineConfig::record_coverage`] — without a coverage
/// snapshot there is no uncovered set to rank against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefineConfig {
    /// Directed variants synthesized per counterexample prefix; `0`
    /// disables the refinement pass.
    pub variants: usize,
    /// Random data-input cycles appended after each replayed prefix.
    pub extra_cycles: u64,
    /// At most this many top-ranked directed segments absorbed per
    /// iteration (only variants with a strictly positive predicted
    /// gain are ever absorbed).
    pub max_absorb: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            variants: 0,
            extra_cycles: 16,
            max_absorb: 2,
        }
    }
}

impl RefineConfig {
    /// Whether the refinement pass runs.
    pub fn enabled(&self) -> bool {
        self.variants > 0
    }
}

/// Which output bits to mine.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum TargetSelection {
    /// Every bit of every primary output.
    #[default]
    AllOutputs,
    /// Specific signals (all bits of each).
    Signals(Vec<SignalId>),
    /// Specific (signal, bit) pairs.
    Bits(Vec<(SignalId, u32)>),
}

/// Configuration for a [`crate::Engine`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Mining window length `w` (features span offsets `0..=w`).
    pub window: u32,
    /// RNG seed for random stimulus.
    pub seed: u64,
    /// Initial stimulus.
    pub stimulus: SeedStimulus,
    /// Maximum counterexample iterations before giving up.
    pub max_iterations: u32,
    /// Model-checking backend.
    pub backend: Backend,
    /// Policy for `Unknown` verdicts.
    pub unknown: UnknownPolicy,
    /// Target outputs.
    pub targets: TargetSelection,
    /// Batch all candidate checks per iteration (the §7 optimization the
    /// paper describes): the deduped cross-target worklist is dispatched
    /// through [`gm_mc::Checker::check_batch`] against one shared
    /// verification session, and counterexamples are absorbed in bulk.
    /// When `false`, candidates are checked one at a time and each
    /// counterexample feeds back immediately.
    pub batched: bool,
    /// How the deduped per-iteration worklist is split across concurrent
    /// verification sessions (requires `batched`; ignored otherwise).
    /// Results are identical for every policy — see [`ShardPolicy`].
    pub shards: ShardPolicy,
    /// How the worklist is dealt onto the shard sessions (requires a
    /// shard pool; ignored under `ShardPolicy::Off`). Results are
    /// identical for both policies — see [`StealPolicy`].
    pub steal: StealPolicy,
    /// Race the explicit and SAT backends per property and take the
    /// first conclusive answer. Applies to every `Auto`-backend decision
    /// the engine dispatches — sharded, batched, and unbatched alike —
    /// whenever the design's reachable set is available; see
    /// [`gm_mc::Checker::with_racing`] for the determinism contract.
    pub racing: bool,
    /// Record per-iteration coverage of the accumulated suite (costs one
    /// suite re-simulation per iteration).
    pub record_coverage: bool,
    /// Temporal-template mining (disabled by default — see
    /// [`TemporalConfig`]).
    pub temporal: TemporalConfig,
    /// Coverage-ranked directed refinement (disabled by default — see
    /// [`RefineConfig`]).
    pub refine: RefineConfig,
    /// Which simulation engine runs the data-generation and coverage
    /// passes (seed traces, counterexample replay, suite coverage).
    /// Every backend produces a byte-identical [`crate::ClosureOutcome`]
    /// — the compiled tape is proven trace- and coverage-identical to
    /// the interpreter by `sim/compiled_agree`, for every lane-block
    /// width. The default is the 64-lane compiled backend;
    /// [`SimBackend::CompiledBatchWide`] widens a pass to up to 512
    /// stimulus vectors for suite-heavy workloads.
    pub sim_backend: SimBackend,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            window: 1,
            seed: 0xC0FFEE,
            stimulus: SeedStimulus::Random { cycles: 64 },
            max_iterations: 64,
            backend: Backend::Auto,
            unknown: UnknownPolicy::AssumeTrue,
            targets: TargetSelection::AllOutputs,
            batched: true,
            shards: ShardPolicy::Off,
            steal: StealPolicy::RoundRobin,
            racing: false,
            record_coverage: true,
            temporal: TemporalConfig::default(),
            refine: RefineConfig::default(),
            sim_backend: SimBackend::default(),
        }
    }
}

impl EngineConfig {
    /// A zero-seed configuration (the paper's Table 1 limit study).
    pub fn zero_seed(window: u32) -> Self {
        EngineConfig {
            window,
            stimulus: SeedStimulus::None,
            ..EngineConfig::default()
        }
    }
}
