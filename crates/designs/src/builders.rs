//! Builder-API construction of benchmark designs.
//!
//! The parser front end is the usual entry point; this module constructs
//! the paper's arbiter through the programmatic [`gm_rtl::ModuleBuilder`]
//! instead, both as an API example and as a cross-check — tests verify
//! the built module behaves identically to the parsed one.

use gm_rtl::{Bv, Expr, Module, ModuleBuilder};

/// The paper's two-port arbiter, constructed with the builder API.
///
/// Structurally identical (same behavior, same signal names) to
/// [`crate::arbiter2`]; the test suite checks cycle-for-cycle
/// equivalence between the two.
pub fn arbiter2_builder() -> Module {
    let mut b = ModuleBuilder::new("arbiter2");
    let _clk = b.clock("clk");
    let rst = b.reset("rst");
    let req0 = b.input("req0", 1);
    let req1 = b.input("req1", 1);
    let gnt0 = b.output_reg("gnt0", 1, Bv::zero_bit());
    let gnt1 = b.output_reg("gnt1", 1, Bv::zero_bit());
    b.always_seq(|p| {
        p.if_else(
            Expr::Signal(rst),
            |t| {
                t.assign(gnt0, Expr::zero());
                t.assign(gnt1, Expr::zero());
            },
            |e| {
                // gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1)
                e.assign(
                    gnt0,
                    Expr::Signal(gnt0)
                        .not()
                        .and(Expr::Signal(req0))
                        .or(Expr::Signal(gnt0)
                            .and(Expr::Signal(req0))
                            .and(Expr::Signal(req1).not())),
                );
                // gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1)
                e.assign(
                    gnt1,
                    Expr::Signal(gnt0)
                        .and(Expr::Signal(req1))
                        .or(Expr::Signal(gnt0)
                            .not()
                            .and(Expr::Signal(req0).not())
                            .and(Expr::Signal(req1))),
                );
            },
        );
    });
    b.finish()
}
