//! Verilog sources for every benchmark design.
//!
//! `cex_small`, `arbiter2` and `arbiter4` follow the paper's §7 block
//! descriptions (`arbiter2` is the paper's RTL verbatim). The Rigel
//! stages are written to the interfaces and signal names the paper uses
//! (`stall_in`, `branch_pc`, `branch_mispredict`, `icache_rdvl_i`,
//! `valid`), scaled to bench-friendly widths. The ITC'99-style blocks
//! are re-implementations from the published benchmark descriptions
//! (`b01`, `b02`, `b09`) and scaled structural analogues for the large
//! ones (`b12_lite`, `b17_lite`, `b18_lite`) — see DESIGN.md for the
//! substitution rationale.

/// Small combinational example block (the paper's `cex_small`): the
/// mux-style function of Figure 2 plus a carry-out expression so that
/// expression coverage has something to chew on.
pub const CEX_SMALL: &str = "
module cex_small(input a, input b, input c, output z, output w);
  assign z = (a & b) | (~a & c);
  assign w = (a & b) ^ (b & c) ^ (a & c);
endmodule
";

/// The paper's two-port round-robin arbiter with priority on port 0
/// (§6, Figure 7 — verbatim RTL).
pub const ARBITER2: &str = "
module arbiter2(input clk, input rst, input req0, input req1,
                output reg gnt0, output reg gnt1);
  always @(posedge clk)
    if (rst) begin
      gnt0 <= 0;
      gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule
";

/// Four-port arbiter with more internal state (the paper's `arbiter4`):
/// a rotating-priority pointer plus one grant register per port.
pub const ARBITER4: &str = "
module arbiter4(input clk, input rst,
                input req0, input req1, input req2, input req3,
                output reg gnt0, output reg gnt1,
                output reg gnt2, output reg gnt3);
  reg [1:0] ptr;
  wire [3:0] req;
  wire [3:0] rot;
  wire [3:0] pick;
  wire [3:0] grant;
  assign req = {req3, req2, req1, req0};
  // Rotate requests so the pointer's port is at position 0.
  assign rot = (req >> ptr) | (req << (3'd4 - {1'b0, ptr}));
  // Fixed-priority pick on the rotated vector.
  assign pick = rot[0] ? 4'b0001 :
                rot[1] ? 4'b0010 :
                rot[2] ? 4'b0100 :
                rot[3] ? 4'b1000 : 4'b0000;
  // Rotate the pick back into port positions.
  assign grant = (pick << ptr) | (pick >> (3'd4 - {1'b0, ptr}));
  always @(posedge clk)
    if (rst) begin
      gnt0 <= 0; gnt1 <= 0; gnt2 <= 0; gnt3 <= 0;
      ptr <= 0;
    end else begin
      gnt0 <= grant[0] & req0;
      gnt1 <= grant[1] & req1;
      gnt2 <= grant[2] & req2;
      gnt3 <= grant[3] & req3;
      if (grant != 4'b0000)
        ptr <= ptr + 2'd1;
      else
        ptr <= ptr;
    end
endmodule
";

/// Rigel-like instruction fetch stage. Carries the signals the paper's
/// experiments name: `stall_in`, `branch_mispredict`, `branch_pc`,
/// `icache_rdvl_i` and the mined output `valid`. The PC is scaled to 4
/// bits so the explicit model checker stays exact (DESIGN.md).
pub const FETCH_STAGE: &str = "
module fetch_stage(input clk, input rst,
                   input stall_in, input branch_mispredict,
                   input [3:0] branch_pc, input icache_rdvl_i,
                   output reg valid, output reg [3:0] pc);
  always @(posedge clk)
    if (rst) begin
      valid <= 0;
      pc <= 0;
    end else begin
      if (branch_mispredict) begin
        pc <= branch_pc;
        valid <= 0;
      end else begin
        if (stall_in) begin
          pc <= pc;
          valid <= valid;
        end else begin
          if (icache_rdvl_i) begin
            pc <= pc + 4'd1;
            valid <= 1;
          end else begin
            pc <= pc;
            valid <= 0;
          end
        end
      end
    end
endmodule
";

/// Rigel-like instruction decode stage: a purely combinational field
/// decoder for a compact 12-bit instruction word. Complex expression
/// structure, no state — the paper's decode experiments stress
/// expression/condition coverage.
pub const DECODE_STAGE: &str = "
module decode_stage(input [11:0] instr, input instr_valid,
                    output [2:0] opcode, output [2:0] rd, output [2:0] rs,
                    output [2:0] imm,
                    output is_alu, output is_branch, output is_mem,
                    output uses_imm, output writes_rd, output illegal);
  assign opcode = instr[11:9];
  assign rd = instr[8:6];
  assign rs = instr[5:3];
  assign imm = instr[2:0];
  assign is_alu = instr_valid & ((opcode == 3'd0) | (opcode == 3'd1) |
                                 (opcode == 3'd2));
  assign is_branch = instr_valid & ((opcode == 3'd3) | (opcode == 3'd4));
  assign is_mem = instr_valid & ((opcode == 3'd5) | (opcode == 3'd6));
  assign uses_imm = instr_valid & ((opcode == 3'd1) | (opcode == 3'd4) |
                                   (opcode == 3'd6));
  assign writes_rd = is_alu | (is_mem & ~opcode[0]);
  assign illegal = instr_valid & (opcode == 3'd7);
endmodule
";

/// Rigel-like writeback stage: result selection between memory and ALU
/// paths with a stall override. Combinational (the paper calls
/// `wb_stage` its complex combinational case).
pub const WB_STAGE: &str = "
module wb_stage(input mem_valid, input alu_valid, input stall_in,
                input [3:0] mem_data, input [3:0] alu_data,
                input [2:0] dest,
                output [3:0] wb_data, output wb_we, output [2:0] wb_dest,
                output wb_valid);
  wire take_mem;
  assign take_mem = mem_valid & ~stall_in;
  assign wb_data = take_mem ? mem_data : alu_data;
  assign wb_valid = (mem_valid | alu_valid) & ~stall_in;
  assign wb_we = wb_valid & (dest != 3'd0);
  assign wb_dest = dest;
endmodule
";

/// ITC'99 b01-style block: an FSM comparing two serial flows,
/// re-implemented from the published description (outputs a comparison
/// bit and an overflow flag; eight control states).
pub const B01: &str = "
module b01(input clk, input rst, input line1, input line2,
           output reg outp, output reg overflw);
  localparam ST_A   = 3'd0;
  localparam ST_B   = 3'd1;
  localparam ST_C   = 3'd2;
  localparam ST_E   = 3'd3;
  localparam ST_F   = 3'd4;
  localparam ST_G   = 3'd5;
  localparam ST_WF0 = 3'd6;
  localparam ST_WF1 = 3'd7;
  reg [2:0] state;
  always @(posedge clk)
    if (rst) begin
      state <= ST_A; outp <= 0; overflw <= 0;
    end else begin
      overflw <= 0;
      case (state)
        ST_A: begin
          outp <= line1 ^ line2;
          if (line1 & line2) state <= ST_C;
          else state <= ST_B;
        end
        ST_B: begin
          outp <= line1 ^ line2;
          if (line1 & line2) state <= ST_E;
          else state <= ST_F;
        end
        ST_C: begin
          outp <= ~(line1 ^ line2);
          if (line1 | line2) state <= ST_E;
          else state <= ST_F;
        end
        ST_E: begin
          outp <= line1 ^ line2;
          if (line1 & line2) state <= ST_G;
          else state <= ST_WF0;
        end
        ST_F: begin
          outp <= ~(line1 ^ line2);
          if (line1 | line2) state <= ST_G;
          else state <= ST_WF0;
        end
        ST_G: begin
          outp <= line1 ^ line2;
          overflw <= line1 & line2;
          state <= ST_WF1;
        end
        ST_WF0: begin
          outp <= line1 | line2;
          state <= ST_A;
        end
        ST_WF1: begin
          outp <= line1 & line2;
          overflw <= line1 | line2;
          state <= ST_A;
        end
      endcase
    end
endmodule
";

/// ITC'99 b02-style block: a serial BCD recognizer FSM, re-implemented
/// from the published description (seven states, one serial input).
pub const B02: &str = "
module b02(input clk, input rst, input linea, output reg u);
  localparam A  = 3'd0;
  localparam B  = 3'd1;
  localparam C  = 3'd2;
  localparam D  = 3'd3;
  localparam E  = 3'd4;
  localparam F  = 3'd5;
  localparam G  = 3'd6;
  reg [2:0] state;
  always @(posedge clk)
    if (rst) begin
      state <= A; u <= 0;
    end else begin
      case (state)
        A: begin u <= 0; state <= B; end
        B: begin
          u <= 0;
          if (linea) state <= F; else state <= C;
        end
        C: begin u <= 0; state <= D; end
        D: begin
          u <= 0;
          if (linea) state <= G; else state <= E;
        end
        E: begin u <= 1; state <= B; end
        F: begin u <= 0; state <= G; end
        G: begin
          u <= 1;
          if (linea) state <= E; else state <= A;
        end
        default: begin u <= 0; state <= A; end
      endcase
    end
endmodule
";

/// ITC'99 b09-style block: a serial-to-serial converter with a shift
/// register and a small control FSM, re-implemented from the published
/// description at a 4-bit data width.
pub const B09: &str = "
module b09(input clk, input rst, input x, output reg y);
  localparam IDLE  = 2'd0;
  localparam LOAD  = 2'd1;
  localparam SHIFT = 2'd2;
  localparam EMIT  = 2'd3;
  reg [1:0] state;
  reg [3:0] sr;
  reg [1:0] cnt;
  always @(posedge clk)
    if (rst) begin
      state <= IDLE; sr <= 0; cnt <= 0; y <= 0;
    end else begin
      case (state)
        IDLE: begin
          y <= 0;
          sr <= sr;
          cnt <= 0;
          if (x) state <= LOAD; else state <= IDLE;
        end
        LOAD: begin
          y <= 0;
          sr <= {sr[2:0], x};
          cnt <= cnt + 2'd1;
          if (cnt == 2'd3) state <= SHIFT; else state <= LOAD;
        end
        SHIFT: begin
          y <= sr[3];
          sr <= {sr[2:0], 1'b0};
          cnt <= cnt + 2'd1;
          if (cnt == 2'd3) state <= EMIT; else state <= SHIFT;
        end
        EMIT: begin
          y <= ^sr;
          sr <= sr;
          cnt <= 0;
          state <= IDLE;
        end
      endcase
    end
endmodule
";

/// b12-style block (scaled): the ITC'99 b12 is a one-player memory game;
/// this lite version keeps its structural character — a game-control
/// FSM, an LFSR pattern generator, a round counter and win/lose flags.
pub const B12_LITE: &str = "
module b12_lite(input clk, input rst, input start, input [1:0] guess,
                output reg win, output reg lose, output reg [1:0] speaker);
  localparam IDLE = 2'd0;
  localparam PLAY = 2'd1;
  localparam WAIT = 2'd2;
  localparam DONE = 2'd3;
  reg [1:0] state;
  reg [2:0] lfsr;
  reg [1:0] round;
  always @(posedge clk)
    if (rst) begin
      state <= IDLE; lfsr <= 3'd5; round <= 0;
      win <= 0; lose <= 0; speaker <= 0;
    end else begin
      case (state)
        IDLE: begin
          win <= 0; lose <= 0; speaker <= 0;
          round <= 0;
          lfsr <= lfsr;
          if (start) state <= PLAY; else state <= IDLE;
        end
        PLAY: begin
          win <= 0; lose <= 0;
          speaker <= lfsr[1:0];
          lfsr <= {lfsr[1:0], lfsr[2] ^ lfsr[0]};
          round <= round;
          state <= WAIT;
        end
        WAIT: begin
          speaker <= speaker;
          lfsr <= lfsr;
          if (guess == speaker) begin
            win <= 0; lose <= 0;
            round <= round + 2'd1;
            if (round == 2'd3) state <= DONE; else state <= PLAY;
          end else begin
            win <= 0; lose <= 1;
            round <= round;
            state <= DONE;
          end
        end
        DONE: begin
          speaker <= 0;
          lfsr <= lfsr;
          round <= round;
          win <= ~lose & win | (round == 2'd3) & ~lose;
          lose <= lose;
          if (start) state <= DONE; else state <= IDLE;
        end
      endcase
    end
endmodule
";

/// b17-style block (scaled): the ITC'99 b17 instantiates three
/// processor-like blocks; this lite version interlocks a fetch-ish
/// counter pipeline, a decode FSM and a checksum datapath, with
/// deliberately hard-to-reach control corners so random stimulus
/// saturates below full coverage (the paper's Fig. 16 shape).
pub const B17_LITE: &str = "
module b17_lite(input clk, input rst, input [3:0] data_in,
                input enable, input mode,
                output reg [3:0] data_out, output reg busy, output reg err);
  localparam IDLE = 2'd0;
  localparam RUN  = 2'd1;
  localparam SYNC = 2'd2;
  localparam FAIL = 2'd3;
  reg [1:0] ctrl;
  reg [3:0] acc;
  reg [3:0] shadow;
  reg [2:0] guard;
  always @(posedge clk)
    if (rst) begin
      ctrl <= IDLE; acc <= 0; shadow <= 0; guard <= 0;
      data_out <= 0; busy <= 0; err <= 0;
    end else begin
      case (ctrl)
        IDLE: begin
          busy <= 0; err <= 0;
          data_out <= data_out;
          acc <= acc; shadow <= shadow;
          guard <= 0;
          if (enable) ctrl <= RUN; else ctrl <= IDLE;
        end
        RUN: begin
          busy <= 1; err <= 0;
          acc <= mode ? (acc ^ data_in) : (acc + data_in);
          shadow <= acc;
          data_out <= data_out;
          guard <= guard + 3'd1;
          if (guard == 3'd7) ctrl <= FAIL;
          else if (~enable) ctrl <= SYNC;
          else ctrl <= RUN;
        end
        SYNC: begin
          busy <= 1; err <= 0;
          data_out <= acc;
          acc <= acc; shadow <= shadow;
          guard <= 0;
          if (acc == shadow) ctrl <= IDLE; else ctrl <= SYNC;
        end
        FAIL: begin
          busy <= 0; err <= 1;
          acc <= 0; shadow <= 0; guard <= 0;
          data_out <= 4'b1111;
          if (enable & mode) ctrl <= IDLE; else ctrl <= FAIL;
        end
      endcase
    end
endmodule
";

/// b18-style block (scaled): two b17-style units sharing a bus with an
/// arbiter-ish selector; the deepest control corners require
/// coordinated multi-cycle input sequences, keeping random coverage low.
pub const B18_LITE: &str = "
module b18_lite(input clk, input rst, input [3:0] a_in, input [3:0] b_in,
                input sel, input go,
                output reg [3:0] bus, output reg done, output reg fault);
  localparam W0 = 2'd0;
  localparam W1 = 2'd1;
  localparam XFER = 2'd2;
  localparam HALT = 2'd3;
  reg [1:0] phase;
  reg [3:0] unit_a;
  reg [3:0] unit_b;
  reg [1:0] credit;
  always @(posedge clk)
    if (rst) begin
      phase <= W0; unit_a <= 0; unit_b <= 0; credit <= 2'd2;
      bus <= 0; done <= 0; fault <= 0;
    end else begin
      case (phase)
        W0: begin
          done <= 0; fault <= 0;
          unit_a <= a_in; unit_b <= unit_b;
          bus <= bus; credit <= credit;
          if (go) phase <= W1; else phase <= W0;
        end
        W1: begin
          done <= 0; fault <= 0;
          unit_b <= b_in; unit_a <= unit_a;
          bus <= bus;
          if (credit == 2'd0) begin
            phase <= HALT;
            credit <= credit;
          end else begin
            credit <= credit - 2'd1;
            phase <= XFER;
          end
        end
        XFER: begin
          bus <= sel ? unit_b : unit_a;
          done <= 1; fault <= 0;
          unit_a <= unit_a; unit_b <= unit_b;
          credit <= credit;
          if (go & sel & (unit_a == unit_b)) phase <= HALT;
          else phase <= W0;
        end
        HALT: begin
          done <= 0; fault <= 1;
          bus <= 0;
          unit_a <= unit_a; unit_b <= unit_b;
          credit <= 2'd2;
          if (go & ~sel) phase <= W0; else phase <= HALT;
        end
      endcase
    end
endmodule
";
